#!/usr/bin/env bash
# Runs the cache-sizing sweep (capacity × shards over the synthetic
# zipf corpus) and drops BENCH_cache_sweep.json in the repo root.
# Conclusions belong in EXPERIMENTS.md — the defaults in
# `BatchOptions::default()` and `DEFAULT_MERGE_CAPACITY` cite it.
#
# Usage: scripts/cache_sweep.sh [count] [workers]
set -euo pipefail
cd "$(dirname "$0")/.."

NLQUERY_SWEEP_COUNT="${1:-600}" \
NLQUERY_SWEEP_WORKERS="${2:-4}" \
cargo run --release -p nlquery-bench --bin cache_sweep
