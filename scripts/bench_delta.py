#!/usr/bin/env python3
"""Render a markdown delta table between two batch_throughput JSON dumps.

Usage: bench_delta.py BASELINE.json CURRENT.json

Prints a GitHub-flavored markdown table (for $GITHUB_STEP_SUMMARY)
comparing cold/warm queries-per-second and merge seconds row-by-row
against the committed baseline, plus each warm row's merge share of wall
time. The two dumps need not have the same shape: rows or fields present
in only one side are tolerated and called out explicitly — a row with no
baseline counterpart is marked "new", rows that vanished are listed
after the table, and added/removed field names are summarized up front.
Only the standard library is used; exits 0 even when the baseline is
missing or malformed so the perf summary never fails the job.
"""

import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"> could not read `{path}`: {e}")
        return None


def rows_by_key(doc):
    return {
        (row.get("workers"), row.get("pass")): row
        for row in (doc.get("rows") or [])
    }


def field_names(doc):
    names = set()
    for row in (doc or {}).get("rows") or []:
        names.update(row.keys())
    return names


def merge_secs(row):
    return float((row.get("stage_secs") or {}).get("merge", 0.0))


def fmt_delta(base, cur, unit="", invert=False):
    if base is None:
        return "new"
    delta = cur - base
    arrow = ""
    if abs(delta) > 1e-9:
        better = (delta < 0) if invert else (delta > 0)
        arrow = " ✅" if better else " ⚠️"
    return f"{delta:+.2f}{unit}{arrow}"


def main():
    if len(sys.argv) != 3:
        print("usage: bench_delta.py BASELINE.json CURRENT.json")
        return 0
    baseline, current = load(sys.argv[1]), load(sys.argv[2])
    if current is None:
        return 0

    print("## batch_throughput vs committed baseline\n")
    if baseline is not None:
        knobs = [("tiles", "tiling"), ("timeout_secs", "per-query timeout")]
        for key, label in knobs:
            if baseline.get(key) != current.get(key):
                print(
                    f"> note: {label} differs (baseline {baseline.get(key)}, "
                    f"current {current.get(key)}) — absolute numbers are not "
                    "directly comparable; the merge-share column is."
                )
        added = sorted(field_names(current) - field_names(baseline))
        removed = sorted(field_names(baseline) - field_names(current))
        if added:
            print(f"> fields added since baseline: {', '.join(f'`{f}`' for f in added)}")
        if removed:
            print(f"> fields removed since baseline: {', '.join(f'`{f}`' for f in removed)}")
        print()

    base_rows = rows_by_key(baseline) if baseline is not None else {}
    current_rows = rows_by_key(current)
    print(
        "> merge share = summed per-query merge CPU ÷ wall; it can exceed "
        "100% at >1 worker. The CI gate checks the 1-worker warm row.\n"
    )
    print(
        "| workers | pass | q/s | Δ q/s | merge s | Δ merge s | "
        "merge share of wall |"
    )
    print("|---:|---|---:|---:|---:|---:|---:|")
    for row in current.get("rows") or []:
        key = (row.get("workers"), row.get("pass"))
        base = base_rows.get(key)
        qps = float(row.get("queries_per_sec", 0.0))
        merge = merge_secs(row)
        wall = float(row.get("wall_secs", 0.0))
        share = f"{merge / wall * 100.0:.0f}%" if wall > 0 else "n/a"
        print(
            f"| {key[0]} | {key[1]} | {qps:.1f} | "
            f"{fmt_delta(base and float(base.get('queries_per_sec', 0.0)), qps)} | "
            f"{merge:.2f} | "
            f"{fmt_delta(base and merge_secs(base), merge, 's', invert=True)} | "
            f"{share} |"
        )
    gone = sorted(k for k in base_rows if k not in current_rows)
    if gone:
        listed = ", ".join(f"{w} workers/{p}" for w, p in gone)
        print(f"\n> rows in the baseline with no current counterpart: {listed}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
