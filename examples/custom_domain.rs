//! Bringing your own DSL: define a grammar in BNF, document its APIs, and
//! the synthesizer handles the rest — the extensibility argument of the
//! NLU-driven approach (no training data, just the API reference).
//!
//! The toy domain: a smart-home command language.
//!
//! ```sh
//! cargo run --example custom_domain
//! ```

use nlquery::grammar::GrammarGraph;
use nlquery::nlp::ApiDoc;
use nlquery::{Domain, SynthesisConfig, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bnf = r#"
        program   ::= command
        command   ::= TURNON device when | TURNOFF device when | DIM device level when
        device    ::= LIGHT room | THERMOSTAT | SPEAKER room | FAN room
        room      ::= KITCHEN | BEDROOM | LIVINGROOM | BATHROOM
        level     ::= LEVEL
        when      ::= NOW | AT time | AFTER time
        time      ::= TIMEVALUE
    "#;
    let graph = GrammarGraph::parse(bnf)?;

    let docs = vec![
        ApiDoc::new("TURNON", &["turn", "on", "enable"], "turns a device on", 0),
        ApiDoc::new(
            "TURNOFF",
            &["turn", "off", "disable"],
            "turns a device off",
            0,
        ),
        ApiDoc::new("DIM", &["dim"], "dims a light to a level", 0),
        ApiDoc::new("LIGHT", &["light", "lamp"], "a light in a room", 0),
        ApiDoc::new(
            "THERMOSTAT",
            &["thermostat", "heating"],
            "the thermostat",
            0,
        ),
        ApiDoc::new("SPEAKER", &["speaker", "music"], "a speaker in a room", 0),
        ApiDoc::new("FAN", &["fan"], "a fan in a room", 0),
        ApiDoc::new("KITCHEN", &["kitchen"], "the kitchen", 0),
        ApiDoc::new("BEDROOM", &["bedroom"], "the bedroom", 0),
        ApiDoc::new(
            "LIVINGROOM",
            &["lounge", "livingroom"],
            "the living room or lounge",
            0,
        ),
        ApiDoc::new("BATHROOM", &["bathroom"], "the bathroom", 0),
        ApiDoc::new("LEVEL", &["percent", "level"], "a brightness level", 1),
        ApiDoc::new("NOW", &["now", "immediately"], "right away", 0),
        ApiDoc::new("AT", &["at"], "at a point in time", 0),
        ApiDoc::new("AFTER", &["after"], "after a delay", 0),
        ApiDoc::new(
            "TIMEVALUE",
            &["time", "clock", "minute", "hour"],
            "a time value",
            1,
        ),
    ];

    let domain = Domain::builder("smart-home")
        .graph(graph)
        .docs(docs)
        .build()?;
    let synthesizer = Synthesizer::new(domain, SynthesisConfig::default());

    for query in [
        "turn on the light in the kitchen",
        "disable the fan in the bedroom",
        "dim the light in the bathroom",
        "enable the speaker in the lounge",
    ] {
        let r = synthesizer.synthesize(query);
        println!(
            "{query:<42} => {}",
            r.expression.unwrap_or_else(|| "(none)".into())
        );
    }
    Ok(())
}
