//! An IDE-style helper for clang's LibASTMatchers: type what you want to
//! find in C++ code, get the matcher expression — the second evaluation
//! domain of the paper. Also demonstrates inspecting synthesis statistics.
//!
//! ```sh
//! cargo run --example astmatcher_helper [-- "your query here"]
//! ```

use nlquery::{Outcome, SynthesisConfig, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let domain = nlquery::domains::astmatcher::domain()?;
    let synthesizer = Synthesizer::new(domain, SynthesisConfig::default());

    let user_query: Option<String> = std::env::args().nth(1);
    let queries: Vec<String> = match user_query {
        Some(q) => vec![q],
        None => [
            "find function declarations named \"main\"",
            "search for call expressions whose argument is a float literal",
            "find cxx methods that are virtual",
            "list all binary operators named \"*\"",
            "find cxx constructor expressions which declare a cxx method named \"PI\"",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
    };

    for query in &queries {
        let r = synthesizer.synthesize(query);
        println!("query: {query}");
        match r.outcome {
            Outcome::Success => {
                println!("  matcher: {}", r.expression.expect("success has code"));
            }
            other => println!("  no matcher: {other:?}"),
        }
        println!(
            "  stats: {} dep edges, {} candidate paths, {:.0} theoretical combinations, {:?}",
            r.stats.dep_edges, r.stats.orig_paths, r.stats.orig_combinations, r.elapsed
        );
        println!();
    }
    Ok(())
}
