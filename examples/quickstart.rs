//! Quickstart: synthesize a text-editing codelet from plain English.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nlquery::{Outcome, SynthesisConfig, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A domain bundles the DSL grammar, the API documentation, and the
    // literal policy. TextEditing ships with the crate.
    let domain = nlquery::domains::textedit::domain()?;

    // Default configuration: DGGT engine with grammar-based pruning,
    // size-based pruning and orphan relocation all on.
    let synthesizer = Synthesizer::new(domain, SynthesisConfig::default());

    let query = "insert \":\" at the start of each line";
    let result = synthesizer.synthesize(query);

    match result.outcome {
        Outcome::Success => {
            println!("query:   {query}");
            println!("codelet: {}", result.expression.expect("success has code"));
            println!("took:    {:?}", result.elapsed);
        }
        other => println!("synthesis did not succeed: {other:?}"),
    }
    Ok(())
}
