//! An interactive-style text-editing assistant: the scenario from the
//! paper's introduction. Feeds a session of user commands through the
//! synthesizer and prints the DSL programs an editor would execute,
//! with per-query latency (the near-real-time claim).
//!
//! ```sh
//! cargo run --example text_editing_assistant
//! ```

use nlquery::{Outcome, SynthesisConfig, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let domain = nlquery::domains::textedit::domain()?;
    let synthesizer = Synthesizer::new(domain, SynthesisConfig::default());

    let session = [
        "delete all empty lines",
        "insert \"> \" at the start of each line",
        "replace \"teh\" with \"the\" in every line",
        "uppercase the first sentence",
        "append \";\" in every line containing numerals",
        "print every line containing \"TODO\"",
        "delete every line which starts with \"#\"",
        "merge all paragraphs",
    ];

    println!("{:-<74}", "");
    println!("{:<44} {:>10}  outcome", "command", "latency");
    println!("{:-<74}", "");
    for query in session {
        let r = synthesizer.synthesize(query);
        let code = match r.outcome {
            Outcome::Success => r.expression.unwrap_or_default(),
            other => format!("({other:?})"),
        };
        println!("{query:<44} {:>8.2}ms", r.elapsed.as_secs_f64() * 1000.0);
        println!("  => {code}");
    }
    println!("{:-<74}", "");
    println!("every response lands far below the 10s attention threshold [Nielsen]");
    Ok(())
}
