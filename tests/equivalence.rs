//! The losslessness claim (§VII-B2): "as DGGT only accelerates the
//! synthesis process in HISyn, it should produce identical synthesis
//! results in all the cases" — modulo timeouts and orphan treatment.

use std::time::Duration;

use nlquery::{Outcome, SynthesisConfig, Synthesizer};

#[test]
fn engines_agree_on_every_non_timeout_textedit_case() {
    let domain = nlquery::domains::textedit::domain().unwrap();
    // Same orphan treatment on both sides: root attachment.
    let dggt = Synthesizer::new(
        domain.clone(),
        SynthesisConfig::default()
            .orphan_relocation(false)
            .timeout(Duration::from_secs(3)),
    );
    let hisyn = Synthesizer::new(
        domain,
        SynthesisConfig::hisyn_baseline().timeout(Duration::from_secs(3)),
    );
    // Orphan-free queries: the paper's losslessness claim concerns the
    // core DP; for orphans DGGT's root-attachment fallback joins greedily
    // where HISyn enumerates, an approximation documented in DESIGN.md.
    let queries = [
        "clear the document",
        "delete the selection",
        "uppercase the selection",
        "lowercase the selection",
        "merge lines",
        "print the document",
        "trim the selection",
        "delete words",
        "capitalize sentences",
        "insert \":\" at the start of each line",
        "delete every word",
        "uppercase every word",
    ];
    let mut compared = 0;
    for query in queries {
        let a = dggt.synthesize(query);
        let b = hisyn.synthesize(query);
        if a.outcome == Outcome::Timeout || b.outcome == Outcome::Timeout {
            continue;
        }
        if a.stats.orphans > 0 {
            // Modifier words routinely orphan under the rule parser; the
            // two systems treat orphans differently by design.
            continue;
        }
        assert_eq!(a.expression, b.expression, "query: {query}");
        compared += 1;
    }
    assert!(compared >= 3, "only {compared} cases compared");
}

#[test]
fn dggt_cgt_size_matches_baseline_minimum() {
    let domain = nlquery::domains::textedit::domain().unwrap();
    let dggt = Synthesizer::new(
        domain.clone(),
        SynthesisConfig::default()
            .orphan_relocation(false)
            .timeout(Duration::from_secs(3)),
    );
    let hisyn = Synthesizer::new(
        domain,
        SynthesisConfig::hisyn_baseline().timeout(Duration::from_secs(3)),
    );
    for q in [
        "delete every word",
        "insert \":\" at the start of each line",
        "uppercase the first sentence",
    ] {
        let a = dggt.synthesize(q);
        let b = hisyn.synthesize(q);
        let (Some(ca), Some(cb)) = (&a.cgt, &b.cgt) else {
            panic!("both engines solve {q}");
        };
        assert_eq!(
            ca.api_count(dggt.domain().graph()),
            cb.api_count(hisyn.domain().graph()),
            "query: {q}"
        );
    }
}

#[test]
fn optimizations_do_not_change_results() {
    // Grammar-based and size-based pruning are lossless (§V): they only
    // remove combinations that cannot be grammatical or cannot be minimal.
    let domain = nlquery::domains::textedit::domain().unwrap();
    let full = Synthesizer::new(
        domain.clone(),
        SynthesisConfig::default().timeout(Duration::from_secs(3)),
    );
    let unpruned = Synthesizer::new(
        domain,
        SynthesisConfig::default()
            .grammar_pruning(false)
            .size_pruning(false)
            .timeout(Duration::from_secs(3)),
    );
    for case in nlquery::domains::textedit::queries().iter().step_by(11) {
        let a = full.synthesize(&case.query);
        let b = unpruned.synthesize(&case.query);
        if a.outcome == Outcome::Timeout || b.outcome == Outcome::Timeout {
            continue;
        }
        assert_eq!(a.expression, b.expression, "query: {}", case.query);
    }
}
