//! Integrity suite for the persistent warm-state tier and AOT domain
//! compilation: a snapshot restore (or an AOT seed) must be
//! **observationally invisible** — bitwise-identical results to a
//! never-restarted engine, across both evaluation domains and worker
//! counts — and a stale or damaged snapshot must always fall back to a
//! cold boot (empty caches, a rendered reason), never wrong answers.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use nlquery::domains::{astmatcher, textedit};
use nlquery::{
    BatchEngine, BatchOptions, CompiledDomain, Domain, MergeMemo, SharedPathCache, SnapshotError,
    SynthesisConfig, Synthesizer,
};
use nlquery_core::snapshot;

/// Worker counts the differential sweeps cover. 8 oversubscribes every
/// CI box we use — deliberately, to shake out interleavings.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn corpus_slice(queries: Vec<nlquery::domains::QueryCase>, step: usize) -> Vec<String> {
    queries.into_iter().step_by(step).map(|c| c.query).collect()
}

fn both_domains() -> Vec<(Domain, Vec<String>)> {
    vec![
        (
            astmatcher::domain().expect("astmatcher builds"),
            corpus_slice(astmatcher::queries(), 4),
        ),
        (
            textedit::domain().expect("textedit builds"),
            corpus_slice(textedit::queries(), 8),
        ),
    ]
}

fn engine(domain: &Domain, config: &SynthesisConfig, workers: usize) -> BatchEngine {
    BatchEngine::with_options(
        domain.clone(),
        config.clone(),
        BatchOptions {
            workers,
            cache_capacity: 4096,
            ..BatchOptions::default()
        },
    )
}

fn temp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nlquery-snapshot-integrity");
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Restore → synthesize must be bitwise-identical to a never-restarted
/// engine: engine A runs the corpus, snapshots, runs it again (the
/// reference warm pass); engine B restores A's snapshot from disk and
/// runs the corpus once. B's pass must equal A's second pass result for
/// result, and B must not recompute anything A already knew.
#[test]
fn restored_engine_is_bitwise_identical_to_a_resident_one() {
    let config = SynthesisConfig::default();
    for (domain, queries) in both_domains() {
        for workers in [1usize, 4] {
            let file = temp_file(&format!("roundtrip-{}-{workers}.json", domain.name()));

            let resident = engine(&domain, &config, workers);
            let _ = resident.synthesize_batch(&queries);
            snapshot::save(
                &file,
                &domain,
                &config,
                resident.cache(),
                resident.merge_memo(),
            )
            .expect("snapshot saves");
            let reference = resident.synthesize_batch(&queries);

            let restored = engine(&domain, &config, workers);
            let summary = snapshot::load(
                &file,
                &domain,
                &config,
                restored.cache(),
                restored.merge_memo(),
            )
            .expect("snapshot restores");
            assert!(summary.path_entries > 0, "warm state must not be empty");
            let got = restored.synthesize_batch(&queries);

            assert_eq!(reference.results.len(), got.results.len());
            for (a, b) in reference.results.iter().zip(&got.results) {
                assert_eq!(a.outcome, b.outcome, "{} w={workers}", domain.name());
                assert_eq!(a.expression, b.expression, "{} w={workers}", domain.name());
                assert_eq!(a.cgt, b.cgt, "{} w={workers}", domain.name());
            }
            // The restored engine replays, never recomputes: every
            // EdgeToPath search the resident warm pass hit must hit here.
            assert_eq!(
                got.stats.cache.misses,
                0,
                "{} w={workers}: restored cache must absorb all searches",
                domain.name()
            );
            fs::remove_file(&file).ok();
        }
    }
}

/// Every damaged or stale snapshot shape must be rejected with a
/// rendered reason and restore *nothing* — the caches stay cold rather
/// than half-warm or wrong.
#[test]
fn damaged_or_stale_snapshots_fall_back_to_cold_boot() {
    let config = SynthesisConfig::default();
    let domain = astmatcher::domain().expect("astmatcher builds");
    let queries = corpus_slice(astmatcher::queries(), 8);

    let donor = engine(&domain, &config, 1);
    let _ = donor.synthesize_batch(&queries);
    let file = temp_file("integrity-donor.json");
    snapshot::save(&file, &domain, &config, donor.cache(), donor.merge_memo())
        .expect("snapshot saves");
    let good = fs::read_to_string(&file).expect("snapshot readable");

    let other_domain = textedit::domain().expect("textedit builds");
    let stale_config = SynthesisConfig::default().max_candidates(2);
    let cases: Vec<(&str, String, Option<&Domain>, Option<&SynthesisConfig>)> = vec![
        ("truncated", good[..good.len() / 2].to_string(), None, None),
        ("garbage", "not json at all {{{".to_string(), None, None),
        (
            "version-mismatch",
            good.replace("\"version\":1", "\"version\":999"),
            None,
            None,
        ),
        ("wrong-domain", good.clone(), Some(&other_domain), None),
        ("config-drift", good.clone(), None, Some(&stale_config)),
    ];
    for (name, text, load_domain, load_config) in cases {
        let case_file = temp_file(&format!("integrity-{name}.json"));
        fs::write(&case_file, text).expect("write case");
        let cache = SharedPathCache::new(1024);
        let memo = MergeMemo::new(2048);
        let err = snapshot::load(
            &case_file,
            load_domain.unwrap_or(&domain),
            load_config.unwrap_or(&config),
            &cache,
            &memo,
        )
        .expect_err(name);
        assert!(!err.to_string().is_empty(), "{name}: reason must render");
        assert_eq!(
            cache.stats().entries,
            0,
            "{name}: path cache must stay cold"
        );
        assert_eq!(memo.stats().entries, 0, "{name}: merge memo must stay cold");
        fs::remove_file(&case_file).ok();
    }

    // A missing file is an Io rejection, not a panic or a half-restore.
    let missing = temp_file("integrity-does-not-exist.json");
    let cache = SharedPathCache::new(1024);
    let memo = MergeMemo::new(2048);
    let err = snapshot::load(&missing, &domain, &config, &cache, &memo)
        .expect_err("missing file rejects");
    assert!(matches!(err, SnapshotError::Io(_)), "{err}");
    assert_eq!(cache.stats().entries, 0);

    fs::remove_file(&file).ok();
}

/// The AOT path — compiled (pruned, pre-resolved, pre-seeded) domain —
/// must be bitwise-identical to the unpruned, snapshot-free path on
/// both domains at 1/2/4/8 workers.
#[test]
fn aot_compiled_engines_match_plain_engines_at_every_worker_count() {
    let config = SynthesisConfig::default();
    for (domain, queries) in both_domains() {
        let corpus_refs: Vec<&str> = queries.iter().map(String::as_str).collect();
        let compiled = CompiledDomain::compile(&domain, &corpus_refs, &config);
        assert!(compiled.path_entries() > 0);

        // Sequential reference on the plain, uncompiled domain.
        let sequential = Synthesizer::new(domain.clone(), config.clone());
        let expected: Vec<_> = queries.iter().map(|q| sequential.synthesize(q)).collect();

        for workers in WORKER_COUNTS {
            let aot = engine(compiled.domain(), &config, workers);
            let seeded = compiled.seed(aot.cache());
            assert_eq!(seeded, compiled.path_entries());
            let got = aot.synthesize_batch(&queries);
            assert_eq!(expected.len(), got.results.len());
            for (q, (a, b)) in queries.iter().zip(expected.iter().zip(&got.results)) {
                assert_eq!(a.outcome, b.outcome, "{} w={workers}: {q}", domain.name());
                assert_eq!(
                    a.expression,
                    b.expression,
                    "{} w={workers}: {q}",
                    domain.name()
                );
                assert_eq!(a.cgt, b.cgt, "{} w={workers}: {q}", domain.name());
            }
            assert_eq!(
                got.stats.cache.misses,
                0,
                "{} w={workers}: the compiled path table must absorb every corpus search",
                domain.name()
            );
        }
    }
}

/// Seeding and restoring compose: an AOT-seeded engine restored from a
/// snapshot of real traffic still answers identically.
#[test]
fn aot_seed_plus_snapshot_restore_compose() {
    let config = SynthesisConfig::default();
    let domain = astmatcher::domain().expect("astmatcher builds");
    let queries = corpus_slice(astmatcher::queries(), 8);
    let corpus_refs: Vec<&str> = queries.iter().map(String::as_str).collect();
    let compiled = CompiledDomain::compile(&domain, &corpus_refs, &config);

    let donor = engine(compiled.domain(), &config, 2);
    let _ = donor.synthesize_batch(&queries);
    let file = temp_file("compose.json");
    snapshot::save(
        &file,
        compiled.domain(),
        &config,
        donor.cache(),
        donor.merge_memo(),
    )
    .expect("snapshot saves");
    let reference = donor.synthesize_batch(&queries);

    let warm = engine(compiled.domain(), &config, 2);
    let seeded = compiled.seed(warm.cache());
    assert!(seeded > 0);
    snapshot::load(
        &file,
        compiled.domain(),
        &config,
        warm.cache(),
        warm.merge_memo(),
    )
    .expect("snapshot restores over the AOT seed");
    let got = warm.synthesize_batch(&queries);
    for (a, b) in reference.results.iter().zip(&got.results) {
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.expression, b.expression);
        assert_eq!(a.cgt, b.cgt);
    }
    fs::remove_file(&file).ok();
}

/// Snapshot round trip at corpus scale: warm state built from the
/// grammar-walking synthetic generator (zipfian template mix, synonym
/// and literal variation) must restore observationally invisibly —
/// bitwise-identical replay with zero path-cache misses — on both
/// domains. `NLQUERY_SYNTH_COUNT` scales the corpus; `make
/// test-synthetic` runs the 10k configuration.
#[test]
fn generated_corpus_snapshot_round_trip_at_scale() {
    use nlquery::domains::gen::{generate, GenSpec};

    let count =
        match std::env::var("NLQUERY_SYNTH_COUNT") {
            Ok(v) => v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                panic!("NLQUERY_SYNTH_COUNT must be a positive integer, got {v:?}")
            }),
            Err(_) => 150,
        };
    // Ample deadline: a load-induced `Timeout` during the warm pass would
    // change which entries the snapshot captures and flake the
    // zero-restored-miss assertion.
    let config = SynthesisConfig::default().deadline(std::time::Duration::from_secs(600));
    for (domain, _) in both_domains() {
        let corpus = generate(
            &domain,
            &config,
            &GenSpec {
                seed: 0x5AFE_C0DE,
                count,
                ..GenSpec::default()
            },
        );
        let queries: Vec<String> = corpus.queries.iter().map(|q| q.surface.clone()).collect();
        let file = temp_file(&format!("generated-roundtrip-{}.json", domain.name()));

        let resident = engine(&domain, &config, 4);
        let _ = resident.synthesize_batch(&queries);
        snapshot::save(
            &file,
            &domain,
            &config,
            resident.cache(),
            resident.merge_memo(),
        )
        .expect("snapshot saves");
        let reference = resident.synthesize_batch(&queries);

        let restored = engine(&domain, &config, 4);
        let summary = snapshot::load(
            &file,
            &domain,
            &config,
            restored.cache(),
            restored.merge_memo(),
        )
        .expect("snapshot restores");
        assert!(
            summary.path_entries > 0,
            "generated warm state is non-empty"
        );
        let got = restored.synthesize_batch(&queries);

        assert_eq!(reference.results.len(), got.results.len());
        for (i, (a, b)) in reference.results.iter().zip(&got.results).enumerate() {
            assert_eq!(a.outcome, b.outcome, "{} #{i}", domain.name());
            assert_eq!(a.expression, b.expression, "{} #{i}", domain.name());
            assert_eq!(a.cgt, b.cgt, "{} #{i}", domain.name());
        }
        assert_eq!(
            got.stats.cache.misses,
            0,
            "{}: restored cache must absorb every replayed search",
            domain.name()
        );
        fs::remove_file(&file).ok();
    }
}

/// The sequential shared-cache path agrees too (ties the suite back to
/// `Synthesizer::synthesize_shared`, which serving and compilation use).
#[test]
fn seeded_shared_cache_synthesis_matches_plain_synthesis() {
    let config = SynthesisConfig::default();
    let domain = textedit::domain().expect("textedit builds");
    let queries = corpus_slice(textedit::queries(), 10);
    let corpus_refs: Vec<&str> = queries.iter().map(String::as_str).collect();
    let compiled = CompiledDomain::compile(&domain, &corpus_refs, &config);

    let plain = Synthesizer::new(domain.clone(), config.clone());
    let warm = Synthesizer::new(compiled.domain().clone(), config.clone());
    let cache = Arc::new(SharedPathCache::new(4096));
    compiled.seed(&cache);
    for q in &queries {
        let a = plain.synthesize(q);
        let b = warm.synthesize_shared(q, &cache);
        assert_eq!(a.outcome, b.outcome, "{q}");
        assert_eq!(a.expression, b.expression, "{q}");
        assert_eq!(a.cgt, b.cgt, "{q}");
    }
    assert_eq!(cache.stats().misses, 0);
}
