//! Batch synthesis must be a pure acceleration: for any worker count, the
//! per-query results of [`BatchEngine`] are identical to running the
//! sequential [`Synthesizer`] on each query — expression, outcome, CGT, and
//! the non-timing counters all match byte for byte.

use nlquery::domains::{astmatcher, textedit};
use nlquery::{BatchEngine, BatchOptions, Engine, Synthesis, SynthesisConfig, Synthesizer};

/// The comparable projection of a synthesis result: everything except
/// wall-clock timings and memo counters (which legitimately vary).
fn fingerprint(s: &Synthesis) -> String {
    format!(
        "{:?}|{:?}|{:?}|edges={} orig_paths={} orphans={} variants={} merged={}",
        s.outcome,
        s.expression,
        s.cgt,
        s.stats.dep_edges,
        s.stats.orig_paths,
        s.stats.orphans,
        s.stats.orphan_variants,
        s.stats.merged_combinations,
    )
}

fn assert_batch_matches_sequential(domain: nlquery::Domain, queries: &[String], engine: Engine) {
    let config = SynthesisConfig::default().engine(engine);
    let sequential = Synthesizer::new(domain.clone(), config.clone());
    let expected: Vec<String> = queries
        .iter()
        .map(|q| fingerprint(&sequential.synthesize(q)))
        .collect();

    for workers in [1, 2, 4, 7] {
        let batch = BatchEngine::with_options(
            domain.clone(),
            config.clone(),
            BatchOptions {
                workers,
                cache_capacity: 1024,
                ..BatchOptions::default()
            },
        );
        let report = batch.synthesize_batch(queries);
        assert_eq!(report.results.len(), expected.len());
        for (i, (got, want)) in report.results.iter().zip(&expected).enumerate() {
            assert_eq!(
                &fingerprint(got),
                want,
                "workers={workers} query #{i}: {:?}",
                queries[i]
            );
        }
    }
}

#[test]
fn textedit_corpus_is_deterministic_across_worker_counts() {
    let queries: Vec<String> = textedit::queries().into_iter().map(|c| c.query).collect();
    assert_batch_matches_sequential(
        textedit::domain().expect("domain builds"),
        &queries,
        Engine::Dggt,
    );
}

#[test]
fn astmatcher_corpus_is_deterministic_across_worker_counts() {
    let queries: Vec<String> = astmatcher::queries().into_iter().map(|c| c.query).collect();
    assert_batch_matches_sequential(
        astmatcher::domain().expect("domain builds"),
        &queries,
        Engine::Dggt,
    );
}

#[test]
fn hisyn_engine_is_deterministic_too() {
    // The memo cache sits below both step-5 engines; HISyn batches must be
    // exact as well.
    let queries: Vec<String> = textedit::queries()
        .into_iter()
        .take(8)
        .map(|c| c.query)
        .collect();
    assert_batch_matches_sequential(
        textedit::domain().expect("domain builds"),
        &queries,
        Engine::HiSyn,
    );
}

#[test]
fn batch_stats_are_deterministic_across_worker_counts() {
    // Beyond per-query results, the *aggregate* picture must be stable:
    // the same outcome tallies at every worker count, and — thanks to
    // single-flight — the same number of unique computations (`misses`)
    // on a cold cache whether 1 or 4 workers raced for them.
    let queries: Vec<String> = astmatcher::queries().into_iter().map(|c| c.query).collect();
    let domain = astmatcher::domain().expect("domain builds");
    let mut baseline: Option<(usize, usize, usize, usize, u64, u64)> = None;
    for workers in [1, 2, 4] {
        let engine = BatchEngine::with_options(
            domain.clone(),
            SynthesisConfig::default(),
            BatchOptions {
                workers,
                cache_capacity: 4096,
                ..BatchOptions::default()
            },
        );
        let report = engine.synthesize_batch(&queries);
        let s = &report.stats;
        let lookups = s.cache.lookups();
        let fingerprint = (
            s.successes,
            s.timeouts,
            s.no_parse,
            s.no_result,
            s.cache.misses,
            lookups,
        );
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(want) => assert_eq!(
                &fingerprint, want,
                "workers={workers}: outcome tallies and unique computations must not depend on the worker count"
            ),
        }
    }
}

#[test]
fn repeated_corpus_reports_cache_hits() {
    // Structurally repeated queries across a corpus must produce memo hits
    // — the cross-query win the cache exists for.
    let queries: Vec<String> = astmatcher::queries().into_iter().map(|c| c.query).collect();
    let engine = BatchEngine::new(
        astmatcher::domain().expect("domain builds"),
        SynthesisConfig::default(),
    );
    let report = engine.synthesize_batch(&queries);
    assert!(
        report.stats.cache.hits > 0,
        "no cross-query reuse on the astmatcher corpus: {:?}",
        report.stats.cache
    );
}
