//! Orphan-node relocation (§V-B) end to end: queries whose dependency
//! parses leave nodes without grammatical governors still synthesize, and
//! relocation beats the HISyn root-attachment treatment.

use std::time::Duration;

use nlquery::{Outcome, SynthesisConfig, Synthesizer};

/// Queries known to produce orphans under the rule-based parser (the
/// quantifier and the gerund detach from their surface governors).
const ORPHAN_QUERIES: &[&str] = &[
    "append \":\" in every line containing numerals",
    "print every line containing \"error\"",
    "delete the first word of every line",
    "move the first word to the end of the line",
];

#[test]
fn orphan_queries_do_produce_orphans() {
    let synth = Synthesizer::new(
        nlquery::domains::textedit::domain().unwrap(),
        SynthesisConfig::default().timeout(Duration::from_secs(5)),
    );
    let mut saw_orphans = 0;
    for q in ORPHAN_QUERIES {
        let r = synth.synthesize(q);
        if r.stats.orphans > 0 {
            saw_orphans += 1;
        }
    }
    assert!(
        saw_orphans >= 3,
        "only {saw_orphans} queries produced orphans"
    );
}

#[test]
fn relocation_synthesizes_every_orphan_query() {
    let synth = Synthesizer::new(
        nlquery::domains::textedit::domain().unwrap(),
        SynthesisConfig::default().timeout(Duration::from_secs(5)),
    );
    for q in ORPHAN_QUERIES {
        let r = synth.synthesize(q);
        assert_eq!(r.outcome, Outcome::Success, "{q}: {:?}", r.stats);
    }
}

#[test]
fn relocation_reduces_candidate_paths() {
    // The paper's Table III: relocation shrinks the path count versus the
    // root-attachment treatment.
    let synth = Synthesizer::new(
        nlquery::domains::textedit::domain().unwrap(),
        SynthesisConfig::default().timeout(Duration::from_secs(5)),
    );
    let r = synth.synthesize("append \":\" in every line containing numerals");
    assert_eq!(r.outcome, Outcome::Success);
    assert!(
        r.stats.paths_after_relocation < r.stats.orig_paths,
        "reloc {} vs orig {}",
        r.stats.paths_after_relocation,
        r.stats.orig_paths
    );
}

#[test]
fn relocation_never_loses_to_root_attachment() {
    let domain = nlquery::domains::textedit::domain().unwrap();
    let with = Synthesizer::new(
        domain.clone(),
        SynthesisConfig::default().timeout(Duration::from_secs(5)),
    );
    let without = Synthesizer::new(
        domain,
        SynthesisConfig::default()
            .orphan_relocation(false)
            .timeout(Duration::from_secs(5)),
    );
    for q in ORPHAN_QUERIES {
        let a = with.synthesize(q);
        let b = without.synthesize(q);
        assert!(
            !(a.expression.is_none() && b.expression.is_some()),
            "relocation lost a query root attachment wins: {q}"
        );
    }
}
