//! Property-style equivalence tests for the bitset CGT kernel: on random
//! path subsets of both evaluation domains' grammars, every kernel
//! predicate — trial-merge acceptance, `is_or_consistent`, `api_count`,
//! `top`, `is_connected`, `is_valid` — must agree with the `BTreeSet`
//! reference implementation, and the bitset → set round-trip must be
//! lossless.
//!
//! Driven by the in-tree seeded xorshift generator (no registry access);
//! every run replays the same deterministic case set, and assertion
//! messages carry the seed for replay.

use nlquery::domains::{astmatcher, textedit};
use nlquery::grammar::{BitCgt, CgtArena, GrammarGraph, GrammarPath, SearchLimits};
use nlquery::Cgt;

/// Random merge sequences per domain.
const CASES: u64 = 24;
/// Merge attempts per sequence.
const STEPS: usize = 12;

/// Minimal xorshift64* — keep in sync with `nlquery_bench::rng` (this test
/// target cannot depend on the bench crate).
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        XorShift64(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A pool of candidate grammar paths: root → API and API → API walks,
/// capped so the pool stays small but structurally diverse.
fn path_pool(graph: &GrammarGraph) -> Vec<GrammarPath> {
    let limits = SearchLimits {
        max_paths: 8,
        max_depth: 40,
    };
    let apis: Vec<_> = graph.api_nodes().to_vec();
    let mut pool = Vec::new();
    for (_, api) in apis.iter().take(16) {
        pool.extend(graph.paths_from_root(*api, limits));
    }
    for (_, from) in apis.iter().take(8) {
        for (_, to) in apis.iter().take(8) {
            pool.extend(graph.paths_between(*from, *to, limits));
        }
    }
    assert!(pool.len() >= 8, "path pool too small: {}", pool.len());
    pool
}

/// Merges random pool paths into an accumulator held in *both*
/// representations, asserting the kernel mirrors the reference at every
/// step. Only or-consistent accumulations are kept (matching the
/// invariant the synthesizer maintains and `try_merge` documents).
fn kernel_agrees_with_reference(graph: &GrammarGraph, seed: u64) {
    let layout = graph.cgt_layout();
    let pool = path_pool(graph);
    let pool_bits: Vec<(Cgt, BitCgt)> = pool
        .iter()
        .map(|p| {
            let cgt = Cgt::from_path(p, graph);
            let bits = cgt.to_bits(layout);
            (cgt, bits)
        })
        .collect();
    let mut rng = XorShift64::new(seed + 1);
    let mut arena = CgtArena::new();

    let mut acc_ref = Cgt::new();
    let mut acc_bits = BitCgt::empty(layout);
    for step in 0..STEPS {
        let (p_ref, p_bits) = &pool_bits[rng.range(0, pool_bits.len())];

        // Reference trial: union, then the full or-consistency re-check.
        let mut trial_ref = acc_ref.clone();
        trial_ref.merge(p_ref);
        let ref_ok = trial_ref.is_or_consistent(graph);

        // Kernel trial: incremental try-merge.
        let mut trial_bits = acc_bits.clone();
        let kernel_ok = trial_bits.try_merge(p_bits, layout);
        assert_eq!(
            kernel_ok, ref_ok,
            "merge acceptance diverged (seed {seed} step {step})"
        );
        if !ref_ok {
            continue;
        }
        acc_ref = trial_ref;
        acc_bits = trial_bits;

        // Every predicate agrees on the accepted accumulation.
        assert!(
            acc_bits.is_or_consistent(layout),
            "accepted merge inconsistent (seed {seed} step {step})"
        );
        assert_eq!(
            acc_bits.api_count(layout),
            acc_ref.api_count(graph),
            "api_count diverged (seed {seed} step {step})"
        );
        assert_eq!(
            acc_bits.top(layout),
            acc_ref.top(graph),
            "top diverged (seed {seed} step {step})"
        );
        assert_eq!(
            arena.is_connected(&acc_bits, layout),
            acc_ref.is_connected(graph),
            "is_connected diverged (seed {seed} step {step})"
        );
        assert_eq!(
            arena.is_valid(&acc_bits, layout),
            acc_ref.is_valid(graph),
            "is_valid diverged (seed {seed} step {step})"
        );
        // Lossless round-trip: bits → sets reproduces the reference.
        assert_eq!(
            Cgt::from_bits(&acc_bits, layout),
            acc_ref,
            "round-trip diverged (seed {seed} step {step})"
        );
    }
}

#[test]
fn textedit_kernel_matches_reference() {
    let domain = textedit::domain().expect("domain builds");
    for seed in 0..CASES {
        kernel_agrees_with_reference(domain.graph(), seed);
    }
}

#[test]
fn astmatcher_kernel_matches_reference() {
    let domain = astmatcher::domain().expect("domain builds");
    for seed in 0..CASES {
        kernel_agrees_with_reference(domain.graph(), seed);
    }
}

#[test]
fn singleton_nodes_agree_too() {
    // Node-only CGTs (leaf partials) exercise the uncovered-API census and
    // the no-edge top/connectivity paths.
    for domain in [
        textedit::domain().expect("domain builds"),
        astmatcher::domain().expect("domain builds"),
    ] {
        let graph = domain.graph();
        let layout = graph.cgt_layout();
        let mut arena = CgtArena::new();
        for (_, api) in graph.api_nodes().iter().take(24) {
            let cgt = Cgt::singleton(*api);
            let bits = cgt.to_bits(layout);
            assert_eq!(bits.api_count(layout), cgt.api_count(graph));
            assert_eq!(bits.top(layout), cgt.top(graph));
            assert_eq!(arena.is_connected(&bits, layout), cgt.is_connected(graph));
            assert_eq!(arena.is_valid(&bits, layout), cgt.is_valid(graph));
            assert_eq!(Cgt::from_bits(&bits, layout), cgt);
        }
    }
}
