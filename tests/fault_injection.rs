//! Fault isolation: one bad query must never take a batch down.
//!
//! A 64-query batch seeded with one panicking query and one
//! deadline-busting query must (a) terminate, (b) report the two faulted
//! queries as [`Outcome::Panicked`] / [`Outcome::Timeout`] with their
//! structured [`SynthesisError`]s, and (c) return every *other* query
//! bitwise-identical to a sequential run — at any worker count.

use std::sync::Once;
use std::time::Duration;

use nlquery::domains::{astmatcher, textedit};
use nlquery::{
    BatchEngine, BatchOptions, Fault, Outcome, Synthesis, SynthesisConfig, SynthesisError,
    Synthesizer,
};

/// Input index of the query whose synthesis panics.
const PANIC_AT: usize = 13;
/// Input index of the query that runs under a zero deadline.
const DEADLINE_AT: usize = 40;
/// Batch size (the textedit corpus, tiled).
const BATCH: usize = 64;

/// The comparable projection of a synthesis result: everything except
/// wall-clock timings and memo counters (which legitimately vary).
fn fingerprint(s: &Synthesis) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|edges={} orig_paths={} orphans={} variants={} merged={}",
        s.outcome,
        s.expression,
        s.cgt,
        s.error,
        s.stats.dep_edges,
        s.stats.orig_paths,
        s.stats.orphans,
        s.stats.orphan_variants,
        s.stats.merged_combinations,
    )
}

/// Installs (once, binary-wide) a panic hook that swallows the panics
/// this suite injects on purpose, keeping test output readable. Real
/// panics still print through the default hook.
fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.starts_with("injected:") {
                default(info);
            }
        }));
    });
}

fn batch_queries() -> Vec<String> {
    let corpus: Vec<String> = textedit::queries().into_iter().map(|c| c.query).collect();
    assert!(!corpus.is_empty());
    (0..BATCH)
        .map(|i| corpus[i % corpus.len()].clone())
        .collect()
}

#[test]
fn faulted_batch_isolates_failures_at_any_worker_count() {
    silence_injected_panics();
    let domain = textedit::domain().expect("domain builds");
    let config = SynthesisConfig::default();
    let queries = batch_queries();

    let sequential = Synthesizer::new(domain.clone(), config.clone());
    let expected: Vec<String> = queries
        .iter()
        .map(|q| fingerprint(&sequential.synthesize(q)))
        .collect();

    for workers in [1, 2, 4, 8] {
        let mut engine = BatchEngine::with_options(
            domain.clone(),
            config.clone(),
            BatchOptions {
                workers,
                cache_capacity: 1024,
                ..BatchOptions::default()
            },
        );
        engine.set_fault_hook(|index, _query| match index {
            PANIC_AT => Some(Fault::Panic("injected: query synthesis panicked".into())),
            DEADLINE_AT => Some(Fault::Config(
                SynthesisConfig::default().deadline(Duration::ZERO),
            )),
            _ => None,
        });
        let report = engine.synthesize_batch(&queries);
        assert_eq!(report.results.len(), BATCH);

        // (b) The faulted slots carry structured failures.
        let panicked = &report.results[PANIC_AT];
        assert_eq!(panicked.outcome, Outcome::Panicked, "workers={workers}");
        assert_eq!(
            panicked.error,
            Some(SynthesisError::Panicked {
                message: "injected: query synthesis panicked".to_string()
            })
        );
        let timed_out = &report.results[DEADLINE_AT];
        assert_eq!(timed_out.outcome, Outcome::Timeout, "workers={workers}");
        assert_eq!(timed_out.error, Some(SynthesisError::DeadlineExceeded));
        // A busted deadline returns promptly instead of hogging the worker
        // (generous bound for loaded CI hosts; the budget itself is zero).
        assert!(
            timed_out.elapsed < Duration::from_secs(2),
            "workers={workers}: deadline-busted query took {:?}",
            timed_out.elapsed
        );

        // (c) Every other query is bitwise-identical to the sequential run.
        for (i, (got, want)) in report.results.iter().zip(&expected).enumerate() {
            if i == PANIC_AT || i == DEADLINE_AT {
                continue;
            }
            assert_eq!(
                &fingerprint(got),
                want,
                "workers={workers} query #{i}: {:?}",
                queries[i]
            );
        }

        // The aggregate tallies cover all outcomes, faulted included.
        let s = &report.stats;
        assert_eq!(s.total, BATCH);
        assert_eq!(s.panics, 1, "workers={workers}");
        assert!(s.timeouts >= 1, "workers={workers}");
        assert_eq!(
            s.successes + s.timeouts + s.no_parse + s.no_result + s.panics,
            s.total,
            "workers={workers}"
        );
        // Worker accounting survives the faults: every query was handled
        // by exactly one worker.
        let worked: usize = s.workers.iter().map(|w| w.queries).sum();
        assert_eq!(worked, BATCH, "workers={workers}");
    }
}

#[test]
fn edge_memo_keys_is_total_on_degenerate_queries_in_both_domains() {
    // The co-scheduler calls `edge_memo_keys` on every raw input before
    // workers start; a panic here would fault the whole batch, not one
    // query. It must return an empty signature on degenerate input.
    let domains = [
        textedit::domain().expect("textedit builds"),
        astmatcher::domain().expect("astmatcher builds"),
    ];
    for domain in domains {
        let synth = Synthesizer::new(domain, SynthesisConfig::default());
        assert!(synth.edge_memo_keys("").is_empty());
        assert!(synth.edge_memo_keys("   \t \u{a0}  ").is_empty());
        // Unparseable nonsense must not panic; whether it prunes to an
        // empty signature is up to the parser.
        let _ = synth.edge_memo_keys("qzx vbnm wret");
        let _ = synth.edge_memo_keys("\"\" \"\" \"\"");
    }
}

#[test]
fn every_query_panicking_still_terminates() {
    silence_injected_panics();
    // The degenerate worst case: the whole batch is poison. The engine
    // must drain it, tally it, and stay usable for the next batch.
    let domain = textedit::domain().expect("domain builds");
    let queries = batch_queries();
    let mut engine = BatchEngine::with_options(
        domain,
        SynthesisConfig::default(),
        BatchOptions {
            workers: 4,
            cache_capacity: 256,
            ..BatchOptions::default()
        },
    );
    engine.set_fault_hook(|_, _| Some(Fault::Panic("injected: total chaos".into())));
    let report = engine.synthesize_batch(&queries);
    assert_eq!(report.stats.panics, BATCH);
    assert!(report
        .results
        .iter()
        .all(|r| r.outcome == Outcome::Panicked && r.expression.is_none()));
}
