//! End-to-end tests of `nlquery-serve` over loopback: boot the server
//! on an ephemeral port, drive it with real HTTP clients, and check the
//! service-level invariants — bitwise parity with sequential synthesis,
//! structured deadline errors, 429 load shedding, monotonic metrics,
//! and graceful drain.

use std::thread;
use std::time::Duration;

use nlquery_core::{JsonValue, SynthesisConfig, Synthesizer};
use nlquery_domains::astmatcher;
use nlquery_serve::{HttpClient, Server, ServerConfig};

fn start(config: ServerConfig) -> Server {
    let domain = astmatcher::domain().expect("embedded domain builds");
    Server::start(domain, SynthesisConfig::default(), config).expect("server boots")
}

fn corpus(n: usize) -> Vec<String> {
    astmatcher::queries()
        .into_iter()
        .map(|case| case.query)
        .take(n)
        .collect()
}

fn expression_of(doc: &JsonValue) -> Option<String> {
    doc.get("expression")
        .and_then(JsonValue::as_str)
        .map(str::to_string)
}

/// The value of an unlabelled Prometheus sample in an exposition body.
fn metric(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
        })
        .and_then(|v| v.parse().ok())
}

#[test]
fn concurrent_requests_match_sequential_synthesis() {
    let server = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let queries = corpus(8);

    let domain = astmatcher::domain().unwrap();
    let sequential = Synthesizer::new(domain, SynthesisConfig::default());
    let expected: Vec<Option<String>> = queries
        .iter()
        .map(|q| sequential.synthesize(q).expression)
        .collect();

    let clients: Vec<_> = (0..4)
        .map(|_| {
            let queries = queries.clone();
            thread::spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                queries
                    .iter()
                    .map(|q| {
                        let resp = client.synthesize(q, None).expect("request");
                        assert_eq!(resp.status, 200, "body: {}", resp.body);
                        let doc = resp.json().expect("JSON body");
                        assert!(doc.get("outcome").is_some());
                        assert!(doc.get("stage_secs").is_some());
                        expression_of(&doc)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for client in clients {
        let got = client.join().expect("client thread");
        assert_eq!(
            got, expected,
            "served results must match sequential synthesis"
        );
    }
    server.shutdown();
    server.join();
}

#[test]
fn zero_deadline_yields_structured_deadline_error() {
    let server = start(ServerConfig::default());
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let query = corpus(1).remove(0);

    let resp = client.synthesize(&query, Some(0)).unwrap();
    assert_eq!(
        resp.status, 200,
        "a deadline miss is a result, not an HTTP error"
    );
    let doc = resp.json().unwrap();
    assert_eq!(
        doc.get("outcome").and_then(JsonValue::as_str),
        Some("timeout"),
        "body: {}",
        resp.body
    );
    let error = doc.get("error").expect("structured error object");
    assert_eq!(
        error.get("kind").and_then(JsonValue::as_str),
        Some("DeadlineExceeded")
    );
    assert!(error.get("message").and_then(JsonValue::as_str).is_some());
    assert!(doc.get("expression").unwrap().is_null());

    server.shutdown();
    server.join();
}

#[test]
fn full_admission_queue_sheds_with_429() {
    // One admission slot and a long micro-batch window: the first
    // request is admitted and parks in the window, so a second request
    // arriving mid-window deterministically finds the queue full.
    let server = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        batch_window: Duration::from_millis(1000),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let queries = corpus(2);

    let held_query = queries[0].clone();
    let holder = thread::spawn(move || {
        let mut client = HttpClient::connect(addr).unwrap();
        client.synthesize(&held_query, None).unwrap()
    });
    thread::sleep(Duration::from_millis(250));

    let mut client = HttpClient::connect(addr).unwrap();
    let shed = client.synthesize(&queries[1], None).unwrap();
    assert_eq!(shed.status, 429, "body: {}", shed.body);
    assert_eq!(shed.header("Retry-After"), Some("1"));
    assert_eq!(
        shed.json().unwrap().get("kind").and_then(JsonValue::as_str),
        Some("Overloaded")
    );

    let held = holder.join().unwrap();
    assert_eq!(held.status, 200, "the admitted request still completes");

    server.shutdown();
    server.join();
}

#[test]
fn graceful_drain_completes_in_flight_queries() {
    // A long window keeps the in-flight request visibly in the system
    // while the drain begins.
    let server = start(ServerConfig {
        batch_window: Duration::from_millis(500),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let query = corpus(1).remove(0);

    let domain = astmatcher::domain().unwrap();
    let expected = Synthesizer::new(domain, SynthesisConfig::default())
        .synthesize(&query)
        .expression;

    let in_flight = {
        let query = query.clone();
        thread::spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            client.synthesize(&query, None).unwrap()
        })
    };
    thread::sleep(Duration::from_millis(150)); // admitted, parked in the window

    // Drain over the wire, as an operator would.
    let mut ops = HttpClient::connect(addr).unwrap();
    let ack = ops
        .post_json("/shutdown", &JsonValue::obj([("reason", "test")]))
        .unwrap();
    assert_eq!(ack.status, 200);
    assert_eq!(
        ack.json()
            .unwrap()
            .get("status")
            .and_then(JsonValue::as_str),
        Some("draining")
    );
    server.join();

    let resp = in_flight.join().unwrap();
    assert_eq!(
        resp.status, 200,
        "in-flight request completes through the drain"
    );
    assert_eq!(expression_of(&resp.json().unwrap()), expected);

    // The listener is gone: new work is refused, not queued.
    match HttpClient::connect(addr) {
        Err(_) => {}
        Ok(mut late) => {
            let refused = late.synthesize(&query, None);
            assert!(
                refused.is_err() || refused.unwrap().status >= 500,
                "post-drain requests must not be served"
            );
        }
    }
}

#[test]
fn metrics_are_monotonic_and_errors_are_structured() {
    let server = start(ServerConfig::default());
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let query = corpus(1).remove(0);

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(
        health
            .json()
            .unwrap()
            .get("status")
            .and_then(JsonValue::as_str),
        Some("ok")
    );

    let before = client.get("/metrics").unwrap();
    assert_eq!(before.status, 200);
    assert!(before
        .header("Content-Type")
        .unwrap()
        .starts_with("text/plain"));
    let completed_before = metric(&before.body, "nlquery_jobs_completed_total").unwrap();
    let requests_before = metric(&before.body, "nlquery_http_requests_total").unwrap();

    let ok = client.synthesize(&query, None).unwrap();
    assert_eq!(ok.status, 200);

    let after = client.get("/metrics").unwrap();
    let completed_after = metric(&after.body, "nlquery_jobs_completed_total").unwrap();
    let requests_after = metric(&after.body, "nlquery_http_requests_total").unwrap();
    assert!(
        completed_after >= completed_before + 1.0,
        "completed counter must be monotonic: {completed_before} -> {completed_after}"
    );
    assert!(requests_after >= requests_before + 1.0);
    assert!(metric(&after.body, "nlquery_request_duration_seconds_count").unwrap() >= 1.0);
    assert!(after
        .body
        .contains("nlquery_request_duration_seconds_bucket{le=\"+Inf\"}"));
    assert!(after.body.contains("nlquery_cache_hits_total"));
    assert!(after.body.contains("nlquery_http_shed_total"));

    // Error taxonomy over the wire.
    let bad = client
        .request("POST", "/synthesize", Some("{not json"))
        .unwrap();
    assert_eq!(bad.status, 400);
    assert_eq!(
        bad.json().unwrap().get("kind").and_then(JsonValue::as_str),
        Some("BadRequest")
    );
    let missing = client
        .post_json("/synthesize", &JsonValue::obj([("nope", true)]))
        .unwrap();
    assert_eq!(missing.status, 400);
    let lost = client.get("/nope").unwrap();
    assert_eq!(lost.status, 404);
    let wrong_verb = client.get("/synthesize").unwrap();
    assert_eq!(wrong_verb.status, 405);

    server.shutdown();
    server.join();
}

#[test]
fn both_front_ends_serve_identical_results() {
    // The event-driven and thread-per-connection front ends are two
    // transports over one request path: the same queries must produce
    // the same expressions and outcomes, both matching sequential
    // synthesis exactly.
    let queries = corpus(6);
    let domain = astmatcher::domain().unwrap();
    let sequential = Synthesizer::new(domain, SynthesisConfig::default());
    let expected: Vec<Option<String>> = queries
        .iter()
        .map(|q| sequential.synthesize(q).expression)
        .collect();

    for event_driven in [true, false] {
        let server = start(ServerConfig {
            workers: 2,
            event_driven,
            ..ServerConfig::default()
        });
        let mut client = HttpClient::connect(server.local_addr()).expect("connect");
        let got: Vec<Option<String>> = queries
            .iter()
            .map(|q| {
                let resp = client.synthesize(q, None).expect("request");
                assert_eq!(resp.status, 200, "event_driven={event_driven}");
                let doc = resp.json().expect("JSON body");
                assert!(doc.get("outcome").is_some());
                expression_of(&doc)
            })
            .collect();
        assert_eq!(
            got, expected,
            "front end event_driven={event_driven} must match sequential synthesis"
        );
        server.shutdown();
        server.join();
    }
}

#[test]
fn connection_budget_rejects_with_accounted_503() {
    for event_driven in [true, false] {
        let server = start(ServerConfig {
            workers: 1,
            event_driven,
            max_connections: 2,
            ..ServerConfig::default()
        });
        let addr = server.local_addr();

        // Fill the budget with two live keep-alive connections.
        let mut first = HttpClient::connect(addr).unwrap();
        assert_eq!(first.get("/healthz").unwrap().status, 200);
        let mut second = HttpClient::connect(addr).unwrap();
        assert_eq!(second.get("/healthz").unwrap().status, 200);

        // The third connection is *answered* — 503 with a structured
        // body and Retry-After, written as soon as the budget check
        // fails — not silently dropped. Read it without sending
        // anything (a write could race the server's close into a
        // broken pipe).
        let rejected = {
            use std::io::Read as _;
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let mut raw = String::new();
            stream.read_to_string(&mut raw).unwrap();
            raw
        };
        assert!(
            rejected.starts_with("HTTP/1.1 503 "),
            "event_driven={event_driven}: got {rejected:?}"
        );
        assert!(rejected.contains("Retry-After: 1"));
        assert!(rejected.contains("\"kind\":\"ConnectionLimit\""));
        assert!(rejected.contains("Connection: close"));

        // The rejection is accounted and the budget recovers: close one
        // admitted connection and a newcomer gets in.
        let body = first.get("/metrics").unwrap().body;
        assert!(
            metric(&body, "nlquery_connections_rejected_total").unwrap_or(0.0) >= 1.0,
            "event_driven={event_driven}: rejection must be counted"
        );
        assert!(
            metric(&body, "nlquery_connections_accepted_total").unwrap_or(0.0) >= 3.0,
            "event_driven={event_driven}: accepts are counted"
        );
        drop(second);
        thread::sleep(Duration::from_millis(200));
        let mut fourth = HttpClient::connect(addr).unwrap();
        assert_eq!(
            fourth.get("/healthz").unwrap().status,
            200,
            "event_driven={event_driven}: budget frees on close"
        );

        server.shutdown();
        server.join();
    }
}

#[test]
fn per_client_fairness_quotas_hot_tenants() {
    for event_driven in [true, false] {
        // Burst of 1 and a glacial refill: the second request from the
        // same client key is deterministically quota-denied, while a
        // different key sails through.
        let server = start(ServerConfig {
            workers: 1,
            event_driven,
            client_rate: 1e-6,
            client_burst: 1.0,
            ..ServerConfig::default()
        });
        let query = corpus(1).remove(0);
        let body = JsonValue::obj([("query", JsonValue::from(query.as_str()))]).render();

        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        let first = client
            .request_with_headers(
                "POST",
                "/synthesize",
                Some(&body),
                &[("X-Client-Id", "hot")],
            )
            .unwrap();
        assert_eq!(first.status, 200, "event_driven={event_driven}");

        let denied = client
            .request_with_headers(
                "POST",
                "/synthesize",
                Some(&body),
                &[("X-Client-Id", "hot")],
            )
            .unwrap();
        assert_eq!(
            denied.status, 429,
            "event_driven={event_driven}: body {}",
            denied.body
        );
        assert_eq!(
            denied
                .json()
                .unwrap()
                .get("kind")
                .and_then(JsonValue::as_str),
            Some("QuotaExceeded"),
            "fairness denial is distinguishable from queue shedding"
        );
        assert_eq!(denied.header("Retry-After"), Some("1"));

        let other = client
            .request_with_headers(
                "POST",
                "/synthesize",
                Some(&body),
                &[("X-Client-Id", "cold")],
            )
            .unwrap();
        assert_eq!(
            other.status, 200,
            "event_driven={event_driven}: other clients are unaffected"
        );

        let metrics = client.get("/metrics").unwrap().body;
        assert!(
            metric(&metrics, "nlquery_quota_denied_total").unwrap_or(0.0) >= 1.0,
            "event_driven={event_driven}: denial must be counted"
        );
        assert!(
            metric(&metrics, "nlquery_quota_tracked_clients").unwrap_or(0.0) >= 2.0,
            "event_driven={event_driven}: both client buckets tracked"
        );

        server.shutdown();
        server.join();
    }
}

#[test]
fn warm_boot_restores_the_previous_process_state() {
    let dir = std::env::temp_dir().join("nlquery-serve-warm-boot");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snapshot = dir.join("state.json");
    std::fs::remove_file(&snapshot).ok();
    let queries = corpus(4);

    // First process: cold boot (no snapshot exists yet), serve traffic,
    // drain — join() writes the snapshot.
    let first = start(ServerConfig {
        workers: 1,
        snapshot_path: Some(snapshot.clone()),
        ..ServerConfig::default()
    });
    let addr = first.local_addr();
    let mut client = HttpClient::connect(addr).expect("connect");
    let expected: Vec<Option<String>> = queries
        .iter()
        .map(|q| {
            let resp = client.synthesize(q, None).expect("request");
            assert_eq!(resp.status, 200);
            expression_of(&resp.json().expect("JSON body"))
        })
        .collect();
    let body = client.get("/metrics").expect("metrics").body;
    assert_eq!(
        metric(&body, "nlquery_snapshot_restored_path_entries"),
        Some(0.0),
        "first boot is cold"
    );
    first.shutdown();
    first.join();
    assert!(snapshot.exists(), "drain must write the snapshot");

    // Second process: restore the first one's warm state, answer the
    // same queries identically without a single path-cache miss.
    let second = start(ServerConfig {
        workers: 1,
        snapshot_path: Some(snapshot.clone()),
        ..ServerConfig::default()
    });
    let addr = second.local_addr();
    let mut client = HttpClient::connect(addr).expect("connect");
    let got: Vec<Option<String>> = queries
        .iter()
        .map(|q| {
            let resp = client.synthesize(q, None).expect("request");
            assert_eq!(resp.status, 200);
            expression_of(&resp.json().expect("JSON body"))
        })
        .collect();
    assert_eq!(expected, got, "restored state must not change answers");
    let body = client.get("/metrics").expect("metrics").body;
    assert!(
        metric(&body, "nlquery_snapshot_restored_path_entries").unwrap_or(0.0) > 0.0,
        "second boot must restore path entries: {body}"
    );
    assert!(
        metric(&body, "nlquery_snapshot_restored_merge_entries").unwrap_or(0.0) > 0.0,
        "second boot must restore merge entries"
    );
    assert_eq!(
        metric(&body, "nlquery_cache_misses_total"),
        Some(0.0),
        "restored cache must absorb every search of the replayed corpus"
    );
    drop(second);

    // Third process: a damaged snapshot must reject, boot cold, and
    // still answer correctly.
    std::fs::write(&snapshot, "garbage {{{").expect("corrupt the file");
    let third = start(ServerConfig {
        workers: 1,
        snapshot_path: Some(snapshot.clone()),
        ..ServerConfig::default()
    });
    let mut client = HttpClient::connect(third.local_addr()).expect("connect");
    let resp = client.synthesize(&queries[0], None).expect("request");
    assert_eq!(resp.status, 200);
    assert_eq!(expression_of(&resp.json().expect("JSON body")), expected[0]);
    let body = client.get("/metrics").expect("metrics").body;
    assert_eq!(
        metric(&body, "nlquery_snapshot_rejected_total"),
        Some(1.0),
        "damaged snapshot must count as rejected: {body}"
    );
    assert_eq!(
        metric(&body, "nlquery_snapshot_restored_path_entries"),
        Some(0.0)
    );
    std::fs::remove_file(&snapshot).ok();
}

#[test]
fn aot_boot_seeds_the_path_cache_before_the_first_request() {
    let queries = corpus(4);
    let server = {
        let domain = astmatcher::domain().expect("embedded domain builds");
        let aot_corpus: Vec<String> = astmatcher::queries().into_iter().map(|c| c.query).collect();
        Server::start(
            domain,
            SynthesisConfig::default(),
            ServerConfig {
                workers: 1,
                aot_corpus,
                ..ServerConfig::default()
            },
        )
        .expect("server boots")
    };
    let domain = astmatcher::domain().unwrap();
    let sequential = Synthesizer::new(domain, SynthesisConfig::default());

    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    for q in &queries {
        let resp = client.synthesize(q, None).expect("request");
        assert_eq!(resp.status, 200);
        assert_eq!(
            expression_of(&resp.json().expect("JSON body")),
            sequential.synthesize(q).expression,
            "AOT-seeded answers must match the plain path: {q}"
        );
    }
    let body = client.get("/metrics").expect("metrics").body;
    assert!(
        metric(&body, "nlquery_aot_seeded_path_entries").unwrap_or(0.0) > 0.0,
        "boot must seed the compiled path table: {body}"
    );
    assert_eq!(
        metric(&body, "nlquery_cache_misses_total"),
        Some(0.0),
        "corpus requests must hit the seeded table: {body}"
    );
}
