//! Golden-file snapshots of synthesized expressions for both embedded
//! domains.
//!
//! Every corpus query is synthesized sequentially and the `query =>
//! outcome/expression` lines are compared against a checked-in golden
//! file (`tests/golden/<domain>.golden`). Any change to parsing, pruning,
//! WordToAPI, EdgeToPath, the memo cache, or expression rendering that
//! alters an output shows up as a readable diff here — deliberate changes
//! are re-blessed with:
//!
//! ```text
//! NLQUERY_BLESS=1 cargo test --test golden_corpus
//! ```
//!
//! A generous per-query timeout keeps the snapshots stable on slow or
//! loaded hosts (timeouts would otherwise flake the goldens).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use nlquery::domains::{astmatcher, textedit};
use nlquery::{Domain, Outcome, SynthesisConfig, Synthesizer};

fn golden_dir() -> PathBuf {
    // Tests are registered from crates/nlquery; goldens live next to the
    // test sources at the repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn render_corpus(domain: Domain, queries: &[String]) -> String {
    let config = SynthesisConfig::default().timeout(Duration::from_secs(10));
    let synthesizer = Synthesizer::new(domain, config);
    let mut out = String::new();
    for query in queries {
        let s = synthesizer.synthesize(query);
        let rendered = match s.outcome {
            Outcome::Success => s.expression.as_deref().unwrap_or("<missing>").to_string(),
            Outcome::Timeout => "<timeout>".to_string(),
            Outcome::NoParse => "<no-parse>".to_string(),
            Outcome::NoResult => "<no-result>".to_string(),
            Outcome::Panicked => "<panicked>".to_string(),
        };
        writeln!(out, "{query} => {rendered}").expect("string write");
    }
    out
}

fn check_golden(name: &str, domain: Domain, queries: &[String]) {
    let actual = render_corpus(domain, queries);
    let path = golden_dir().join(format!("{name}.golden"));
    if std::env::var("NLQUERY_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run NLQUERY_BLESS=1 cargo test --test golden_corpus",
            path.display()
        )
    });
    if actual != expected {
        let diff: String = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .filter(|(_, (want, got))| want != got)
            .map(|(i, (want, got))| format!("  line {}:\n    - {want}\n    + {got}\n", i + 1))
            .collect();
        panic!(
            "{name} corpus drifted from {} — re-bless with NLQUERY_BLESS=1 if deliberate.\n{diff}",
            path.display()
        );
    }
}

#[test]
fn textedit_corpus_matches_golden() {
    let queries: Vec<String> = textedit::queries().into_iter().map(|c| c.query).collect();
    check_golden(
        "textedit",
        textedit::domain().expect("domain builds"),
        &queries,
    );
}

#[test]
fn astmatcher_corpus_matches_golden() {
    let queries: Vec<String> = astmatcher::queries().into_iter().map(|c| c.query).collect();
    check_golden(
        "astmatcher",
        astmatcher::domain().expect("domain builds"),
        &queries,
    );
}
