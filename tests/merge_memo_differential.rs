//! Differential suite for the cross-query merge memo: a memoized engine
//! must be **observationally invisible** — bitwise-identical expressions
//! to a memo-off engine and to the sequential synthesizer, across both
//! evaluation domains and at every worker count — while computing each
//! merge signature exactly once and never caching a timed-out run.

use std::sync::Arc;
use std::time::Duration;

use nlquery::domains::{astmatcher, textedit};
use nlquery::{
    BatchEngine, BatchOptions, Domain, MergeFlight, MergeKey, MergeKind, MergeMemo, Outcome,
    SharedPathCache, SynthesisConfig, Synthesizer,
};

/// Worker counts the suite sweeps (the 8-worker row oversubscribes every
/// CI box we use; that is the point — oversubscription shakes out
/// interleavings single-flight must survive).
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn corpus_slice(queries: Vec<nlquery::domains::QueryCase>, step: usize) -> Vec<String> {
    queries.into_iter().step_by(step).map(|c| c.query).collect()
}

/// Memo-on and memo-off engines (and the plain sequential synthesizer)
/// must agree expression-for-expression at every worker count. Queries
/// are tiled ×2 so run-level memo hits occur *within* one batch, not just
/// across batches.
fn assert_memo_transparent(domain: Domain, queries: &[String]) {
    // Ample deadline: with a bounded wall-clock budget, host load (debug
    // builds, the oversubscribed 8-worker row) can flip a query to
    // `Timeout` in one engine but not another, breaking the bitwise
    // differential nondeterministically. Deadline behavior has its own
    // dedicated tests below.
    let ample = Duration::from_secs(600);
    let on = SynthesisConfig::default().deadline(ample);
    let off = SynthesisConfig::default().deadline(ample).merge_memo(false);
    let sequential = Synthesizer::new(domain.clone(), off.clone());
    let expected: Vec<_> = queries.iter().map(|q| sequential.synthesize(q)).collect();

    let tiled: Vec<String> = queries.iter().chain(queries.iter()).cloned().collect();
    let expected_tiled: Vec<_> = expected.iter().chain(expected.iter()).collect();

    for workers in WORKER_COUNTS {
        let options = BatchOptions {
            workers,
            cache_capacity: 4096,
            ..BatchOptions::default()
        };
        let memo_on = BatchEngine::with_options(domain.clone(), on.clone(), options);
        let memo_off = BatchEngine::with_options(domain.clone(), off.clone(), options);
        let got_on = memo_on.synthesize_batch(&tiled);
        let got_off = memo_off.synthesize_batch(&tiled);

        assert!(
            got_on.stats.merge.hits > 0,
            "tiled batch must replay run-level merges: {:?}",
            got_on.stats.merge
        );
        assert_eq!(
            got_off.stats.merge.lookups(),
            0,
            "memo-off engines must never consult the merge memo: {:?}",
            got_off.stats.merge
        );

        for (i, want) in expected_tiled.iter().enumerate() {
            let a = &got_on.results[i];
            let b = &got_off.results[i];
            assert_eq!(a.outcome, want.outcome, "workers={workers} query={i}");
            assert_eq!(
                a.expression, want.expression,
                "memo-on diverged: workers={workers} query={i}"
            );
            assert_eq!(
                b.expression, want.expression,
                "memo-off diverged: workers={workers} query={i}"
            );
        }
    }
}

#[test]
fn textedit_memo_is_transparent_at_every_worker_count() {
    let domain = textedit::domain().unwrap();
    let queries = corpus_slice(textedit::queries(), 7);
    assert!(queries.len() >= 20);
    assert_memo_transparent(domain, &queries);
}

#[test]
fn astmatcher_memo_is_transparent_at_every_worker_count() {
    let domain = astmatcher::domain().unwrap();
    let queries = corpus_slice(astmatcher::queries(), 5);
    assert!(queries.len() >= 20);
    assert_memo_transparent(domain, &queries);
}

/// A batch of identical queries computes each merge signature exactly
/// once — a fresh single-query run establishes how many unique merge
/// computations the query needs, and concurrent repeats must add hits
/// and dedup-waits but **zero** further misses.
#[test]
fn identical_queries_compute_each_signature_exactly_once() {
    let domain = textedit::domain().unwrap();
    let config = SynthesisConfig::default();
    let single = BatchEngine::with_options(
        domain.clone(),
        config.clone(),
        BatchOptions {
            workers: 1,
            cache_capacity: 4096,
            ..BatchOptions::default()
        },
    );
    let baseline = single.synthesize_batch(&["delete every word"]);
    let unique = baseline.stats.merge.misses;
    assert!(unique > 0, "a fresh run must populate the memo");

    for workers in [2, 4, 8] {
        let engine = BatchEngine::with_options(
            domain.clone(),
            config.clone(),
            BatchOptions {
                workers,
                cache_capacity: 4096,
                ..BatchOptions::default()
            },
        );
        let repeats = vec!["delete every word".to_string(); 24];
        let report = engine.synthesize_batch(&repeats);
        let merge = &report.stats.merge;
        assert_eq!(
            merge.misses, unique,
            "workers={workers}: every signature computes exactly once: {merge:?}"
        );
        assert!(
            merge.hits + merge.dedup_waits >= repeats.len() as u64 - 1,
            "workers={workers}: repeats must resolve from the memo: {merge:?}"
        );
    }
}

/// A timed-out run leaves nothing behind in the merge memo: the flight is
/// abandoned, waiters are re-promoted, and a later healthy run computes
/// (and then caches) the real value.
#[test]
fn timed_out_runs_are_never_cached() {
    let domain = textedit::domain().unwrap();
    let cache = Arc::new(SharedPathCache::new(1024));
    let memo = MergeMemo::new(1024);

    let strangled = Synthesizer::new(
        domain.clone(),
        SynthesisConfig::default().deadline(Duration::ZERO),
    );
    let timed_out = strangled.synthesize_memoized("delete every word", &cache, &memo);
    assert_eq!(timed_out.outcome, Outcome::Timeout);
    let after_timeout = memo.stats();
    assert_eq!(
        after_timeout.entries, 0,
        "a timed-out run must cache nothing: {after_timeout:?}"
    );

    let healthy = Synthesizer::new(domain, SynthesisConfig::default());
    let ok = healthy.synthesize_memoized("delete every word", &cache, &memo);
    assert_eq!(ok.outcome, Outcome::Success);
    let after_ok = memo.stats();
    assert!(
        after_ok.entries > 0 && after_ok.misses > after_timeout.misses,
        "the healthy run computes and caches for real: {after_ok:?}"
    );
}

/// The abandonment contract at the memo layer itself: dropping a miss
/// token without completing (what `?` on a deadline error does) caches
/// nothing and leaves the key computable, not poisoned.
#[test]
fn abandoned_flight_caches_nothing_and_key_stays_computable() {
    let memo = MergeMemo::new(64);
    let key = MergeKey {
        sig: 0xDEAD_BEEF,
        kind: MergeKind::FinalJoin,
    };
    match memo.join(key) {
        MergeFlight::Miss(token) => drop(token), // simulated timeout
        other => panic!("fresh memo must miss, got {other:?}"),
    }
    assert_eq!(memo.stats().entries, 0);
    assert!(
        matches!(memo.join(key), MergeFlight::Miss(_)),
        "an abandoned key must be recomputable"
    );
}
