//! Accuracy gates over the shipped corpora — the reproduction's analogue
//! of the paper's Table II accuracy columns. DGGT must beat the HISyn
//! baseline under a timeout, and stay in a healthy absolute band.

use std::time::Duration;

use nlquery::domains::evaluate;
use nlquery::{SynthesisConfig, Synthesizer};

fn timeout() -> Duration {
    Duration::from_secs(2)
}

#[test]
fn textedit_dggt_accuracy_band() {
    let domain = nlquery::domains::textedit::domain().unwrap();
    let synth = Synthesizer::new(domain, SynthesisConfig::default().timeout(timeout()));
    let report = evaluate(&synth, &nlquery::domains::textedit::queries());
    assert!(
        report.accuracy() >= 0.85,
        "TextEditing DGGT accuracy dropped to {:.3}",
        report.accuracy()
    );
    assert_eq!(report.timeouts(), 0, "DGGT must not time out at 2s");
}

#[test]
fn astmatcher_dggt_accuracy_band() {
    let domain = nlquery::domains::astmatcher::domain().unwrap();
    let synth = Synthesizer::new(domain, SynthesisConfig::default().timeout(timeout()));
    let report = evaluate(&synth, &nlquery::domains::astmatcher::queries());
    assert!(
        report.accuracy() >= 0.80,
        "ASTMatcher DGGT accuracy dropped to {:.3}",
        report.accuracy()
    );
}

#[test]
fn dggt_beats_hisyn_on_astmatcher() {
    // The paper's headline accuracy effect: fewer timeouts → higher
    // accuracy (2-12% in the paper; larger here because the grammar is
    // deeper relative to the timeout).
    let domain = nlquery::domains::astmatcher::domain().unwrap();
    let cases = nlquery::domains::astmatcher::queries();
    let dggt = Synthesizer::new(
        domain.clone(),
        SynthesisConfig::default().timeout(timeout()),
    );
    let hisyn = Synthesizer::new(domain, SynthesisConfig::hisyn_baseline().timeout(timeout()));
    let rd = evaluate(&dggt, &cases);
    let rh = evaluate(&hisyn, &cases);
    assert!(
        rd.accuracy() > rh.accuracy(),
        "DGGT {:.3} must beat HISyn {:.3}",
        rd.accuracy(),
        rh.accuracy()
    );
    assert!(rd.timeouts() < rh.timeouts());
}

#[test]
fn corpora_have_paper_scale() {
    assert_eq!(nlquery::domains::textedit::queries().len(), 200);
    assert!(nlquery::domains::astmatcher::queries().len() >= 100);
    let te = nlquery::domains::textedit::domain().unwrap();
    assert_eq!(te.api_count(), 52);
}
