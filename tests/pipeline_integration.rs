//! Cross-crate integration: the full six-step pipeline on both shipped
//! domains, exercising parsing, pruning, matching, path search, DGGT and
//! expression rendering end to end.

use std::time::Duration;

use nlquery::{Outcome, SynthesisConfig, Synthesizer};

fn textedit() -> Synthesizer {
    Synthesizer::new(
        nlquery::domains::textedit::domain().expect("domain builds"),
        SynthesisConfig::default().timeout(Duration::from_secs(5)),
    )
}

fn astmatcher() -> Synthesizer {
    Synthesizer::new(
        nlquery::domains::astmatcher::domain().expect("domain builds"),
        SynthesisConfig::default().timeout(Duration::from_secs(5)),
    )
}

#[test]
fn paper_flagship_example_reproduces() {
    // Table I example 1 (adapted to this DSL's ground-truth conventions).
    let r = textedit().synthesize("append \":\" in every line containing numerals");
    assert_eq!(
        r.expression.as_deref(),
        Some(
            "INSERT(STRING(:), IterationScope(LINESCOPE(), \
             BConditionOccurrence(CONTAINS(NUMBERTOKEN()), ALL())))"
        )
    );
}

#[test]
fn figure3_running_example_reproduces() {
    let r = textedit().synthesize("insert \":\" at the start of each line");
    assert_eq!(
        r.expression.as_deref(),
        Some(
            "INSERT(STRING(:), START(), IterationScope(LINESCOPE(), BConditionOccurrence(ALL())))"
        )
    );
}

#[test]
fn astmatcher_examples_reproduce() {
    let synth = astmatcher();
    for (query, expected) in [
        (
            "find cxx constructor expressions which declare a cxx method named \"PI\"",
            "cxxConstructExpr(hasDeclaration(cxxMethodDecl(hasName(\"PI\"))))",
        ),
        (
            "search for call expressions whose argument is a float literal",
            "callExpr(hasArgument(floatLiteral()))",
        ),
        (
            "list all binary operators named \"*\"",
            "binaryOperator(hasOperatorName(\"*\"))",
        ),
    ] {
        let r = synth.synthesize(query);
        assert_eq!(r.expression.as_deref(), Some(expected), "query: {query}");
    }
}

#[test]
fn literals_bind_to_their_own_slots() {
    let r = textedit().synthesize("replace \"foo\" with \"bar\" in every line");
    let expr = r.expression.expect("succeeds");
    assert!(
        expr.contains("STRING(foo)") && expr.contains("STRING(bar)"),
        "{expr}"
    );
    let foo = expr.find("STRING(foo)").unwrap();
    let bar = expr.find("STRING(bar)").unwrap();
    assert!(foo < bar, "source before replacement: {expr}");
}

#[test]
fn stats_reflect_the_search() {
    let r = textedit().synthesize("append \";\" in every line containing tabs");
    assert_eq!(r.outcome, Outcome::Success);
    assert!(r.stats.orig_paths > 0);
    assert!(r.stats.orig_combinations >= 1.0);
    assert!(r.stats.orphans > 0, "this parse produces orphans");
    assert!(r.stats.orphan_variants > 0, "relocation ran");
}

#[test]
fn near_real_time_on_the_paper_examples() {
    // "Near real-time": well under the 1 s interactive bound on every
    // flagship query (release builds are ~10x faster still).
    let synth = textedit();
    for q in [
        "insert \":\" at the start of each line",
        "if a sentence starts with \"-\", add \":\" after 14 characters",
    ] {
        let r = synth.synthesize(q);
        assert_eq!(r.outcome, Outcome::Success);
        assert!(
            r.elapsed < Duration::from_secs(1),
            "{q} took {:?}",
            r.elapsed
        );
    }
}

#[test]
fn garbage_in_no_crash_out() {
    let synth = textedit();
    for q in [
        "",
        "   ",
        "🦀🦀🦀",
        "the of and with",
        "delete delete delete delete",
    ] {
        let _ = synth.synthesize(q); // must not panic
    }
}

#[test]
fn timeout_is_respected() {
    let domain = nlquery::domains::astmatcher::domain().unwrap();
    let synth = Synthesizer::new(
        domain,
        SynthesisConfig::hisyn_baseline().timeout(Duration::from_millis(50)),
    );
    let r = synth
        .synthesize("find cxx constructor expressions which declare a cxx method named \"PI\"");
    // HISyn on this query far exceeds 50 ms; the run must stop near it.
    // Individual pipeline stages (path search in particular) are not
    // interruptible mid-stage, so allow generous slack for debug builds.
    assert_eq!(r.outcome, Outcome::Timeout);
    assert!(r.elapsed < Duration::from_secs(3), "{:?}", r.elapsed);
}
