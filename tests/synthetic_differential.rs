//! Differential suite over the grammar-walking synthetic corpus
//! (`nlquery_domains::gen`): every generated query carries a ground-truth
//! expression proven by construction, so the full pipeline must agree on
//! **100%** of them — with the merge memo on and off, and at 1/2/4/8
//! workers sharing one path cache, all bitwise-identical.
//!
//! `NLQUERY_SYNTH_COUNT` scales the corpus (default keeps tier-1 fast;
//! `make test-synthetic` runs the 10k-per-domain release configuration).

use std::sync::Arc;
use std::time::Duration;

use nlquery::domains::gen::{generate, GenSpec, GeneratedCorpus};
use nlquery::domains::{astmatcher, textedit};
use nlquery::{Domain, MergeMemo, SharedPathCache, SynthesisConfig, Synthesizer};

/// Default pipeline settings with an ample deadline: the suite asserts
/// bitwise identity, which a bounded wall-clock budget would make
/// nondeterministic — host load (debug builds, the oversubscribed
/// 8-worker sweep) could flip a query to `Timeout` in one run but not
/// another.
fn config() -> SynthesisConfig {
    SynthesisConfig::default().deadline(Duration::from_secs(600))
}

/// Corpus size per domain. The default is sized for debug-mode tier-1
/// runs; CI's `make test-synthetic` sets `NLQUERY_SYNTH_COUNT=10000`.
fn synth_count() -> usize {
    match std::env::var("NLQUERY_SYNTH_COUNT") {
        Ok(v) => {
            v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                panic!("NLQUERY_SYNTH_COUNT must be a positive integer, got {v:?}")
            })
        }
        Err(_) => 160,
    }
}

fn spec(count: usize) -> GenSpec {
    GenSpec {
        seed: 0x5EED_CAFE,
        count,
        ..GenSpec::default()
    }
}

fn both_domains() -> Vec<Domain> {
    vec![
        textedit::domain().expect("textedit builds"),
        astmatcher::domain().expect("astmatcher builds"),
    ]
}

/// Stable textual fingerprint of a corpus — template ids, rendered query
/// graphs, surfaces and expected expressions.
fn fingerprint(corpus: &GeneratedCorpus) -> String {
    let mut out = String::new();
    for q in &corpus.queries {
        out.push_str(&format!(
            "{}\x1f{}\x1f{}\x1f{}\n",
            q.template,
            q.query.render(),
            q.surface,
            q.expected
        ));
    }
    out
}

/// A fixed seed must reproduce the corpus byte-for-byte, and a different
/// seed must not.
#[test]
fn corpora_are_byte_identical_for_a_fixed_seed() {
    let config = config();
    for domain in both_domains() {
        let n = synth_count();
        let a = generate(&domain, &config, &spec(n));
        let b = generate(&domain, &config, &spec(n));
        assert_eq!(a.queries.len(), n, "{}", domain.name());
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{}: same seed must reproduce the corpus byte-for-byte",
            domain.name()
        );
        let other = generate(
            &domain,
            &config,
            &GenSpec {
                seed: 0xBAD_5EED,
                count: n,
                ..GenSpec::default()
            },
        );
        assert_ne!(
            fingerprint(&a),
            fingerprint(&other),
            "{}: different seeds must diverge",
            domain.name()
        );
    }
}

/// The full pipeline (WordToAPI → EdgeToPath → PathMerging →
/// TreeToExpression) must reproduce the generator's ground truth on every
/// query, with the merge memo off and on.
#[test]
fn pipeline_agrees_with_ground_truth_memo_off_and_on() {
    let config = config();
    for domain in both_domains() {
        let corpus = generate(&domain, &config, &spec(synth_count()));
        let synth = Synthesizer::new(domain.clone(), config.clone());

        // Memo off: a fresh private path cache per query.
        for q in &corpus.queries {
            let r = synth.synthesize_graph(&q.query);
            assert_eq!(
                r.expression.as_deref(),
                Some(q.expected.as_str()),
                "{} template {}: memo-off pipeline disagrees with ground truth for {:?} ({:?})",
                domain.name(),
                q.template,
                q.surface,
                r.error,
            );
        }

        // Memo on: one shared path cache + merge memo across the corpus.
        let cache = Arc::new(SharedPathCache::new(4096));
        let memo = MergeMemo::new(2048);
        for q in &corpus.queries {
            let r = synth.synthesize_graph_memoized(&q.query, &cache, &memo);
            assert_eq!(
                r.expression.as_deref(),
                Some(q.expected.as_str()),
                "{} template {}: memoized pipeline disagrees with ground truth for {:?} ({:?})",
                domain.name(),
                q.template,
                q.surface,
                r.error,
            );
        }
    }
}

/// 1/2/4/8 workers sharing one path cache and merge memo must be
/// bitwise-identical to the sequential memo-off reference — outcome,
/// expression and CGT — on the whole generated corpus.
#[test]
fn worker_sweep_is_bitwise_identical_to_the_sequential_reference() {
    let config = config();
    for domain in both_domains() {
        let corpus = generate(&domain, &config, &spec(synth_count()));
        let synth = Synthesizer::new(domain.clone(), config.clone());
        let reference: Vec<_> = corpus
            .queries
            .iter()
            .map(|q| synth.synthesize_graph(&q.query))
            .collect();

        for workers in [1usize, 2, 4, 8] {
            let cache = Arc::new(SharedPathCache::new(4096));
            let memo = MergeMemo::new(2048);
            let mut results: Vec<Option<nlquery::Synthesis>> = Vec::new();
            results.resize_with(corpus.queries.len(), || None);

            // Striped partition over plain threads: worker `t` takes
            // indices t, t+workers, … — deterministic and ownerless.
            let stripes: Vec<Vec<(usize, Option<nlquery::Synthesis>)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> =
                        (0..workers)
                            .map(|t| {
                                let (synth, corpus, cache, memo) = (&synth, &corpus, &cache, &memo);
                                scope.spawn(move || {
                                    corpus
                                        .queries
                                        .iter()
                                        .enumerate()
                                        .skip(t)
                                        .step_by(workers)
                                        .map(|(i, q)| {
                                            (
                                                i,
                                                Some(synth.synthesize_graph_memoized(
                                                    &q.query, cache, memo,
                                                )),
                                            )
                                        })
                                        .collect()
                                })
                            })
                            .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker"))
                        .collect()
                });
            for stripe in stripes {
                for (i, r) in stripe {
                    results[i] = r;
                }
            }

            for (i, (a, b)) in reference.iter().zip(&results).enumerate() {
                let b = b.as_ref().expect("every index filled");
                let q = &corpus.queries[i];
                assert_eq!(a.outcome, b.outcome, "{} w={workers} #{i}", domain.name());
                assert_eq!(
                    a.expression,
                    b.expression,
                    "{} w={workers} #{i}",
                    domain.name()
                );
                assert_eq!(a.cgt, b.cgt, "{} w={workers} #{i}", domain.name());
                assert_eq!(
                    b.expression.as_deref(),
                    Some(q.expected.as_str()),
                    "{} w={workers} #{i}: ground truth must hold under sharing",
                    domain.name()
                );
            }
        }
    }
}
