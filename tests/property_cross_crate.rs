//! Property-based tests over the core data structures and invariants,
//! spanning the grammar and core crates: path-search soundness on random
//! grammars, the §V-C size bounds, grammar-pruning exactness, and DGGT's
//! minimality against the exhaustive baseline on random workloads.

use proptest::prelude::*;

use nlquery::domains::workload::{generate, WorkloadSpec};
use nlquery::grammar::{GrammarGraph, SearchLimits};
use nlquery::{dggt, edge2path, hisyn, Cgt, Deadline, SynthesisConfig, SynthesisStats};
use std::time::Duration;

/// A small random grammar: layered rules so that every non-terminal is
/// defined and the graph stays acyclic-ish but multi-path.
fn arb_grammar() -> impl Strategy<Value = String> {
    // layers: number of rule layers (2..4); width: alternatives per rule.
    (2usize..4, 1usize..4, proptest::collection::vec(0u8..4, 4..16)).prop_map(
        |(layers, width, seeds)| {
            let mut bnf = String::new();
            let mut seed_iter = seeds.into_iter().cycle();
            let mut next = move || seed_iter.next().expect("cycle is infinite") as usize;
            bnf.push_str("root ::= R0 l0\n");
            for layer in 0..layers {
                let mut alts = Vec::new();
                for alt in 0..width {
                    let api = format!("A{layer}X{alt}");
                    if layer + 1 < layers {
                        // Half the alternatives recurse into the next layer.
                        if next() % 2 == 0 {
                            alts.push(format!("{api} l{}", layer + 1));
                        } else {
                            alts.push(api);
                        }
                    } else {
                        alts.push(api);
                    }
                }
                bnf.push_str(&format!("l{layer} ::= {}\n", alts.join(" | ")));
            }
            bnf
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn path_search_is_sound(bnf in arb_grammar()) {
        let g = GrammarGraph::parse(&bnf).expect("generated grammars parse");
        let apis: Vec<_> = g.api_nodes().to_vec();
        for (_, from) in &apis {
            for (_, to) in &apis {
                for p in g.paths_between(*from, *to, SearchLimits::default()) {
                    // Endpoints match.
                    prop_assert_eq!(p.source, Some(*from));
                    prop_assert_eq!(p.sink, *to);
                    // Every consecutive chain pair is a real grammar edge.
                    for w in p.chain.windows(2) {
                        prop_assert!(
                            g.node(w[0]).children.contains(&w[1]),
                            "bogus edge on path"
                        );
                    }
                    // Simple path: no repeated nodes.
                    let mut seen = std::collections::BTreeSet::new();
                    for n in &p.chain {
                        prop_assert!(seen.insert(*n), "chain revisits a node");
                    }
                }
            }
        }
    }

    #[test]
    fn root_paths_start_at_root(bnf in arb_grammar()) {
        let g = GrammarGraph::parse(&bnf).expect("generated grammars parse");
        for (_, api) in g.api_nodes() {
            for p in g.paths_from_root(*api, SearchLimits::default()) {
                prop_assert_eq!(p.chain[0], g.root());
                prop_assert_eq!(*p.chain.last().expect("nonempty"), *api);
            }
        }
    }

    #[test]
    fn merged_cgt_size_within_bounds(bnf in arb_grammar()) {
        // §V-C: max(size(p_i)) <= size(merge(c)) <= sum(size(p_i)).
        let g = GrammarGraph::parse(&bnf).expect("generated grammars parse");
        let apis: Vec<_> = g.api_nodes().to_vec();
        let root_api = apis.first().expect("grammar has APIs").1;
        let paths = g.paths_from_root(root_api, SearchLimits::default());
        for (_, to) in apis.iter().take(4) {
            let more = g.paths_from_root(*to, SearchLimits::default());
            for a in paths.iter().take(3) {
                for b in more.iter().take(3) {
                    let mut cgt = Cgt::from_path(a, &g);
                    cgt.absorb_path(b, &g);
                    let merged = cgt.api_count(&g);
                    let sa = a.size(&g);
                    let sb = b.size(&g);
                    prop_assert!(merged <= sa + sb, "{merged} > {sa}+{sb}");
                    prop_assert!(merged >= sa.max(sb) && merged >= 1);
                }
            }
        }
    }

    #[test]
    fn dggt_matches_exhaustive_minimum(
        depth in 1usize..3,
        fanout in 1usize..3,
        paths in 1usize..4,
    ) {
        // Losslessness on random synthetic workloads: DGGT's minimum CGT
        // size equals the exhaustive baseline's.
        let w = generate(WorkloadSpec { depth, fanout, paths_per_edge: paths })
            .expect("workload builds");
        let cfg = SynthesisConfig::default();
        let map = edge2path::compute(&w.query, &w.w2a, &w.domain, cfg.search_limits);
        let deadline = Deadline::new(Duration::from_secs(20));

        let mut ds = SynthesisStats::default();
        let d = dggt::synthesize(&w.domain, &w.query, &w.w2a, &map, &cfg, &deadline, &mut ds)
            .expect("no timeout")
            .expect("solvable");
        let mut hs = SynthesisStats::default();
        let h = hisyn::synthesize(
            &w.domain,
            &w.query,
            &w.w2a,
            &map,
            &SynthesisConfig::hisyn_baseline(),
            &deadline,
            &mut hs,
        )
        .expect("no timeout")
        .expect("solvable");
        prop_assert_eq!(d.size, h.size);
    }

    #[test]
    fn pruning_preserves_dggt_result(
        depth in 1usize..3,
        fanout in 1usize..3,
        paths in 1usize..4,
    ) {
        let w = generate(WorkloadSpec { depth, fanout, paths_per_edge: paths })
            .expect("workload builds");
        let deadline = Deadline::new(Duration::from_secs(20));
        let with = SynthesisConfig::default();
        let without = SynthesisConfig::default()
            .grammar_pruning(false)
            .size_pruning(false);
        let map = edge2path::compute(&w.query, &w.w2a, &w.domain, with.search_limits);

        let mut s1 = SynthesisStats::default();
        let a = dggt::synthesize(&w.domain, &w.query, &w.w2a, &map, &with, &deadline, &mut s1)
            .expect("no timeout")
            .expect("solvable");
        let mut s2 = SynthesisStats::default();
        let b = dggt::synthesize(&w.domain, &w.query, &w.w2a, &map, &without, &deadline, &mut s2)
            .expect("no timeout")
            .expect("solvable");
        prop_assert_eq!(a.size, b.size);
        // And the pruned run never merges more combinations.
        prop_assert!(s1.merged_combinations <= s2.merged_combinations);
    }
}
