//! Property-style tests over the core data structures and invariants,
//! spanning the grammar and core crates: path-search soundness on random
//! grammars, the §V-C size bounds, grammar-pruning exactness, and DGGT's
//! minimality against the exhaustive baseline on random workloads.
//!
//! Driven by a tiny seeded xorshift generator instead of `proptest` so the
//! workspace builds with no registry access; every run explores the same
//! deterministic case set, and each assertion message carries the case seed
//! for replay.

use nlquery::domains::workload::{generate, WorkloadSpec};
use nlquery::grammar::{GrammarGraph, SearchLimits};
use nlquery::{dggt, edge2path, hisyn, Cgt, Deadline, SynthesisConfig, SynthesisStats};
use std::time::Duration;

/// Cases per property (proptest ran 48; the generator below reaches the
/// same shape diversity in fewer draws because layers/width are swept
/// exhaustively).
const CASES: u64 = 48;

/// Minimal xorshift64* — keep in sync with `nlquery_bench::rng` (this test
/// target cannot depend on the bench crate).
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        XorShift64(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A small random grammar: layered rules so that every non-terminal is
/// defined and the graph stays acyclic-ish but multi-path. Mirrors the old
/// proptest `arb_grammar` strategy.
fn random_grammar(rng: &mut XorShift64) -> String {
    let layers = rng.range(2, 4);
    let width = rng.range(1, 4);
    let mut bnf = String::new();
    bnf.push_str("root ::= R0 l0\n");
    for layer in 0..layers {
        let mut alts = Vec::new();
        for alt in 0..width {
            let api = format!("A{layer}X{alt}");
            if layer + 1 < layers && rng.next_u64().is_multiple_of(2) {
                // Half the alternatives recurse into the next layer.
                alts.push(format!("{api} l{}", layer + 1));
            } else {
                alts.push(api);
            }
        }
        bnf.push_str(&format!("l{layer} ::= {}\n", alts.join(" | ")));
    }
    bnf
}

#[test]
fn path_search_is_sound() {
    for seed in 0..CASES {
        let bnf = random_grammar(&mut XorShift64::new(seed + 1));
        let g = GrammarGraph::parse(&bnf).expect("generated grammars parse");
        let apis: Vec<_> = g.api_nodes().to_vec();
        for (_, from) in &apis {
            for (_, to) in &apis {
                for p in g.paths_between(*from, *to, SearchLimits::default()) {
                    // Endpoints match.
                    assert_eq!(p.source, Some(*from), "seed {seed}");
                    assert_eq!(p.sink, *to, "seed {seed}");
                    // Every consecutive chain pair is a real grammar edge.
                    for w in p.chain.windows(2) {
                        assert!(
                            g.node(w[0]).children.contains(&w[1]),
                            "bogus edge on path (seed {seed})"
                        );
                    }
                    // Simple path: no repeated nodes.
                    let mut seen = std::collections::BTreeSet::new();
                    for n in &p.chain {
                        assert!(seen.insert(*n), "chain revisits a node (seed {seed})");
                    }
                }
            }
        }
    }
}

#[test]
fn root_paths_start_at_root() {
    for seed in 0..CASES {
        let bnf = random_grammar(&mut XorShift64::new(seed + 1));
        let g = GrammarGraph::parse(&bnf).expect("generated grammars parse");
        for (_, api) in g.api_nodes() {
            for p in g.paths_from_root(*api, SearchLimits::default()) {
                assert_eq!(p.chain[0], g.root(), "seed {seed}");
                assert_eq!(*p.chain.last().expect("nonempty"), *api, "seed {seed}");
            }
        }
    }
}

#[test]
fn merged_cgt_size_within_bounds() {
    // §V-C: max(size(p_i)) <= size(merge(c)) <= sum(size(p_i)).
    for seed in 0..CASES {
        let bnf = random_grammar(&mut XorShift64::new(seed + 1));
        let g = GrammarGraph::parse(&bnf).expect("generated grammars parse");
        let apis: Vec<_> = g.api_nodes().to_vec();
        let root_api = apis.first().expect("grammar has APIs").1;
        let paths = g.paths_from_root(root_api, SearchLimits::default());
        for (_, to) in apis.iter().take(4) {
            let more = g.paths_from_root(*to, SearchLimits::default());
            for a in paths.iter().take(3) {
                for b in more.iter().take(3) {
                    let mut cgt = Cgt::from_path(a, &g);
                    cgt.absorb_path(b, &g);
                    let merged = cgt.api_count(&g);
                    let sa = a.size(&g);
                    let sb = b.size(&g);
                    assert!(merged <= sa + sb, "{merged} > {sa}+{sb} (seed {seed})");
                    assert!(merged >= sa.max(sb) && merged >= 1, "seed {seed}");
                }
            }
        }
    }
}

/// Sweep every (depth, fanout, paths_per_edge) shape the old proptest
/// ranges covered: depth 1..3, fanout 1..3, paths 1..4.
fn workload_shapes() -> impl Iterator<Item = WorkloadSpec> {
    (1usize..3).flat_map(|depth| {
        (1usize..3).flat_map(move |fanout| {
            (1usize..4).map(move |paths_per_edge| WorkloadSpec {
                depth,
                fanout,
                paths_per_edge,
            })
        })
    })
}

#[test]
fn dggt_matches_exhaustive_minimum() {
    // Losslessness on synthetic workloads: DGGT's minimum CGT size equals
    // the exhaustive baseline's.
    for spec in workload_shapes() {
        let w = generate(spec).expect("workload builds");
        let cfg = SynthesisConfig::default();
        let map = edge2path::compute(&w.query, &w.w2a, &w.domain, cfg.search_limits);
        let deadline = Deadline::new(Duration::from_secs(20));

        let mut ds = SynthesisStats::default();
        let d = dggt::synthesize(&w.domain, &w.query, &w.w2a, &map, &cfg, &deadline, &mut ds)
            .expect("no timeout")
            .expect("solvable");
        let mut hs = SynthesisStats::default();
        let h = hisyn::synthesize(
            &w.domain,
            &w.query,
            &w.w2a,
            &map,
            &SynthesisConfig::hisyn_baseline(),
            &deadline,
            &mut hs,
        )
        .expect("no timeout")
        .expect("solvable");
        assert_eq!(d.size, h.size, "spec {spec:?}");
    }
}

#[test]
fn pruning_preserves_dggt_result() {
    for spec in workload_shapes() {
        let w = generate(spec).expect("workload builds");
        let deadline = Deadline::new(Duration::from_secs(20));
        let with = SynthesisConfig::default();
        let without = SynthesisConfig::default()
            .grammar_pruning(false)
            .size_pruning(false);
        let map = edge2path::compute(&w.query, &w.w2a, &w.domain, with.search_limits);

        let mut s1 = SynthesisStats::default();
        let a = dggt::synthesize(&w.domain, &w.query, &w.w2a, &map, &with, &deadline, &mut s1)
            .expect("no timeout")
            .expect("solvable");
        let mut s2 = SynthesisStats::default();
        let b = dggt::synthesize(
            &w.domain, &w.query, &w.w2a, &map, &without, &deadline, &mut s2,
        )
        .expect("no timeout")
        .expect("solvable");
        assert_eq!(a.size, b.size, "spec {spec:?}");
        // And the pruned run never merges more combinations.
        assert!(
            s1.merged_combinations <= s2.merged_combinations,
            "spec {spec:?}"
        );
    }
}

#[test]
fn combination_count_formula_matches_actual_work_counters() {
    // `WorkloadSpec::combination_count` is the paper's theoretical HISyn
    // cost `Π_l p^{e_l}`. On generated workloads it must agree with (a)
    // the edge map's measured product and (b) the number of combinations
    // HISyn's odometer actually enumerates; DGGT's sibling-combination
    // count must stay at or below it (the Π-vs-Σ claim).
    for spec in workload_shapes() {
        let w = generate(spec).expect("workload builds");
        let theoretical = spec.combination_count();
        let map = edge2path::compute(
            &w.query,
            &w.w2a,
            &w.domain,
            SynthesisConfig::default().search_limits,
        );
        assert!(
            (map.combination_count() - theoretical).abs() <= theoretical * 1e-12,
            "spec {spec:?}: edge map product {} vs formula {theoretical}",
            map.combination_count()
        );

        let deadline = Deadline::new(Duration::from_secs(20));
        let mut hs = SynthesisStats::default();
        let _ = hisyn::synthesize(
            &w.domain,
            &w.query,
            &w.w2a,
            &map,
            &SynthesisConfig::hisyn_baseline(),
            &deadline,
            &mut hs,
        )
        .expect("no timeout");
        assert_eq!(
            hs.enumerated_combinations as f64, theoretical,
            "spec {spec:?}: HISyn must enumerate exactly the theoretical product"
        );

        let mut ds = SynthesisStats::default();
        let _ = dggt::synthesize(
            &w.domain,
            &w.query,
            &w.w2a,
            &map,
            &SynthesisConfig::default(),
            &deadline,
            &mut ds,
        )
        .expect("no timeout");
        // With one path per edge the product degenerates to 1 while the
        // per-node sum counts nodes, so Π-vs-Σ only bites from p >= 2.
        if spec.paths_per_edge >= 2 {
            assert!(
                (ds.sibling_combinations as f64) <= theoretical,
                "spec {spec:?}: DGGT sibling combinations {} exceed the HISyn product {theoretical}",
                ds.sibling_combinations
            );
        }
    }
}
