//! Long-tail cache stress: a zipfian key population drawn from the
//! grammar-walking synthetic corpus drives [`SharedPathCache`] into
//! eviction and churns [`MergeMemo`] signatures, while the invariants
//! that matter at scale must keep holding:
//!
//! - **exactly-once in flight**: even with eviction recycling keys, no
//!   key ever has two concurrent leaders computing it;
//! - **outcome partition**: `hits + misses + dedup_waits == lookups`, on
//!   the cache's own counters and as summed from per-query stats;
//! - **correctness under pressure**: a capacity-starved engine still
//!   reproduces the generator's ground truth on every query.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use nlquery::domains::gen::{generate, GenSpec};
use nlquery::domains::textedit;
use nlquery::grammar::{GrammarGraph, GrammarPath, NodeId};
use nlquery::memo::RawPath;
use nlquery::{
    edge2path, prune, Flight, MemoKey, MergeMemo, SharedPathCache, SynthesisConfig, Synthesizer,
};

/// xorshift64* with a fixed seed — deterministic, dependency-free.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        XorShift64(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// Default pipeline settings with an ample deadline, so host load can
/// never flip a query to `Timeout` mid-suite and perturb the key stream
/// or the ground-truth comparison.
fn ample_config() -> SynthesisConfig {
    SynthesisConfig::default().deadline(Duration::from_secs(600))
}

fn zipf_spec(count: usize) -> GenSpec {
    GenSpec {
        seed: 0x10C0_FFEE,
        count,
        // A steep exponent concentrates mass on few templates while the
        // tail stays long — the shape that makes LRU behavior interesting.
        zipf_exponent: 1.4,
        ..GenSpec::default()
    }
}

/// The real EdgeToPath key population of a generated corpus, in emission
/// order (so its frequency profile is the corpus's zipfian profile).
fn key_stream(count: usize) -> Vec<MemoKey> {
    let domain = textedit::domain().expect("textedit builds");
    let config = ample_config();
    let corpus = generate(&domain, &config, &zipf_spec(count));
    let mut stream = Vec::new();
    for q in &corpus.queries {
        let w2a = prune::graph_candidates(&q.query, &domain, &config);
        stream.extend(edge2path::memo_keys(
            &q.query,
            &w2a,
            &domain,
            config.search_limits,
        ));
    }
    stream
}

fn some_api() -> NodeId {
    let graph = GrammarGraph::parse("command ::= API\n").expect("mini grammar parses");
    graph.api_node("API").expect("API node exists")
}

/// Deterministic per-key value, so recomputation after eviction must
/// reproduce the original bytes.
fn value_of(key: &MemoKey, api: NodeId) -> Vec<RawPath> {
    let n = (key.gov % 3 + 1) as usize;
    (0..n)
        .map(|i| RawPath {
            gov_api: Some(api),
            dep_api: api,
            path: GrammarPath {
                source: Some(api),
                sink: api,
                chain: vec![api; (key.dep % 4 + 1) as usize + i],
            },
        })
        .collect()
}

/// Single-flight discipline survives eviction: 8 threads over a zipfian
/// key stream and a cache far smaller than the key population. Keys get
/// evicted and recomputed — but never by two leaders at once, the
/// outcome counters always partition the lookups, and every value read
/// matches the deterministic reference.
#[test]
fn single_flight_is_exactly_once_under_eviction() {
    let api = some_api();
    let stream = key_stream(300);
    let universe: Vec<MemoKey> = {
        let mut seen = std::collections::BTreeSet::new();
        stream
            .iter()
            .filter(|k| seen.insert(**k))
            .copied()
            .collect()
    };
    assert!(
        universe.len() > 24,
        "population too small to stress eviction: {}",
        universe.len()
    );
    let reference: BTreeMap<MemoKey, Vec<RawPath>> =
        universe.iter().map(|k| (*k, value_of(k, api))).collect();

    // Capacity well below the unique-key population forces LRU churn.
    let cache = Arc::new(SharedPathCache::with_shards(universe.len() / 4, 4));
    let inflight: BTreeMap<MemoKey, AtomicU64> =
        universe.iter().map(|k| (*k, AtomicU64::new(0))).collect();
    let threads = 8;
    let start = Barrier::new(threads);
    let (hits, misses, waits) = (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0));

    thread::scope(|scope| {
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            let (stream, reference, inflight) = (&stream, &reference, &inflight);
            let (start, hits, misses, waits) = (&start, &hits, &misses, &waits);
            scope.spawn(move || {
                let mut rng = XorShift64::new(0xCA11 + t as u64);
                start.wait();
                // Each thread replays a seeded sample of the zipfian
                // stream, preserving its popularity profile.
                for _ in 0..stream.len() / 2 {
                    let key = stream[rng.below(stream.len())];
                    let value = match cache.join(key) {
                        Flight::Hit(v) => {
                            hits.fetch_add(1, Ordering::Relaxed);
                            v
                        }
                        Flight::Shared(v) => {
                            waits.fetch_add(1, Ordering::Relaxed);
                            v
                        }
                        Flight::Miss(token) => {
                            misses.fetch_add(1, Ordering::Relaxed);
                            let gauge = &inflight[&key];
                            let racing = gauge.fetch_add(1, Ordering::SeqCst);
                            assert_eq!(racing, 0, "two concurrent leaders computed the same key");
                            // Widen the in-flight window so racing lookups
                            // actually contend with the leader.
                            thread::sleep(Duration::from_micros(50));
                            let v = token.complete(value_of(&key, api));
                            gauge.fetch_sub(1, Ordering::SeqCst);
                            v
                        }
                    };
                    assert_eq!(value.as_ref(), &reference[&key], "torn or mixed-up value");
                }
            });
        }
    });

    let stats = cache.stats();
    let total = (threads * (stream.len() / 2)) as u64;
    assert_eq!(
        stats.hits + stats.misses + stats.dedup_waits,
        total,
        "outcomes must partition the lookups under eviction: {stats:?}"
    );
    assert_eq!(stats.lookups(), total);
    assert_eq!(stats.hits, hits.load(Ordering::Relaxed));
    assert_eq!(stats.misses, misses.load(Ordering::Relaxed));
    assert_eq!(stats.dedup_waits, waits.load(Ordering::Relaxed));
    assert!(
        stats.evictions > 0,
        "the zipfian tail must overflow the cache: {stats:?}"
    );
    // Eviction means recomputation: strictly more misses than unique keys.
    assert!(
        stats.misses > universe.len() as u64 / 4,
        "expected recomputation churn: {stats:?}"
    );
}

/// A capacity-starved engine — path cache and merge memo both far below
/// the working set — still answers every generated query with its
/// ground-truth expression, and the per-query memo counters sum exactly
/// to the shared cache's totals.
#[test]
fn starved_engine_stays_correct_and_counters_partition() {
    let domain = textedit::domain().expect("textedit builds");
    let config = ample_config();
    let corpus = generate(&domain, &config, &zipf_spec(200));
    let synth = Synthesizer::new(domain.clone(), config.clone());

    // Tiny tiers: the path cache sees eviction, the merge memo sees
    // signature churn from synonym/literal variation across emissions.
    let cache = Arc::new(SharedPathCache::with_shards(8, 2));
    let memo = MergeMemo::with_shards(16, 2);
    let threads = 4;

    let per_query: u64 = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (synth, corpus, cache, memo) = (&synth, &corpus, &cache, &memo);
                scope.spawn(move || {
                    let mut sum = 0u64;
                    for q in corpus.queries.iter().skip(t).step_by(threads) {
                        let r = synth.synthesize_graph_memoized(&q.query, cache, memo);
                        assert_eq!(
                            r.expression.as_deref(),
                            Some(q.expected.as_str()),
                            "template {}: starved caches must never change answers",
                            q.template
                        );
                        sum += r.stats.memo_hits + r.stats.memo_misses + r.stats.memo_dedup_waits;
                    }
                    sum
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    });

    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses + stats.dedup_waits,
        stats.lookups(),
        "{stats:?}"
    );
    assert_eq!(
        per_query,
        stats.lookups(),
        "per-query memo counters must sum to the cache totals: {stats:?}"
    );
    assert!(
        stats.evictions > 0,
        "a capacity-8 cache must evict under this corpus: {stats:?}"
    );
    let mstats = memo.stats();
    assert!(
        mstats.evictions > 0 || mstats.entries <= 16,
        "merge memo must churn within its capacity: {mstats:?}"
    );
}
