//! Concurrency suite for the sharded single-flight [`SharedPathCache`].
//!
//! A seeded multi-threaded stress run (1, 2, 4 and 8 threads over
//! overlapping key sets) locks in the cache's contract:
//!
//! - values read under contention are **bitwise identical** to a
//!   sequential fill — no cross-key mixups, no torn values;
//! - the lookup outcomes partition: `hits + misses + dedup_waits ==
//!   total lookups`, on the cache counters and as observed by callers;
//! - **exactly-once computation**: with ample capacity every unique key
//!   is computed by exactly one leader no matter how many threads race
//!   for it, and `misses == unique keys touched`.
//!
//! No external crates: randomness is an inline xorshift64* generator with
//! fixed seeds, so every run exercises the same schedule-independent
//! assertions.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use nlquery::grammar::{GrammarGraph, GrammarPath, NodeId};
use nlquery::memo::RawPath;
use nlquery::{Flight, MemoDirection, MemoKey, SharedPathCache};

/// xorshift64* with a fixed seed — deterministic, dependency-free.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        XorShift64(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// Harvests a real [`NodeId`] — the type is deliberately opaque, so tests
/// obtain one from a parsed grammar.
fn some_api() -> NodeId {
    let graph = GrammarGraph::parse("command ::= API\n").expect("mini grammar parses");
    graph.api_node("API").expect("API node exists")
}

/// A fixed universe of keys spanning both directions and enough hash
/// diversity to cover every shard.
fn key_universe() -> Vec<MemoKey> {
    (0..32u64)
        .map(|i| MemoKey {
            gov: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            dep: i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ 0x5555,
            direction: if i % 2 == 0 {
                MemoDirection::Between
            } else {
                MemoDirection::FromRoot
            },
        })
        .collect()
}

/// The deterministic "search result" for a key: length and chain shape are
/// key-derived, so any cross-key mixup or torn write breaks bitwise
/// equality with the reference fill.
fn value_of(key: &MemoKey, api: NodeId) -> Vec<RawPath> {
    let paths = (key.gov % 4 + 1) as usize;
    let chain = (key.dep % 3 + 1) as usize;
    (0..paths)
        .map(|i| RawPath {
            gov_api: match key.direction {
                MemoDirection::Between => Some(api),
                MemoDirection::FromRoot => None,
            },
            dep_api: api,
            path: GrammarPath {
                source: match key.direction {
                    MemoDirection::Between => Some(api),
                    MemoDirection::FromRoot => None,
                },
                sink: api,
                chain: vec![api; chain + i],
            },
        })
        .collect()
}

/// Runs `threads` workers over `lookups_per_thread` seeded lookups each and
/// checks the invariants against a sequential reference fill.
fn stress(threads: usize, lookups_per_thread: usize) {
    let api = some_api();
    let universe = key_universe();

    // Reference: what a sequential fill stores for every key.
    let reference: BTreeMap<MemoKey, Vec<RawPath>> = {
        let cache = Arc::new(SharedPathCache::with_shards(1024, 8));
        universe
            .iter()
            .map(|&k| {
                let value = match cache.join(k) {
                    Flight::Miss(token) => token.complete(value_of(&k, api)),
                    other => panic!("sequential fill cannot hit: {other:?}"),
                };
                (k, value.as_ref().clone())
            })
            .collect()
    };

    // Ample capacity: no evictions, so exactly-once holds for the whole run.
    let cache = Arc::new(SharedPathCache::with_shards(1024, 8));
    let computed: Vec<AtomicU64> = (0..universe.len()).map(|_| AtomicU64::new(0)).collect();
    let start = Barrier::new(threads);
    // Per-caller outcome tallies, summed after the run.
    let (hits, misses, waits) = (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0));

    thread::scope(|scope| {
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            let (universe, computed, reference) = (&universe, &computed, &reference);
            let (start, hits, misses, waits) = (&start, &hits, &misses, &waits);
            scope.spawn(move || {
                let mut rng = XorShift64::new(0xA5A5 + t as u64);
                start.wait();
                for _ in 0..lookups_per_thread {
                    // Overlapping subsets: each thread sees 3/4 of the
                    // universe, offset by thread id, so every pair of
                    // threads shares keys without sharing all of them.
                    let span = universe.len() * 3 / 4;
                    let index = (t * 4 + rng.below(span)) % universe.len();
                    let key = universe[index];
                    let value = match cache.join(key) {
                        Flight::Hit(v) => {
                            hits.fetch_add(1, Ordering::Relaxed);
                            v
                        }
                        Flight::Shared(v) => {
                            waits.fetch_add(1, Ordering::Relaxed);
                            v
                        }
                        Flight::Miss(token) => {
                            misses.fetch_add(1, Ordering::Relaxed);
                            computed[index].fetch_add(1, Ordering::Relaxed);
                            // Widen the in-flight window so concurrent
                            // lookups of this key actually race the leader.
                            thread::sleep(Duration::from_micros(100));
                            token.complete(value_of(&key, api))
                        }
                    };
                    assert_eq!(
                        value.as_ref(),
                        &reference[&key],
                        "thread {t} read a value that differs from the sequential fill"
                    );
                }
            });
        }
    });

    let stats = cache.stats();
    let total = (threads * lookups_per_thread) as u64;

    // Outcome partition, both as counted by the cache and by the callers.
    assert_eq!(
        stats.hits + stats.misses + stats.dedup_waits,
        total,
        "threads={threads}: outcomes must partition the lookups: {stats:?}"
    );
    assert_eq!(stats.lookups(), total);
    assert_eq!(stats.hits, hits.load(Ordering::Relaxed));
    assert_eq!(stats.misses, misses.load(Ordering::Relaxed));
    assert_eq!(stats.dedup_waits, waits.load(Ordering::Relaxed));

    // Exactly-once: every touched key was computed by exactly one leader.
    let touched: u64 = computed
        .iter()
        .map(|c| {
            let n = c.load(Ordering::Relaxed);
            assert!(n <= 1, "a key was computed {n} times");
            n
        })
        .sum();
    assert_eq!(
        stats.misses, touched,
        "threads={threads}: misses must equal unique keys computed"
    );
    assert_eq!(stats.evictions, 0, "ample capacity must never evict");

    // Post-run read-back: the resident values equal the sequential fill.
    for (index, key) in universe.iter().enumerate() {
        if computed[index].load(Ordering::Relaxed) == 1 {
            let value = cache.get(*key).expect("computed key stays resident");
            assert_eq!(value.as_ref(), &reference[key]);
        }
    }
}

#[test]
fn single_thread_stress() {
    stress(1, 400);
}

#[test]
fn two_thread_stress() {
    stress(2, 400);
}

#[test]
fn four_thread_stress() {
    stress(4, 300);
}

#[test]
fn eight_thread_stress() {
    stress(8, 250);
}

#[test]
fn eight_threads_racing_one_key_compute_it_once() {
    // The sharpest form of the exactly-once claim: 8 threads released by a
    // barrier onto one cold key. One leads, everyone else shares.
    let api = some_api();
    let key = MemoKey {
        gov: 7,
        dep: 11,
        direction: MemoDirection::Between,
    };
    let cache = Arc::new(SharedPathCache::with_shards(64, 8));
    let computed = AtomicU64::new(0);
    let start = Barrier::new(8);

    thread::scope(|scope| {
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let (computed, start) = (&computed, &start);
            scope.spawn(move || {
                start.wait();
                let value = match cache.join(key) {
                    Flight::Miss(token) => {
                        computed.fetch_add(1, Ordering::Relaxed);
                        thread::sleep(Duration::from_millis(20));
                        token.complete(value_of(&key, api))
                    }
                    Flight::Hit(v) | Flight::Shared(v) => v,
                };
                assert_eq!(value.as_ref(), &value_of(&key, api));
            });
        }
    });

    assert_eq!(computed.load(Ordering::Relaxed), 1, "exactly one leader");
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits + stats.dedup_waits, 7);
    assert_eq!(stats.lookups(), 8);
}

#[test]
fn batch_engine_counters_partition_under_contention() {
    // End-to-end: a real batch over a corpus with heavy structural overlap
    // must satisfy the same partition on the engine's shared cache, at
    // every worker count.
    use nlquery::domains::astmatcher;
    use nlquery::{BatchEngine, BatchOptions, SynthesisConfig};

    let queries: Vec<String> = astmatcher::queries().into_iter().map(|c| c.query).collect();
    for workers in [1, 2, 4, 8] {
        let engine = BatchEngine::with_options(
            astmatcher::domain().expect("domain builds"),
            SynthesisConfig::default(),
            BatchOptions {
                workers,
                cache_capacity: 4096,
                ..BatchOptions::default()
            },
        );
        let report = engine.synthesize_batch(&queries);
        let cache = &report.stats.cache;
        let per_query: u64 = report
            .results
            .iter()
            .map(|r| r.stats.memo_hits + r.stats.memo_misses + r.stats.memo_dedup_waits)
            .sum();
        assert_eq!(
            per_query,
            cache.lookups(),
            "workers={workers}: per-query memo counters must sum to the cache totals: {cache:?}"
        );
    }
}
