//! Differential gate for the bitset CGT kernel: on both domains' full
//! query suites, kernel-backed DGGT and HISyn must produce results
//! identical to the pre-change `BTreeSet` implementation (which
//! `cgt_kernel(false)` preserves verbatim) — same outcome, expression,
//! CGT node/edge sets, and merge counters — at batch worker counts
//! 1, 2 and 4.
//!
//! Queries that time out under either representation are skipped (a
//! faster kernel legitimately finishes work the reference cannot), but a
//! minimum compared fraction is enforced so the gate cannot silently
//! degenerate.

use nlquery::domains::{astmatcher, textedit};
use nlquery::{BatchEngine, BatchOptions, Engine, Outcome, Synthesis, SynthesisConfig};
use std::time::Duration;

/// The comparable projection of one synthesis result; `None` for
/// timeouts, which depend on representation speed.
fn fingerprint(s: &Synthesis) -> Option<String> {
    if s.outcome == Outcome::Timeout {
        return None;
    }
    Some(format!(
        "{:?}|{:?}|{:?}|merged={} pruned_g={} pruned_s={}",
        s.outcome,
        s.expression,
        s.cgt,
        s.stats.merged_combinations,
        s.stats.pruned_grammar,
        s.stats.pruned_size,
    ))
}

fn run(
    domain: &nlquery::Domain,
    queries: &[String],
    config: &SynthesisConfig,
    workers: usize,
) -> Vec<Option<String>> {
    let engine = BatchEngine::with_options(
        domain.clone(),
        config.clone(),
        BatchOptions {
            workers,
            cache_capacity: 1024,
            ..BatchOptions::default()
        },
    );
    let report = engine.synthesize_batch(queries);
    assert_eq!(report.results.len(), queries.len());
    report.results.iter().map(fingerprint).collect()
}

/// Compares the reference representation (workers=1) against the kernel
/// at worker counts 1/2/4, skipping timeouts on either side, and requires
/// at least `min_compared` of the suite to be comparable.
///
/// The floors are deliberately below the fractions a quiet machine
/// compares (nearly 1.0 for DGGT): these suites run unoptimized where
/// slow queries sit near the timeout, so a loaded machine legitimately
/// converts a few more of them to (skipped) timeouts.
fn assert_kernel_matches_reference(
    domain: nlquery::Domain,
    queries: &[String],
    engine: Engine,
    timeout: Duration,
    min_compared: f64,
) {
    let kernel_cfg = SynthesisConfig::default().engine(engine).timeout(timeout);
    let reference_cfg = kernel_cfg.clone().cgt_kernel(false);
    let expected = run(&domain, queries, &reference_cfg, 1);

    for workers in [1usize, 2, 4] {
        let got = run(&domain, queries, &kernel_cfg, workers);
        let mut compared = 0usize;
        for (i, (g, w)) in got.iter().zip(&expected).enumerate() {
            let (Some(g), Some(w)) = (g, w) else {
                continue;
            };
            compared += 1;
            assert_eq!(g, w, "workers={workers} query #{i}: {:?}", queries[i]);
        }
        let fraction = compared as f64 / queries.len() as f64;
        assert!(
            fraction >= min_compared,
            "workers={workers}: only {compared}/{} comparable (need {min_compared})",
            queries.len()
        );
    }
}

#[test]
fn textedit_dggt_kernel_is_bit_identical() {
    let queries: Vec<String> = textedit::queries().into_iter().map(|c| c.query).collect();
    assert_kernel_matches_reference(
        textedit::domain().expect("domain builds"),
        &queries,
        Engine::Dggt,
        Duration::from_secs(4),
        0.75,
    );
}

#[test]
fn astmatcher_dggt_kernel_is_bit_identical() {
    let queries: Vec<String> = astmatcher::queries().into_iter().map(|c| c.query).collect();
    assert_kernel_matches_reference(
        astmatcher::domain().expect("domain builds"),
        &queries,
        Engine::Dggt,
        Duration::from_secs(4),
        0.75,
    );
}

#[test]
fn textedit_hisyn_kernel_is_bit_identical() {
    let queries: Vec<String> = textedit::queries().into_iter().map(|c| c.query).collect();
    assert_kernel_matches_reference(
        textedit::domain().expect("domain builds"),
        &queries,
        Engine::HiSyn,
        Duration::from_secs(1),
        0.60,
    );
}

#[test]
fn astmatcher_hisyn_kernel_is_bit_identical() {
    let queries: Vec<String> = astmatcher::queries().into_iter().map(|c| c.query).collect();
    assert_kernel_matches_reference(
        astmatcher::domain().expect("domain builds"),
        &queries,
        Engine::HiSyn,
        Duration::from_secs(1),
        0.30,
    );
}
