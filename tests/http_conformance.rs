//! HTTP/1.x conformance suite: table-driven raw-byte requests over a
//! real socket, asserting the expected outcome, status, and connection
//! disposition — under **both** connection front ends (event-driven and
//! thread-per-connection), which must behave identically.
//!
//! Covers the protocol fixes that rode along with the event-driven
//! front end: duplicate/conflicting `Content-Length` rejection
//! (request smuggling), HTTP/1.0 connection semantics, the exact
//! `MAX_HEADERS` limit, plus pipelined keep-alive requests and
//! mid-body client disconnect.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use nlquery_core::SynthesisConfig;
use nlquery_serve::http::MAX_HEADERS;
use nlquery_serve::{Server, ServerConfig};

fn start(event_driven: bool) -> Server {
    let domain = nlquery_domains::astmatcher::domain().expect("embedded domain builds");
    Server::start(
        domain,
        SynthesisConfig::default(),
        ServerConfig {
            workers: 1,
            event_driven,
            ..ServerConfig::default()
        },
    )
    .expect("server boots")
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// One parsed response off the wire: status, the `Connection` header
/// value, and the body.
struct WireResponse {
    status: u16,
    connection: String,
    body: String,
}

/// Reads exactly one framed response (status line, headers,
/// `Content-Length` body) from the reader.
fn read_response(reader: &mut impl BufRead) -> Option<WireResponse> {
    let mut line = String::new();
    if reader.read_line(&mut line).ok()? == 0 {
        return None;
    }
    let status: u16 = line.split_ascii_whitespace().nth(1)?.parse().ok()?;
    let mut connection = String::new();
    let mut length = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed.split_once(':')?;
        if name.eq_ignore_ascii_case("connection") {
            connection = value.trim().to_string();
        }
        if name.eq_ignore_ascii_case("content-length") {
            length = value.trim().parse().ok()?;
        }
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).ok()?;
    Some(WireResponse {
        status,
        connection,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// Writes `raw`, half-closes the sending side, and reads the first
/// response.
fn roundtrip(addr: SocketAddr, raw: &[u8]) -> WireResponse {
    let mut stream = connect(addr);
    stream.write_all(raw).expect("send request bytes");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut reader = BufReader::new(stream);
    read_response(&mut reader).expect("a response before EOF")
}

struct Case {
    name: &'static str,
    raw: Vec<u8>,
    status: u16,
    /// Expected `Connection` response header ("close" / "keep-alive").
    connection: &'static str,
}

fn conformance_table() -> Vec<Case> {
    let headers = |n: usize| {
        let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..n {
            raw.push_str(&format!("X-{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        raw.into_bytes()
    };
    vec![
        Case {
            name: "conflicting Content-Length is rejected (smuggling vector)",
            raw: b"POST /synthesize HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 30\r\n\r\nabc"
                .to_vec(),
            status: 400,
            connection: "close",
        },
        Case {
            name: "agreeing duplicate Content-Length is still rejected",
            raw: b"POST /synthesize HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc"
                .to_vec(),
            status: 400,
            connection: "close",
        },
        Case {
            name: "comma-joined Content-Length is rejected",
            raw: b"POST /synthesize HTTP/1.1\r\nContent-Length: 3, 3\r\n\r\nabc".to_vec(),
            status: 400,
            connection: "close",
        },
        Case {
            name: "Transfer-Encoding is rejected alongside the Content-Length rules",
            raw: b"POST /synthesize HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            status: 400,
            connection: "close",
        },
        Case {
            name: "a garbage request line is 400",
            raw: b"NONSENSE\r\n\r\n".to_vec(),
            status: 400,
            connection: "close",
        },
        Case {
            name: "HTTP/1.0 defaults to Connection: close",
            raw: b"GET /healthz HTTP/1.0\r\n\r\n".to_vec(),
            status: 200,
            connection: "close",
        },
        Case {
            name: "HTTP/1.0 with keep-alive opt-in stays open",
            raw: b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n".to_vec(),
            status: 200,
            connection: "keep-alive",
        },
        Case {
            name: "a close token in a Connection list always closes",
            raw: b"GET /healthz HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n".to_vec(),
            status: 200,
            connection: "close",
        },
        Case {
            name: "exactly MAX_HEADERS headers are accepted",
            raw: headers(MAX_HEADERS),
            status: 200,
            connection: "keep-alive",
        },
        Case {
            name: "MAX_HEADERS + 1 headers are rejected",
            raw: headers(MAX_HEADERS + 1),
            status: 413,
            connection: "close",
        },
        Case {
            name: "an oversized body declaration is rejected before upload",
            raw: b"POST /synthesize HTTP/1.1\r\nContent-Length: 10485770\r\n\r\n".to_vec(),
            status: 413,
            connection: "close",
        },
    ]
}

fn run_conformance_table(event_driven: bool) {
    let server = start(event_driven);
    let addr = server.local_addr();
    for case in conformance_table() {
        let response = roundtrip(addr, &case.raw);
        assert_eq!(
            response.status, case.status,
            "[event_driven={event_driven}] {}: status (body: {})",
            case.name, response.body
        );
        assert_eq!(
            response.connection, case.connection,
            "[event_driven={event_driven}] {}: connection disposition",
            case.name
        );
    }
    server.shutdown();
    server.join();
}

#[test]
fn conformance_table_event_driven() {
    run_conformance_table(true);
}

#[test]
fn conformance_table_thread_per_connection() {
    run_conformance_table(false);
}

fn run_pipelined_keep_alive(event_driven: bool) {
    let server = start(event_driven);
    let mut stream = connect(server.local_addr());
    // Two requests in one write: responses must come back in order on
    // the same connection.
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        .expect("pipelined write");
    let mut reader = BufReader::new(stream);
    let first = read_response(&mut reader).expect("first pipelined response");
    assert_eq!(first.status, 200, "[event_driven={event_driven}]");
    assert_eq!(first.connection, "keep-alive");
    let second = read_response(&mut reader).expect("second pipelined response");
    assert_eq!(second.status, 200, "[event_driven={event_driven}]");
    assert_eq!(second.connection, "close");
    assert!(
        read_response(&mut reader).is_none(),
        "the close token ends the connection"
    );
    server.shutdown();
    server.join();
}

#[test]
fn pipelined_keep_alive_event_driven() {
    run_pipelined_keep_alive(true);
}

#[test]
fn pipelined_keep_alive_thread_per_connection() {
    run_pipelined_keep_alive(false);
}

fn run_mid_body_disconnect(event_driven: bool) {
    let server = start(event_driven);
    let addr = server.local_addr();
    // A client that promises 100 body bytes, sends 7, and vanishes.
    {
        let mut stream = connect(addr);
        stream
            .write_all(b"POST /synthesize HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial")
            .expect("truncated write");
        stream.shutdown(Shutdown::Both).expect("vanish");
    }
    // The server must neither hang nor wedge: a fresh connection is
    // served immediately.
    let response = roundtrip(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(response.status, 200, "[event_driven={event_driven}]");
    server.shutdown();
    server.join();
}

#[test]
fn mid_body_disconnect_event_driven() {
    run_mid_body_disconnect(true);
}

#[test]
fn mid_body_disconnect_thread_per_connection() {
    run_mid_body_disconnect(false);
}
