# Local mirror of .github/workflows/ci.yml — `make ci` runs the exact same
# steps as the CI gate. Keep the two in sync.

.PHONY: ci build test fmt clippy bench-batch bench-json

ci: build test fmt clippy

build:
	cargo build --release

test:
	cargo test -q

fmt:
	cargo fmt --all -- --check

clippy:
	cargo clippy --all-targets -- -D warnings

bench-batch:
	cargo run --release --bin batch_throughput

bench-json:
	NLQUERY_BENCH_JSON=BENCH_throughput.json cargo run --release --bin batch_throughput
