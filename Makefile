# Local mirror of .github/workflows/ci.yml — `make ci` runs the exact same
# steps as the CI gate. Keep the two in sync.

.PHONY: ci build test fmt clippy bench-batch bench-json bench-gate bless-golden

ci: build test fmt clippy

build:
	cargo build --release

test:
	cargo test -q

fmt:
	cargo fmt --all -- --check

clippy:
	cargo clippy --all-targets -- -D warnings

bench-batch:
	cargo run --release --bin batch_throughput

bench-json:
	NLQUERY_BENCH_JSON=BENCH_throughput.json cargo run --release --bin batch_throughput

# The CI cold-scaling gate, locally: reduced tiling, short per-query
# timeout, non-zero exit if cold throughput degrades with workers.
bench-gate:
	NLQUERY_TIMEOUT_SECS=5 NLQUERY_BENCH_TILES=2 NLQUERY_BENCH_GATE=1 cargo run --release --bin batch_throughput

# Regenerate the golden corpus snapshots after a deliberate output change.
bless-golden:
	NLQUERY_BLESS=1 cargo test --test golden_corpus
