# Local mirror of .github/workflows/ci.yml — `make ci` runs the exact same
# steps as the CI gate. Keep the two in sync.

.PHONY: ci build test test-faults fmt clippy bench-batch bench-json bench-gate bless-golden

ci: build test test-faults fmt clippy

build:
	cargo build --release

test:
	cargo test -q

# The fault-isolation suite: injected panics and busted deadlines across
# worker counts, plus the single-flight leader-panic promotion test. A
# hung batch is exactly the bug this suite exists to catch, so the run is
# wrapped in a hard wall-clock timeout rather than trusting the tests to
# terminate.
test-faults:
	timeout --signal=KILL 600 cargo test -q --test fault_injection
	timeout --signal=KILL 300 cargo test -q -p nlquery-core --lib -- batch:: memo::

fmt:
	cargo fmt --all -- --check

clippy:
	cargo clippy --all-targets -- -D warnings

bench-batch:
	cargo run --release --bin batch_throughput

bench-json:
	NLQUERY_BENCH_JSON=BENCH_throughput.json cargo run --release --bin batch_throughput

# The CI cold-scaling gate, locally: reduced tiling, short per-query
# timeout, non-zero exit if cold throughput degrades with workers.
bench-gate:
	NLQUERY_TIMEOUT_SECS=5 NLQUERY_BENCH_TILES=2 NLQUERY_BENCH_GATE=1 cargo run --release --bin batch_throughput

# Regenerate the golden corpus snapshots after a deliberate output change.
bless-golden:
	NLQUERY_BLESS=1 cargo test --test golden_corpus
