# Local mirror of .github/workflows/ci.yml — `make ci` runs the exact same
# steps as the CI gate. Keep the two in sync.

# Repo-wide test-harness parallelism knob: set NLQUERY_TEST_THREADS=N to
# cap libtest's parallelism for every test target below (libtest reads
# RUST_TEST_THREADS). The CI runners report few hardware threads and the
# fault/serve suites spin worker pools of their own — see DESIGN.md §10
# ("Single-core hosts") for the one canonical writeup of the caveat.
ifdef NLQUERY_TEST_THREADS
export RUST_TEST_THREADS := $(NLQUERY_TEST_THREADS)
endif

.PHONY: cache-sweep ci build test test-faults test-serve test-http-conformance test-merge-memo test-snapshot test-synthetic fmt clippy bench-batch bench-json bench-gate bench-delta bless-golden serve serve-stop serve-warm snapshot load-gen load-gen-smoke load-gen-churn

ci: build test test-faults test-merge-memo test-snapshot test-synthetic test-serve test-http-conformance fmt clippy

build:
	cargo build --release

test:
	cargo test -q

# The fault-isolation suite: injected panics and busted deadlines across
# worker counts, plus the single-flight leader-panic promotion test. A
# hung batch is exactly the bug this suite exists to catch, so the run is
# wrapped in a hard wall-clock timeout rather than trusting the tests to
# terminate.
test-faults:
	timeout --signal=KILL 600 cargo test -q --test fault_injection
	timeout --signal=KILL 300 cargo test -q -p nlquery-core --lib -- batch:: memo:: merge_memo::

# The merge-memo differential suite: memo-on vs memo-off bitwise
# equivalence across both domains at 1/2/4/8 workers, exactly-once
# computation per merge signature under concurrency, and
# never-cache-a-timeout at the memo layer.
test-merge-memo:
	timeout --signal=KILL 600 cargo test -q --test merge_memo_differential

# The warm-state integrity suite: snapshot restore and AOT seeding must
# be observationally invisible (bitwise-identical results on both
# domains across worker counts), and stale/damaged snapshots must fall
# back to a cold boot with a rendered reason.
test-snapshot:
	timeout --signal=KILL 900 cargo test -q --test snapshot_integrity

# The synthetic differential suite: 10k grammar-walking generated
# queries per domain (nlquery_domains::gen), each with a ground-truth
# expression proven at construction — byte-identical corpora per seed,
# 100% pipeline agreement with the memo on and off, and bitwise
# identity across 1/2/4/8 workers — plus the zipfian long-tail cache
# stress suite (exactly-once under eviction, counter partition).
# Release mode: the 10k corpus is ~60x the debug-default size.
test-synthetic:
	NLQUERY_SYNTH_COUNT=10000 timeout --signal=KILL 1200 cargo test -q --release --test synthetic_differential
	timeout --signal=KILL 600 cargo test -q --release --test synthetic_cache_stress

# Cache-sizing sweep: capacity x shards over the synthetic zipf corpus;
# conclusions recorded in EXPERIMENTS.md (defaults cite it).
cache-sweep:
	./scripts/cache_sweep.sh

# The serving-layer end-to-end suite: ephemeral-port boot, concurrent
# clients, 429 shedding, structured deadline errors, graceful drain,
# front-end parity, connection budget, per-client fairness. A wedged
# drain would hang forever, so it runs under a hard timeout too.
test-serve:
	timeout --signal=KILL 600 cargo test -q --test serve_integration

# The HTTP/1.x conformance suite: table-driven raw-byte requests
# (duplicate Content-Length, HTTP/1.0 semantics, exact header limits,
# pipelining, mid-body disconnect) against both connection front ends.
test-http-conformance:
	timeout --signal=KILL 300 cargo test -q --test http_conformance

fmt:
	cargo fmt --all -- --check

clippy:
	cargo clippy --all-targets -- -D warnings

bench-batch:
	cargo run --release --bin batch_throughput

bench-json:
	NLQUERY_BENCH_JSON=BENCH_throughput.json cargo run --release --bin batch_throughput

# The CI perf gates, locally: reduced tiling, short per-query timeout,
# non-zero exit if cold throughput degrades with workers OR the warm
# pass blows its merge-time budget / drops below the warm qps floor
# (budgets live in crates/bench/src/bin/batch_throughput.rs; override
# with NLQUERY_BENCH_WARM_MERGE_FRACTION / NLQUERY_BENCH_WARM_QPS_FLOOR).
bench-gate:
	NLQUERY_TIMEOUT_SECS=5 NLQUERY_BENCH_TILES=2 NLQUERY_BENCH_GATE=1 cargo run --release --bin batch_throughput

# Markdown delta table of the last bench run against the committed
# baseline (CI appends this to the job summary).
bench-delta:
	python3 scripts/bench_delta.py BENCH_throughput.json BENCH_throughput.json

# Run the resident query service on localhost (std-only HTTP/1.1; no
# signal handler, so stop it with `make serve-stop` or POST /shutdown).
serve:
	cargo run --release --bin nlquery-serve -- --addr 127.0.0.1:7878

serve-stop:
	curl -s -X POST http://127.0.0.1:7878/shutdown || true

# Produce a warm-state snapshot (path cache + merge memo) by replaying
# the domain corpus twice; `make serve-warm` restores it at boot. Tune
# with NLQUERY_SNAPSHOT_DOMAIN / NLQUERY_SNAPSHOT_PATH.
snapshot:
	cargo run --release --bin warm_snapshot

# Boot the resident service warm: restore warm_state.json (written by
# `make snapshot` or a previous drain), seed the AOT-compiled path
# table from a persistent artifact cache, rewrite the snapshot every
# 60 s and on graceful drain.
serve-warm:
	cargo run --release --bin nlquery-serve -- --addr 127.0.0.1:7878 \
		--snapshot warm_state.json --snapshot-interval-secs 60 \
		--aot --aot-cache aot_cache.json

# Loopback load generator: boots the server in-process on an ephemeral
# port, drives it with concurrent keep-alive connections (the
# event-driven front end by default), and writes BENCH_serve.json
# (p50/p95/p99 latency, qps, shed rate, rejected/dropped connection
# counts; exits non-zero on any silently-dropped connection). Tune with
# NLQUERY_LOAD_CONNS / NLQUERY_LOAD_REQUESTS / NLQUERY_LOAD_QUEUE_DEPTH /
# NLQUERY_LOAD_MODE / NLQUERY_LOAD_FRONT_END / NLQUERY_LOAD_MAX_CONNS.
load-gen:
	cargo run --release --bin load_gen

# The CI smoke variant: small N under a hard wall-clock timeout.
load-gen-smoke:
	NLQUERY_LOAD_CONNS=2 NLQUERY_LOAD_REQUESTS=10 timeout --signal=KILL 300 cargo run --release --bin load_gen

# The CI connection-churn variant: a fresh connection per request
# through the event-driven front end; gates on zero silently-dropped
# connections and writes BENCH_serve_churn.json.
load-gen-churn:
	NLQUERY_LOAD_CONNS=8 NLQUERY_LOAD_REQUESTS=25 NLQUERY_LOAD_MODE=churn \
		NLQUERY_BENCH_JSON=BENCH_serve_churn.json \
		timeout --signal=KILL 300 cargo run --release --bin load_gen

# Regenerate the golden corpus snapshots after a deliberate output change.
bless-golden:
	NLQUERY_BLESS=1 cargo test --test golden_corpus
