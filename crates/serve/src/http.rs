//! A minimal HTTP/1.x message layer over `std::io`.
//!
//! The workspace is offline-green (no registry dependencies), so the
//! service speaks just enough HTTP itself: request-line + headers +
//! `Content-Length` bodies, keep-alive by default (HTTP/1.0 defaults to
//! close, per RFC 9112 §9.3), explicit size limits on every input. No
//! chunked transfer, no TLS, no HTTP/2 — this is a loopback/sidecar
//! service surface, not an edge server.
//!
//! The core of the module is [`RequestParser`], a *resumable* parser:
//! bytes are [fed](RequestParser::feed) in whatever chunks the
//! transport produces (a blocking `BufRead` fill or a nonblocking
//! socket read) and [`RequestParser::next`] yields a request exactly
//! when one is complete. Pipelined bytes beyond the first request stay
//! buffered inside the parser for the next `next` call, which is what
//! lets both the thread-per-connection path and the event-driven
//! connection layer share one implementation of the protocol rules.

use std::io::{self, BufRead, Write};

use nlquery_core::JsonValue;

/// Maximum accepted request-line + header block, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Maximum accepted header count (exact: request number
/// `MAX_HEADERS + 1` is rejected).
pub const MAX_HEADERS: usize = 100;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method verb (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// The request target (path + optional query string), as sent.
    pub target: String,
    /// Whether the request line said `HTTP/1.0` (affects the default
    /// connection disposition; see [`Request::wants_close`]).
    pub http_1_0: bool,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this name (case-insensitive), trimmed.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection closes after this exchange.
    ///
    /// `Connection` is parsed as a comma-separated token list across
    /// every `Connection` header (`keep-alive, close` closes): a `close`
    /// token always closes; otherwise HTTP/1.1 defaults to keep-alive
    /// and HTTP/1.0 defaults to close unless the client opted in with a
    /// `keep-alive` token.
    pub fn wants_close(&self) -> bool {
        let mut keep_alive = false;
        for (name, value) in &self.headers {
            if !name.eq_ignore_ascii_case("connection") {
                continue;
            }
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    return true;
                }
                if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
        self.http_1_0 && !keep_alive
    }

    /// The body as UTF-8, if valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// The path portion of the target (everything before `?`).
    pub fn path(&self) -> &str {
        self.target
            .split_once('?')
            .map(|(path, _)| path)
            .unwrap_or(&self.target)
    }
}

/// What [`RequestParser::next`] found in the buffered bytes.
#[derive(Debug)]
pub enum Parsed {
    /// The buffered bytes do not yet hold a complete request; feed more.
    NeedMore,
    /// A complete, well-formed request (pipelined bytes beyond it remain
    /// buffered for the next call).
    Request(Request),
    /// The bytes were not a parseable HTTP/1.x request (respond 400 and
    /// close). The parser is poisoned: it keeps reporting this.
    Malformed(&'static str),
    /// The head, header count, or declared body exceeded its size limit
    /// (respond 413 and close). The parser is poisoned.
    TooLarge,
}

/// What [`read_request`] found on the wire.
#[derive(Debug)]
pub enum RequestOutcome {
    /// A complete, well-formed request.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The bytes were not a parseable HTTP/1.x request (respond 400 and
    /// close).
    Malformed(&'static str),
    /// The head or body exceeded its size limit (respond 413 and close).
    TooLarge,
}

/// Internal parser position: before/inside a head, or collecting a
/// declared body.
#[derive(Debug)]
enum ParseState {
    /// Waiting for a complete request-line + header block.
    Head,
    /// Head parsed; collecting `remaining` body bytes.
    Body { head: Request, remaining: usize },
    /// A protocol or size error was reported; the connection is done.
    Poisoned(PoisonKind),
}

#[derive(Debug, Clone, Copy)]
enum PoisonKind {
    Malformed(&'static str),
    TooLarge,
}

/// A resumable HTTP/1.x request parser over externally-fed bytes.
///
/// One parser instance lives for the whole life of a connection: feed
/// it every chunk the socket produces and call [`RequestParser::next`]
/// until it returns [`Parsed::NeedMore`]. Bytes belonging to pipelined
/// follow-up requests are retained across calls.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    start: usize,
    state: ParseState,
}

impl Default for RequestParser {
    fn default() -> RequestParser {
        RequestParser::new()
    }
}

impl RequestParser {
    /// A fresh parser with an empty buffer.
    pub fn new() -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            start: 0,
            state: ParseState::Head,
        }
    }

    /// Appends transport bytes to the parse buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when the parser sits at a request boundary with nothing
    /// buffered but (at most) blank lines — the state in which a peer
    /// EOF is a clean close rather than a truncated request.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, ParseState::Head)
            && self.buf[self.start..]
                .iter()
                .all(|&b| b == b'\r' || b == b'\n')
    }

    /// Bytes currently buffered and not yet consumed by a parse.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Tries to produce the next request from the buffered bytes.
    pub fn next_request(&mut self) -> Parsed {
        loop {
            match &mut self.state {
                ParseState::Poisoned(PoisonKind::Malformed(m)) => return Parsed::Malformed(m),
                ParseState::Poisoned(PoisonKind::TooLarge) => return Parsed::TooLarge,
                ParseState::Head => match self.parse_head() {
                    HeadStep::NeedMore => return Parsed::NeedMore,
                    HeadStep::Parsed => continue, // state advanced to Body
                    HeadStep::Fail(kind) => {
                        self.state = ParseState::Poisoned(kind);
                        continue;
                    }
                },
                ParseState::Body { head, remaining } => {
                    let available = self.buf.len() - self.start;
                    if available < *remaining {
                        return Parsed::NeedMore;
                    }
                    let mut request = std::mem::replace(head, empty_request());
                    let body_len = *remaining;
                    request.body = self.buf[self.start..self.start + body_len].to_vec();
                    self.start += body_len;
                    self.state = ParseState::Head;
                    self.compact();
                    return Parsed::Request(request);
                }
            }
        }
    }

    /// Reclaims the consumed prefix of the buffer once it dominates.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > MAX_HEAD_BYTES {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Attempts to parse one request-line + header block starting at
    /// `self.start`. On success the state advances to
    /// [`ParseState::Body`] (possibly with zero remaining bytes) and the
    /// consumed head bytes are released.
    fn parse_head(&mut self) -> HeadStep {
        let mut pos = self.start;

        // Request line; tolerate leading empty lines (robustness,
        // RFC 9112 §2.2).
        let request_line = loop {
            let Some((line, next)) = take_line(&self.buf, pos) else {
                return self.head_stalled();
            };
            if next - self.start > MAX_HEAD_BYTES {
                return HeadStep::Fail(PoisonKind::TooLarge);
            }
            pos = next;
            if !line.is_empty() {
                break line;
            }
        };
        let Ok(request_line) = std::str::from_utf8(request_line) else {
            return HeadStep::Fail(PoisonKind::Malformed("bad request line"));
        };
        let mut parts = request_line.split_ascii_whitespace();
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return HeadStep::Fail(PoisonKind::Malformed("bad request line"));
        };
        if parts.next().is_some() || !version.starts_with("HTTP/1.") {
            return HeadStep::Fail(PoisonKind::Malformed("bad request line"));
        }
        let http_1_0 = version == "HTTP/1.0";
        let method = method.to_string();
        let target = target.to_string();

        // Headers. The limit is exact: header number `MAX_HEADERS + 1`
        // is rejected before it is stored.
        let mut headers: Vec<(String, String)> = Vec::new();
        loop {
            let Some((line, next)) = take_line(&self.buf, pos) else {
                return self.head_stalled();
            };
            if next - self.start > MAX_HEAD_BYTES {
                return HeadStep::Fail(PoisonKind::TooLarge);
            }
            pos = next;
            if line.is_empty() {
                break;
            }
            if headers.len() == MAX_HEADERS {
                return HeadStep::Fail(PoisonKind::TooLarge);
            }
            let Ok(line) = std::str::from_utf8(line) else {
                return HeadStep::Fail(PoisonKind::Malformed("header is not UTF-8"));
            };
            let Some((name, value)) = line.split_once(':') else {
                return HeadStep::Fail(PoisonKind::Malformed("header without ':'"));
            };
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }

        let head = Request {
            method,
            target,
            http_1_0,
            headers,
            body: Vec::new(),
        };
        if head.header("transfer-encoding").is_some() {
            return HeadStep::Fail(PoisonKind::Malformed("chunked bodies unsupported"));
        }

        // `Content-Length`: exactly zero or one header. Duplicate or
        // conflicting values are a request-smuggling vector (RFC 9112
        // §6.3) and are rejected outright, even when they agree.
        let mut lengths = head
            .headers
            .iter()
            .filter(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .map(|(_, v)| v.as_str());
        let length = match (lengths.next(), lengths.next()) {
            (_, Some(_)) => {
                return HeadStep::Fail(PoisonKind::Malformed("duplicate Content-Length"))
            }
            (None, None) => 0,
            (Some(v), None) => match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => return HeadStep::Fail(PoisonKind::Malformed("bad Content-Length")),
            },
        };
        if length > MAX_BODY_BYTES {
            return HeadStep::Fail(PoisonKind::TooLarge);
        }

        self.start = pos;
        self.state = ParseState::Body {
            head,
            remaining: length,
        };
        HeadStep::Parsed
    }

    /// An incomplete head: `NeedMore`, unless the unterminated tail has
    /// already blown the head budget.
    fn head_stalled(&self) -> HeadStep {
        if self.buf.len() - self.start > MAX_HEAD_BYTES {
            return HeadStep::Fail(PoisonKind::TooLarge);
        }
        HeadStep::NeedMore
    }
}

enum HeadStep {
    NeedMore,
    Parsed,
    Fail(PoisonKind),
}

/// Placeholder request used while moving a parsed head out of the state
/// machine.
fn empty_request() -> Request {
    Request {
        method: String::new(),
        target: String::new(),
        http_1_0: false,
        headers: Vec::new(),
        body: Vec::new(),
    }
}

/// The next complete line at `pos`: its content (trailing `\r` removed)
/// and the position just past the `\n`.
fn take_line(buf: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    let nl = buf[pos..].iter().position(|&b| b == b'\n')?;
    let mut line = &buf[pos..pos + nl];
    if let [head @ .., b'\r'] = line {
        line = head;
    }
    Some((line, pos + nl + 1))
}

/// Reads one request from a blocking stream through `parser` (which
/// retains pipelined bytes across calls — use one parser per
/// connection). Blocks until a full request arrives, the peer closes,
/// or the stream's read timeout fires (which surfaces as
/// `Err(WouldBlock | TimedOut)`).
pub fn read_request(
    reader: &mut impl BufRead,
    parser: &mut RequestParser,
) -> io::Result<RequestOutcome> {
    loop {
        match parser.next_request() {
            Parsed::Request(request) => return Ok(RequestOutcome::Request(request)),
            Parsed::Malformed(message) => return Ok(RequestOutcome::Malformed(message)),
            Parsed::TooLarge => return Ok(RequestOutcome::TooLarge),
            Parsed::NeedMore => {
                let chunk = reader.fill_buf()?;
                if chunk.is_empty() {
                    return Ok(if parser.is_idle() {
                        RequestOutcome::Closed
                    } else {
                        RequestOutcome::Malformed("connection closed mid-request")
                    });
                }
                let n = chunk.len();
                parser.feed(chunk);
                reader.consume(n);
            }
        }
    }
}

/// One HTTP response to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the standard set.
    pub extra_headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &JsonValue) -> Response {
        Response::raw_json(status, value.render())
    }

    /// A JSON response from an already-rendered document.
    pub fn raw_json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Adds a header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// Serializes the response. `keep_alive` controls the `Connection`
    /// header; the caller closes the stream when it is `false`.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        for (name, value) in &self.extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// The canonical reason phrase for the status codes this service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> RequestOutcome {
        let mut parser = RequestParser::new();
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()), &mut parser).unwrap()
    }

    #[test]
    fn parses_a_post_with_body() {
        let out = parse(
            "POST /synthesize HTTP/1.1\r\nHost: x\r\nContent-Length: 17\r\n\r\n{\"query\": \"noop\"}",
        );
        let RequestOutcome::Request(req) = out else {
            panic!("expected a request, got {out:?}");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/synthesize");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body_str(), Some("{\"query\": \"noop\"}"));
        assert!(!req.http_1_0);
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_get_without_body_and_strips_query_string() {
        let out = parse("GET /metrics?window=5 HTTP/1.1\r\nConnection: close\r\n\r\n");
        let RequestOutcome::Request(req) = out else {
            panic!("expected a request, got {out:?}");
        };
        assert_eq!(req.path(), "/metrics");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_closed() {
        assert!(matches!(parse(""), RequestOutcome::Closed));
        // Stray blank lines before EOF are still a clean close.
        assert!(matches!(parse("\r\n\r\n"), RequestOutcome::Closed));
    }

    #[test]
    fn malformed_inputs_are_flagged_not_errors() {
        for raw in [
            "NONSENSE\r\n\r\n",
            "GET / SPDY/3\r\n\r\n",
            "GET / HTTP/1.1\r\nbroken header\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), RequestOutcome::Malformed(_)),
                "{raw:?} should be malformed"
            );
        }
    }

    #[test]
    fn duplicate_content_length_is_a_smuggling_vector() {
        // Conflicting values: the classic desync shape.
        let conflicting = "POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 30\r\n\r\nabc";
        // Even *agreeing* duplicates are rejected: downstream parsers
        // disagree about which one wins, so none may pass through.
        let agreeing = "POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc";
        // Comma-joined values inside one header are equally malformed.
        let joined = "POST / HTTP/1.1\r\nContent-Length: 3, 3\r\n\r\nabc";
        for raw in [conflicting, agreeing, joined] {
            assert!(
                matches!(parse(raw), RequestOutcome::Malformed(_)),
                "{raw:?} must be rejected"
            );
        }
    }

    #[test]
    fn http_1_0_defaults_to_close_unless_keep_alive() {
        let plain = parse("GET / HTTP/1.0\r\n\r\n");
        let RequestOutcome::Request(req) = plain else {
            panic!("1.0 requests parse");
        };
        assert!(req.http_1_0);
        assert!(req.wants_close(), "HTTP/1.0 defaults to close");

        let opted_in = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        let RequestOutcome::Request(req) = opted_in else {
            panic!("1.0 requests parse");
        };
        assert!(!req.wants_close(), "1.0 + keep-alive stays open");
    }

    #[test]
    fn connection_token_lists_are_parsed() {
        // `close` wins no matter where it appears in the list.
        let listed = parse("GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n");
        let RequestOutcome::Request(req) = listed else {
            panic!("request parses");
        };
        assert!(req.wants_close(), "a close token always closes");

        let multi = parse("GET / HTTP/1.0\r\nConnection: foo\r\nConnection: Keep-Alive\r\n\r\n");
        let RequestOutcome::Request(req) = multi else {
            panic!("request parses");
        };
        assert!(!req.wants_close(), "keep-alive found across headers");
    }

    #[test]
    fn oversized_inputs_are_rejected() {
        let huge_header = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(parse(&huge_header), RequestOutcome::TooLarge));
        let huge_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&huge_body), RequestOutcome::TooLarge));

        // The header-count limit is exact: MAX_HEADERS is accepted,
        // MAX_HEADERS + 1 is not.
        let headers = |n: usize| {
            let mut raw = String::from("GET / HTTP/1.1\r\n");
            for i in 0..n {
                raw.push_str(&format!("X-{i}: v\r\n"));
            }
            raw.push_str("\r\n");
            raw
        };
        assert!(
            matches!(parse(&headers(MAX_HEADERS)), RequestOutcome::Request(_)),
            "exactly MAX_HEADERS headers are accepted"
        );
        assert!(
            matches!(parse(&headers(MAX_HEADERS + 1)), RequestOutcome::TooLarge),
            "MAX_HEADERS + 1 headers are rejected"
        );
    }

    #[test]
    fn pipelined_requests_are_retained_across_calls() {
        let mut parser = RequestParser::new();
        parser.feed(
            b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
              GET /b HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        let Parsed::Request(first) = parser.next_request() else {
            panic!("first pipelined request parses");
        };
        assert_eq!(first.path(), "/a");
        assert_eq!(first.body_str(), Some("hi"));
        let Parsed::Request(second) = parser.next_request() else {
            panic!("second pipelined request parses");
        };
        assert_eq!(second.path(), "/b");
        assert!(second.wants_close());
        assert!(matches!(parser.next_request(), Parsed::NeedMore));
        assert!(parser.is_idle());
    }

    #[test]
    fn incremental_feeding_resumes_mid_request() {
        // Byte-at-a-time delivery: the parser must never lose its place.
        let raw = b"POST /synthesize HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        let mut parser = RequestParser::new();
        let mut produced = None;
        for &b in raw.iter() {
            parser.feed(&[b]);
            match parser.next_request() {
                Parsed::NeedMore => continue,
                Parsed::Request(req) => {
                    produced = Some(req);
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let req = produced.expect("request completes on the final byte");
        assert_eq!(req.body_str(), Some("body"));
        assert!(parser.is_idle());
    }

    #[test]
    fn poisoned_parsers_stay_poisoned() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET / SPDY/3\r\n\r\nGET / HTTP/1.1\r\n\r\n");
        assert!(matches!(parser.next_request(), Parsed::Malformed(_)));
        // A malformed request ends the connection; later bytes must not
        // resurrect the stream.
        assert!(matches!(parser.next_request(), Parsed::Malformed(_)));
        assert!(!parser.is_idle());
    }

    #[test]
    fn responses_serialize_with_framing() {
        let mut out = Vec::new();
        Response::json(200, &JsonValue::obj([("ok", true)]))
            .header("Retry-After", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let length: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(length, "{\"ok\":true}".len());
    }

    #[test]
    fn close_responses_say_so() {
        let mut out = Vec::new();
        Response::text(503, "draining")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
    }
}
