//! A minimal HTTP/1.1 message layer over `std::io`.
//!
//! The workspace is offline-green (no registry dependencies), so the
//! service speaks just enough HTTP itself: request-line + headers +
//! `Content-Length` bodies, keep-alive by default, explicit size limits
//! on every input. No chunked transfer, no TLS, no HTTP/2 — this is a
//! loopback/sidecar service surface, not an edge server.

use std::io::{self, BufRead, Write};

use nlquery_core::JsonValue;

/// Maximum accepted request-line + header block, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Maximum accepted header count.
pub const MAX_HEADERS: usize = 100;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method verb (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// The request target (path + optional query string), as sent.
    pub target: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this name (case-insensitive), trimmed.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8, if valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// The path portion of the target (everything before `?`).
    pub fn path(&self) -> &str {
        self.target
            .split_once('?')
            .map(|(path, _)| path)
            .unwrap_or(&self.target)
    }
}

/// What [`read_request`] found on the wire.
#[derive(Debug)]
pub enum RequestOutcome {
    /// A complete, well-formed request.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The bytes were not a parseable HTTP/1.1 request (respond 400 and
    /// close).
    Malformed(&'static str),
    /// The head or body exceeded its size limit (respond 413 and close).
    TooLarge,
}

/// Reads one request from the stream. Blocks until a full request
/// arrives, the peer closes, or the stream's read timeout fires (which
/// surfaces as `Err(WouldBlock | TimedOut)`).
pub fn read_request(reader: &mut impl BufRead) -> io::Result<RequestOutcome> {
    let mut head_bytes = 0usize;
    let mut line = String::new();

    // Request line; tolerate a leading empty line (robustness, RFC 9112).
    let request_line = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(RequestOutcome::Closed);
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Ok(RequestOutcome::TooLarge);
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if !trimmed.is_empty() {
            break trimmed.to_string();
        }
    };
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(RequestOutcome::Malformed("bad request line"));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Ok(RequestOutcome::Malformed("bad request line"));
    }
    let method = method.to_string();
    let target = target.to_string();

    // Headers.
    let mut headers = Vec::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(RequestOutcome::Malformed("connection closed mid-headers"));
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES || headers.len() > MAX_HEADERS {
            return Ok(RequestOutcome::TooLarge);
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Ok(RequestOutcome::Malformed("header without ':'"));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let request = Request {
        method,
        target,
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Ok(RequestOutcome::Malformed("chunked bodies unsupported"));
    }
    let length = match request.header("content-length") {
        None => 0,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Ok(RequestOutcome::Malformed("bad Content-Length")),
        },
    };
    if length > MAX_BODY_BYTES {
        return Ok(RequestOutcome::TooLarge);
    }
    let mut request = request;
    if length > 0 {
        request.body = vec![0u8; length];
        if let Err(e) = reader.read_exact(&mut request.body) {
            return if e.kind() == io::ErrorKind::UnexpectedEof {
                Ok(RequestOutcome::Malformed(
                    "body shorter than Content-Length",
                ))
            } else {
                Err(e)
            };
        }
    }
    Ok(RequestOutcome::Request(request))
}

/// One HTTP response to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the standard set.
    pub extra_headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &JsonValue) -> Response {
        Response::raw_json(status, value.render())
    }

    /// A JSON response from an already-rendered document.
    pub fn raw_json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Adds a header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// Serializes the response. `keep_alive` controls the `Connection`
    /// header; the caller closes the stream when it is `false`.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        for (name, value) in &self.extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// The canonical reason phrase for the status codes this service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> RequestOutcome {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec())).unwrap()
    }

    #[test]
    fn parses_a_post_with_body() {
        let out = parse(
            "POST /synthesize HTTP/1.1\r\nHost: x\r\nContent-Length: 17\r\n\r\n{\"query\": \"noop\"}",
        );
        let RequestOutcome::Request(req) = out else {
            panic!("expected a request, got {out:?}");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/synthesize");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body_str(), Some("{\"query\": \"noop\"}"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_get_without_body_and_strips_query_string() {
        let out = parse("GET /metrics?window=5 HTTP/1.1\r\nConnection: close\r\n\r\n");
        let RequestOutcome::Request(req) = out else {
            panic!("expected a request, got {out:?}");
        };
        assert_eq!(req.path(), "/metrics");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_closed() {
        assert!(matches!(parse(""), RequestOutcome::Closed));
    }

    #[test]
    fn malformed_inputs_are_flagged_not_errors() {
        for raw in [
            "NONSENSE\r\n\r\n",
            "GET / SPDY/3\r\n\r\n",
            "GET / HTTP/1.1\r\nbroken header\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), RequestOutcome::Malformed(_)),
                "{raw:?} should be malformed"
            );
        }
    }

    #[test]
    fn oversized_inputs_are_rejected() {
        let huge_header = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(parse(&huge_header), RequestOutcome::TooLarge));
        let huge_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&huge_body), RequestOutcome::TooLarge));
    }

    #[test]
    fn responses_serialize_with_framing() {
        let mut out = Vec::new();
        Response::json(200, &JsonValue::obj([("ok", true)]))
            .header("Retry-After", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let length: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(length, "{\"ok\":true}".len());
    }

    #[test]
    fn close_responses_say_so() {
        let mut out = Vec::new();
        Response::text(503, "draining")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
    }
}
