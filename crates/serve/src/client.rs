//! A tiny blocking HTTP/1.1 client for loopback use: the `load_gen`
//! bench and the integration tests drive the server with it, reusing
//! one keep-alive connection per [`HttpClient`].

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use nlquery_core::{JsonError, JsonValue};

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, as UTF-8 text (this service only emits text bodies).
    pub body: String,
}

impl HttpResponse {
    /// The first header with this name (case-insensitive), trimmed.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Parses the body as JSON.
    pub fn json(&self) -> Result<JsonValue, JsonError> {
        JsonValue::parse(&self.body)
    }
}

/// A keep-alive connection to an `nlquery-serve` instance.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects (with a generous read timeout so a wedged server fails a
    /// test instead of hanging it).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request and reads its response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        self.request_with_headers(method, path, body, &[])
    }

    /// Sends one request with extra headers (e.g. `X-Client-Id` for
    /// fairness keying) and reads its response.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> io::Result<HttpResponse> {
        let body = body.unwrap_or("");
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: nlquery\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
            body.len(),
        )?;
        for (name, value) in extra_headers {
            write!(self.writer, "{name}: {value}\r\n")?;
        }
        write!(self.writer, "\r\n{body}")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &JsonValue) -> io::Result<HttpResponse> {
        self.request("POST", path, Some(&body.render()))
    }

    /// `POST /synthesize` for `query`, optionally with a request-scoped
    /// deadline in milliseconds.
    pub fn synthesize(
        &mut self,
        query: &str,
        deadline_ms: Option<u64>,
    ) -> io::Result<HttpResponse> {
        let mut doc = JsonValue::obj([("query", JsonValue::from(query))]);
        if let Some(ms) = deadline_ms {
            doc.push_field("deadline_ms", ms);
        }
        self.post_json("/synthesize", &doc)
    }

    fn read_response(&mut self) -> io::Result<HttpResponse> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status = line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad("bad status line"))?;
        let mut headers = Vec::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed mid-headers"));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            let (name, value) = trimmed.split_once(':').ok_or_else(|| bad("bad header"))?;
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
        let length: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad("missing Content-Length"))?;
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?;
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}
