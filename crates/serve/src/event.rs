//! The event-driven connection front end: one thread, nonblocking
//! sockets, a `poll(2)` readiness loop (via [`crate::sys`]).
//!
//! Each connection is a small state machine — a resumable
//! [`RequestParser`], an output buffer, and at most one in-flight
//! `/synthesize` — so concurrency is bounded by memory and the
//! configured connection budget, not by thread count. The loop:
//!
//! - accepts in bursts while under [`ServerConfig::max_connections`]
//!   (`crate::server::ServerConfig`); over budget, connections are
//!   answered with an accounted `503` and closed, never silently
//!   dropped;
//! - reads whatever bytes are available into each connection's parser
//!   and admits complete requests through the same
//!   [`admit_synthesize`] path as the legacy front end;
//! - parks a connection with a `/synthesize` in flight (no read
//!   interest) until the micro-batcher delivers its result through the
//!   [`Completions`] queue, whose waker socket is part of the poll set
//!   — requests on one connection are answered strictly in order, so
//!   pipelining is safe;
//! - reaps idle keep-alive connections past the read timeout, and
//!   applies the same capped reply backstop as the legacy path to a
//!   wedged result channel.
//!
//! On drain the listener closes, idle connections are shed, in-flight
//! requests finish, and the loop exits once every admitted request has
//! been answered — [`Server::join`](crate::Server::join) relies on
//! that ordering.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{IpAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use nlquery_core::JsonValue;

use crate::http::{Parsed, RequestParser, Response};
use crate::server::{
    admit_synthesize, dispatch_immediate, is_synthesize, lock, reject_connection, reply_backstop,
    ReplySink, ServerShared, ROUTE_SYNTHESIZE,
};
use crate::sys::{self, PollFd};

/// How long one `poll` waits when nothing is ready: the tick that
/// drives backstop and idle reaping.
const POLL_TICK_MS: i32 = 50;
/// Upper bound on accepts per loop iteration, so one accept storm
/// cannot starve established connections of service.
const ACCEPT_BURST: usize = 128;
/// Upper bound on 8 KiB reads per connection per iteration, so one
/// fire-hose client cannot starve the rest.
const READ_BURST: usize = 16;

/// The bridge from the micro-batcher's completion callbacks into the
/// poll loop: a queue of `(request id, rendered body)` pairs plus a
/// waker socket that is part of the loop's poll set.
pub(crate) struct Completions {
    queue: Mutex<Vec<(u64, String)>>,
    waker: UnixStream,
}

impl Completions {
    /// Builds the queue and its waker socketpair; returns the shared
    /// handle (for reply sinks and [`Completions::wake`]) and the read
    /// end the event loop polls.
    pub(crate) fn pair() -> io::Result<(Arc<Completions>, UnixStream)> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        Ok((
            Arc::new(Completions {
                queue: Mutex::new(Vec::new()),
                waker: wake_tx,
            }),
            wake_rx,
        ))
    }

    /// Delivers one rendered result and wakes the loop.
    pub(crate) fn deliver(&self, request: u64, body: String) {
        lock(&self.queue).push((request, body));
        self.wake();
    }

    /// Wakes the poll loop. A full waker buffer is fine to ignore: the
    /// loop drains the queue on every wake-up and ticks regardless.
    pub(crate) fn wake(&self) {
        let _ = (&self.waker).write(&[1u8]);
    }

    fn take(&self) -> Vec<(u64, String)> {
        std::mem::take(&mut *lock(&self.queue))
    }
}

/// A `/synthesize` in flight on a connection.
struct Await {
    /// The request id keyed into the loop's pending map.
    request: u64,
    /// Admission time, for the latency histograms.
    start: Instant,
    /// The capped reply backstop (see [`reply_backstop`]).
    deadline: Instant,
    /// Whether the response closes the connection.
    close: bool,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    peer: IpAddr,
    parser: RequestParser,
    /// Serialized responses not yet written to the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// The in-flight `/synthesize`, if any. While set, the connection
    /// has no read interest: requests are handled strictly in order.
    awaiting: Option<Await>,
    /// Close once `out` drains (error responses, `Connection: close`,
    /// drain).
    close_after_flush: bool,
    /// The peer finished sending (read returned 0).
    eof: bool,
    last_activity: Instant,
}

/// Runs the readiness loop until the server drains. `wake_rx` is the
/// read end of the [`Completions`] waker.
pub(crate) fn event_loop(shared: &Arc<ServerShared>, listener: TcpListener, wake_rx: UnixStream) {
    if listener.set_nonblocking(true).is_err() {
        // Cannot run a readiness loop over a blocking listener; drain
        // immediately rather than serve wrong.
        return;
    }
    let completions = lock(&shared.event)
        .as_ref()
        .map(Arc::clone)
        .expect("event front end requires a completion channel");
    let mut listener = Some(listener);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    // `request id -> connection id` for admitted requests. An entry
    // outlives its connection when the peer vanishes mid-request: the
    // eventual completion still decrements the admission gauge exactly
    // once, whoever removes the entry.
    let mut pending: HashMap<u64, u64> = HashMap::new();
    let mut next_conn: u64 = 0;
    let mut next_request: u64 = 0;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut order: Vec<u64> = Vec::new();

    loop {
        // Drain: close the listener, shed idle connections, let
        // in-flight work finish, exit once everything is answered.
        if shared.draining() {
            listener = None;
            for conn in conns.values_mut() {
                conn.close_after_flush = true;
            }
            conns.retain(|_, c| c.awaiting.is_some() || !c.out.is_empty());
            if conns.is_empty() && pending.is_empty() {
                shared.conns_open.store(0, Ordering::Release);
                return;
            }
        }

        // Build the poll set: waker, listener, then connections.
        fds.clear();
        order.clear();
        fds.push(PollFd::new(wake_rx.as_raw_fd(), sys::POLLIN));
        let listener_slot = listener.as_ref().map(|l| {
            fds.push(PollFd::new(l.as_raw_fd(), sys::POLLIN));
            fds.len() - 1
        });
        let conn_base = fds.len();
        for (&id, conn) in &conns {
            let mut events = 0i16;
            if conn.out_pos < conn.out.len() {
                events |= sys::POLLOUT;
            }
            if conn.awaiting.is_none() && !conn.eof && !conn.close_after_flush {
                events |= sys::POLLIN;
            }
            // events may be 0 (parked awaiting a reply): POLLHUP and
            // POLLERR are reported regardless, so a vanished peer still
            // surfaces.
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
            order.push(id);
        }

        if sys::poll_fds(&mut fds, POLL_TICK_MS).is_err() {
            // A failed poll (fd pressure) must not spin the CPU.
            std::thread::sleep(Duration::from_millis(POLL_TICK_MS as u64));
            continue;
        }

        // Waker + completions: deliver finished syntheses to their
        // connections.
        if fds[0].revents & sys::POLLIN != 0 {
            let mut sink = [0u8; 64];
            while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        }
        for (request, body) in completions.take() {
            let Some(conn_id) = pending.remove(&request) else {
                continue; // already reaped by the backstop
            };
            shared.admitted.fetch_sub(1, Ordering::AcqRel);
            let Some(conn) = conns.get_mut(&conn_id) else {
                continue; // peer vanished mid-request; gauge settled above
            };
            let Some(waited) = conn.awaiting.take() else {
                continue;
            };
            let elapsed = waited.start.elapsed();
            shared.latency.record(elapsed);
            shared.route_latency[ROUTE_SYNTHESIZE].record(elapsed);
            queue_response(
                conn,
                &Response::raw_json(200, body),
                waited.close || shared.draining(),
            );
            drive(
                shared,
                conn_id,
                conn,
                &mut pending,
                &mut next_request,
                &completions,
            );
            if !settle(conn) {
                conns.remove(&conn_id);
            }
        }

        // Accept burst.
        if let (Some(l), Some(slot)) = (&listener, listener_slot) {
            if fds[slot].revents & sys::POLLIN != 0 {
                for _ in 0..ACCEPT_BURST {
                    match l.accept() {
                        Ok((stream, addr)) => {
                            shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
                            if shared.draining() || conns.len() >= shared.config.max_connections {
                                // Accepted sockets start blocking (the
                                // listener's nonblocking flag is not
                                // inherited), which is what the
                                // timeout-bounded rejection write wants.
                                reject_connection(shared, stream);
                                continue;
                            }
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            let id = next_conn;
                            next_conn += 1;
                            conns.insert(
                                id,
                                Conn {
                                    stream,
                                    peer: addr.ip(),
                                    parser: RequestParser::new(),
                                    out: Vec::new(),
                                    out_pos: 0,
                                    awaiting: None,
                                    close_after_flush: false,
                                    eof: false,
                                    last_activity: Instant::now(),
                                },
                            );
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }
        }

        // Per-connection I/O.
        for (slot, &id) in order.iter().enumerate() {
            let revents = fds[conn_base + slot].revents;
            if revents == 0 {
                continue;
            }
            let Some(conn) = conns.get_mut(&id) else {
                continue; // removed by the completion pass
            };
            if revents & (sys::POLLERR | sys::POLLNVAL) != 0 {
                conns.remove(&id);
                continue;
            }
            if revents & sys::POLLHUP != 0 && conn.awaiting.is_some() {
                // The peer vanished while its request is in the engine.
                // Drop the connection now (POLLHUP reports every tick)
                // but leave the pending entry: the completion settles
                // the admission gauge.
                conns.remove(&id);
                continue;
            }
            let mut alive = true;
            if revents & (sys::POLLIN | sys::POLLHUP) != 0 && conn.awaiting.is_none() {
                alive = read_into_parser(conn);
                if alive {
                    drive(
                        shared,
                        id,
                        conn,
                        &mut pending,
                        &mut next_request,
                        &completions,
                    );
                }
            }
            if !alive || !settle(conn) {
                conns.remove(&id);
            }
        }

        // Backstop: the engine records every admitted job, so replies
        // always arrive; if one ever did not, release the slot and
        // answer 500 instead of parking the connection forever.
        let now = Instant::now();
        for conn in conns.values_mut() {
            let expired = matches!(&conn.awaiting, Some(w) if now >= w.deadline);
            if expired {
                let waited = conn.awaiting.take().expect("checked above");
                if pending.remove(&waited.request).is_some() {
                    shared.admitted.fetch_sub(1, Ordering::AcqRel);
                }
                queue_response(
                    conn,
                    &Response::json(
                        500,
                        &JsonValue::obj([
                            ("kind", "Internal"),
                            ("message", "result channel stalled"),
                        ]),
                    ),
                    waited.close,
                );
            }
        }
        // Idle reap: keep-alive connections with nothing buffered, in
        // flight, or unsent past the read timeout.
        conns.retain(|_, conn| {
            let idle = conn.awaiting.is_none() && conn.out.is_empty() && conn.parser.is_idle();
            if idle && now.duration_since(conn.last_activity) > shared.config.read_timeout {
                shared.conns_idle_reaped.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            true
        });

        shared.conns_open.store(conns.len(), Ordering::Release);
    }
}

/// Parses and handles every complete request buffered on `conn`, until
/// the parser needs more bytes, a `/synthesize` goes in flight, or the
/// connection is marked to close. Responses for immediate routes are
/// queued directly; `/synthesize` goes through [`admit_synthesize`]
/// with an event reply sink.
fn drive(
    shared: &Arc<ServerShared>,
    conn_id: u64,
    conn: &mut Conn,
    pending: &mut HashMap<u64, u64>,
    next_request: &mut u64,
    completions: &Arc<Completions>,
) {
    while conn.awaiting.is_none() && !conn.close_after_flush {
        match conn.parser.next_request() {
            Parsed::NeedMore => {
                if conn.eof && !conn.parser.is_idle() {
                    // Mid-request disconnect: mirror the legacy path's
                    // 400 (the write usually fails — the peer is gone —
                    // but a half-closed client can still read it).
                    queue_response(
                        conn,
                        &Response::json(
                            400,
                            &JsonValue::obj([
                                ("kind", "BadRequest"),
                                ("message", "connection closed mid-request"),
                            ]),
                        ),
                        true,
                    );
                }
                return;
            }
            Parsed::Malformed(message) => {
                queue_response(
                    conn,
                    &Response::json(
                        400,
                        &JsonValue::obj([("kind", "BadRequest"), ("message", message)]),
                    ),
                    true,
                );
                return;
            }
            Parsed::TooLarge => {
                queue_response(
                    conn,
                    &Response::json(
                        413,
                        &JsonValue::obj([("kind", "TooLarge"), ("message", "request too large")]),
                    ),
                    true,
                );
                return;
            }
            Parsed::Request(request) => {
                conn.last_activity = Instant::now();
                let close = request.wants_close() || shared.draining();
                if is_synthesize(&request) {
                    let id = *next_request;
                    *next_request += 1;
                    let sink = ReplySink::Event {
                        completions: Arc::clone(completions),
                        request: id,
                    };
                    match admit_synthesize(shared, &request, conn.peer, sink) {
                        Ok(()) => {
                            pending.insert(id, conn_id);
                            conn.awaiting = Some(Await {
                                request: id,
                                start: Instant::now(),
                                deadline: Instant::now() + reply_backstop(shared),
                                close,
                            });
                        }
                        Err(response) => queue_response(conn, &response, close),
                    }
                } else {
                    let response = dispatch_immediate(shared, &request);
                    queue_response(conn, &response, close);
                }
            }
        }
    }
}

/// Reads available bytes into the parser, up to [`READ_BURST`] chunks.
/// Returns `false` on a fatal transport error (drop the connection).
fn read_into_parser(conn: &mut Conn) -> bool {
    let mut chunk = [0u8; 8 * 1024];
    for _ in 0..READ_BURST {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                return true;
            }
            Ok(n) => {
                conn.parser.feed(&chunk[..n]);
                conn.last_activity = Instant::now();
                if n < chunk.len() {
                    return true; // socket drained
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    true
}

/// Serializes `response` into the connection's output buffer;
/// `close` marks the connection to close once the buffer drains.
fn queue_response(conn: &mut Conn, response: &Response, close: bool) {
    // Writing into a Vec cannot fail.
    let _ = response.write_to(&mut conn.out, !close);
    if close {
        conn.close_after_flush = true;
    }
}

/// Flushes what the socket will take and decides whether the
/// connection stays: `false` means drop it (write error, close-after-
/// flush completed, or clean EOF with nothing left to do).
fn settle(conn: &mut Conn) -> bool {
    if !flush_out(conn) {
        return false;
    }
    let flushed = conn.out.is_empty();
    if flushed && conn.close_after_flush {
        return false;
    }
    if conn.eof && conn.awaiting.is_none() && flushed {
        return false;
    }
    true
}

/// Writes buffered output until the socket would block. Returns `false`
/// on a fatal write error. A fully-drained buffer is reset to empty.
fn flush_out(conn: &mut Conn) -> bool {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return false,
            Ok(n) => {
                conn.out_pos += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if conn.out_pos >= conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
    }
    true
}
