//! The resident HTTP server: accept loop, admission control,
//! micro-batching, and graceful drain around a [`ServiceEngine`].
//!
//! # Request path
//!
//! A connection thread parses `POST /synthesize`, and the request passes
//! the **admission controller**: a bounded count of admitted-but-
//! unanswered requests ([`ServerConfig::queue_depth`]). At the bound the
//! request is shed immediately — HTTP 429 with `Retry-After` — instead
//! of growing an unbounded backlog; under overload the server stays
//! responsive and tells clients when to come back.
//!
//! Admitted requests enter the **micro-batcher**: a single thread that
//! collects everything arriving within [`ServerConfig::batch_window`]
//! (default 2 ms) into one [`ServiceEngine`] submission. Concurrent
//! users thereby share co-scheduling and single-flight path-cache
//! population exactly like an offline batch; a lone request waits at
//! most one window. Results stream back per-job via the submission's
//! completion callback — no thread waits on a whole batch.
//!
//! A request-scoped `deadline_ms` maps onto
//! [`SynthesisConfig::deadline`], clamped to the server's own deadline:
//! a slow query returns a structured `DeadlineExceeded` JSON error
//! rather than stalling the connection.
//!
//! # Drain invariants
//!
//! [`Server::shutdown`] flips the draining flag and wakes the accept
//! loop; from then on new `/synthesize` requests get 503 and new
//! connections are refused. [`Server::join`] then waits until every
//! admitted request has been answered and the engine is idle before
//! stopping the batcher — in-flight queries always complete with real
//! results.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use nlquery_core::json::synthesis_json;
use nlquery_core::{
    snapshot, BatchOptions, CompiledDomain, Domain, JobSpec, JsonValue, LatencyHistogram,
    ServiceEngine, SynthesisConfig,
};

use crate::http::{read_request, Request, RequestOutcome, Response};
use crate::metrics;

/// Tuning knobs of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Engine worker threads; 0 means `available_parallelism()`.
    pub workers: usize,
    /// Admission bound: maximum requests admitted but not yet answered.
    /// Beyond it requests are shed with HTTP 429.
    pub queue_depth: usize,
    /// Micro-batching window: requests arriving within this interval of
    /// each other coalesce into one engine submission.
    pub batch_window: Duration,
    /// Maximum jobs per micro-batch (the window closes early when hit).
    pub max_batch: usize,
    /// Per-connection socket read timeout (idle keep-alive connections
    /// are dropped after this).
    pub read_timeout: Duration,
    /// Warm-state snapshot file. When set, an existing snapshot is
    /// restored at boot (a stale or damaged one is rejected with a
    /// logged reason and boot proceeds cold — never wrong answers), the
    /// file is rewritten atomically on graceful drain, and — when
    /// [`ServerConfig::snapshot_interval`] is also set — by a periodic
    /// background snapshotter.
    pub snapshot_path: Option<PathBuf>,
    /// Interval of the background snapshotter (`None` disables it; the
    /// drain-time write still happens whenever `snapshot_path` is set).
    pub snapshot_interval: Option<Duration>,
    /// Corpus queries for ahead-of-time domain compilation. When
    /// non-empty, boot compiles the domain against this corpus (or loads
    /// the artifact from [`ServerConfig::aot_cache_path`]), builds the
    /// engine from the pre-resolved domain, and seeds the path cache
    /// with the compiled path table before the first request can arrive.
    pub aot_corpus: Vec<String>,
    /// Disk cache for the AOT artifact (see
    /// [`CompiledDomain::load_or_compile`]); a missing or stale cache
    /// triggers an in-process recompile and best-effort write-back.
    pub aot_cache_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_depth: 64,
            batch_window: Duration::from_millis(2),
            max_batch: 32,
            read_timeout: Duration::from_secs(30),
            snapshot_path: None,
            snapshot_interval: None,
            aot_corpus: Vec::new(),
            aot_cache_path: None,
        }
    }
}

/// Locks a mutex, recovering from poisoning (the guarded state is left
/// consistent before any fallible step).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One admitted request travelling from its connection thread to the
/// micro-batcher: the job plus the channel its rendered result returns
/// on.
struct Pending {
    spec: JobSpec,
    reply: mpsc::Sender<String>,
}

/// State shared by the accept loop, connection threads, the batcher, and
/// the [`Server`] handle.
pub(crate) struct ServerShared {
    pub(crate) engine: ServiceEngine,
    base_config: SynthesisConfig,
    config: ServerConfig,
    local_addr: SocketAddr,
    /// `None` once the batcher has been told to stop (post-drain).
    queue: Mutex<Option<mpsc::Sender<Pending>>>,
    /// Requests admitted and not yet answered (the admission gauge).
    pub(crate) admitted: AtomicUsize,
    /// Requests currently inside a handler (response not yet written).
    inflight: AtomicUsize,
    pub(crate) requests: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) bad_requests: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_jobs: AtomicU64,
    pub(crate) latency: LatencyHistogram,
    shutting_down: AtomicBool,
    pub(crate) started: Instant,
    /// Path-cache entries restored from the boot snapshot.
    pub(crate) snapshot_restored_paths: AtomicU64,
    /// Merge-memo entries restored from the boot snapshot.
    pub(crate) snapshot_restored_merges: AtomicU64,
    /// Boot snapshots rejected (stale, corrupt, unreadable) → cold boot.
    pub(crate) snapshot_rejected: AtomicU64,
    /// Snapshot files written (periodic + drain).
    pub(crate) snapshot_writes: AtomicU64,
    /// Snapshot writes that failed.
    pub(crate) snapshot_write_errors: AtomicU64,
    /// Size in bytes of the last snapshot written.
    pub(crate) snapshot_last_bytes: AtomicU64,
    /// Path-cache entries seeded from the AOT-compiled path table.
    pub(crate) aot_seeded_paths: AtomicU64,
}

impl ServerShared {
    pub(crate) fn draining(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }
}

/// A running `nlquery-serve` instance: a bound listener, its accept
/// thread, the micro-batcher, and the resident engine.
///
/// ```no_run
/// use nlquery_serve::{Server, ServerConfig};
/// use nlquery_core::SynthesisConfig;
///
/// let domain = nlquery_domains::astmatcher::domain()?;
/// let server = Server::start(domain, SynthesisConfig::default(), ServerConfig::default())?;
/// println!("listening on http://{}", server.local_addr());
/// server.join(); // blocks until POST /shutdown, then drains
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Server {
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    snapshotter: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the resident engine, the micro-batcher, and the
    /// accept loop, and returns immediately.
    ///
    /// When [`ServerConfig::aot_corpus`] is non-empty the engine is built
    /// from the AOT-compiled domain and its path cache is seeded with the
    /// compiled path table; when [`ServerConfig::snapshot_path`] names an
    /// existing snapshot it is restored on top. Both happen before the
    /// accept loop spawns, so the first request already runs warm.
    pub fn start(
        domain: Domain,
        config: SynthesisConfig,
        server_config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&server_config.addr)?;
        let local_addr = listener.local_addr()?;

        // AOT compilation happens before the engine exists: the engine
        // must be built from the pre-resolved domain for the lexicon win
        // to apply to live traffic.
        let compiled = if server_config.aot_corpus.is_empty() {
            None
        } else {
            let corpus: Vec<&str> = server_config
                .aot_corpus
                .iter()
                .map(String::as_str)
                .collect();
            Some(match &server_config.aot_cache_path {
                Some(path) => {
                    let (compiled, fallback) =
                        CompiledDomain::load_or_compile(path, &domain, &corpus, &config);
                    if let Some(err) = fallback {
                        eprintln!(
                            "nlquery-serve: AOT cache {} unusable ({err}); recompiled",
                            path.display()
                        );
                    }
                    compiled
                }
                None => CompiledDomain::compile(&domain, &corpus, &config),
            })
        };
        let engine_domain = compiled
            .as_ref()
            .map(|c| c.domain().clone())
            .unwrap_or(domain);

        let engine = ServiceEngine::with_options(
            engine_domain,
            config.clone(),
            BatchOptions {
                workers: server_config.workers,
                ..BatchOptions::default()
            },
        );
        let (queue_tx, queue_rx) = mpsc::channel::<Pending>();
        let shared = Arc::new(ServerShared {
            engine,
            base_config: config,
            config: server_config,
            local_addr,
            queue: Mutex::new(Some(queue_tx)),
            admitted: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
            snapshot_restored_paths: AtomicU64::new(0),
            snapshot_restored_merges: AtomicU64::new(0),
            snapshot_rejected: AtomicU64::new(0),
            snapshot_writes: AtomicU64::new(0),
            snapshot_write_errors: AtomicU64::new(0),
            snapshot_last_bytes: AtomicU64::new(0),
            aot_seeded_paths: AtomicU64::new(0),
        });

        // Warm the caches before any request thread exists: AOT seed
        // first, snapshot on top (restored traffic state wins on key
        // collisions — it is the fresher of the two).
        if let Some(compiled) = &compiled {
            let seeded = compiled.seed(shared.engine.cache());
            shared
                .aot_seeded_paths
                .store(seeded as u64, Ordering::Relaxed);
            println!(
                "nlquery-serve: AOT-compiled domain ({} corpus queries, {} vocabulary words, \
                 {} path entries seeded, grammar pruned {}→{} nodes{})",
                compiled.corpus_queries(),
                compiled.vocabulary_words(),
                seeded,
                compiled.pruned().graph().len() + compiled.pruned().dropped_nodes(),
                compiled.pruned().graph().len(),
                if compiled.from_cache() {
                    ", from disk cache"
                } else {
                    ""
                },
            );
        }
        restore_boot_snapshot(&shared);

        let snapshotter = match (
            &shared.config.snapshot_path,
            shared.config.snapshot_interval,
        ) {
            (Some(_), Some(interval)) => {
                let shared = Arc::clone(&shared);
                Some(
                    thread::Builder::new()
                        .name("nlquery-snapshot".to_string())
                        .spawn(move || snapshotter_loop(&shared, interval))
                        .expect("spawn snapshotter"),
                )
            }
            _ => None,
        };
        let batcher = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("nlquery-batcher".to_string())
                .spawn(move || batcher_loop(&shared, queue_rx))
                .expect("spawn micro-batcher")
        };
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("nlquery-accept".to_string())
                .spawn(move || accept_loop(&shared, listener))
                .expect("spawn accept loop")
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            batcher: Some(batcher),
            snapshotter,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The resident engine (for tests and embedding).
    pub fn engine(&self) -> &ServiceEngine {
        &self.shared.engine
    }

    /// Begins a graceful drain: stop admitting, wake the accept loop so
    /// it exits, let in-flight requests finish. Idempotent; returns
    /// immediately — [`Server::join`] completes the drain.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Blocks until the server has fully drained: the accept loop has
    /// exited (a `POST /shutdown` or [`Server::shutdown`] call triggers
    /// that), every admitted request has been answered, and the engine
    /// is idle. Then stops the micro-batcher, writes a final warm-state
    /// snapshot (when configured), and returns.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Every admitted request must receive its real result before the
        // batcher may stop: the drain invariant.
        while self.shared.admitted.load(Ordering::Acquire) > 0
            || self.shared.inflight.load(Ordering::Acquire) > 0
            || self.shared.engine.outstanding() > 0
        {
            thread::sleep(Duration::from_millis(2));
        }
        *lock(&self.shared.queue) = None;
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        if let Some(snapshotter) = self.snapshotter.take() {
            let _ = snapshotter.join();
        }
        // The drain-time snapshot: written after the engine went idle,
        // so it captures the final warm state of this process.
        write_snapshot(&self.shared);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped-without-join server (test teardown, early error
        // return) still stops its threads: flag the drain, wake the
        // accept loop, close the queue.
        initiate_shutdown(&self.shared);
        *lock(&self.shared.queue) = None;
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        if let Some(snapshotter) = self.snapshotter.take() {
            let _ = snapshotter.join();
        }
    }
}

/// Restores the boot snapshot into the engine's caches, when one is
/// configured and present. Any rejection — stale header, corrupt file,
/// mismatched domain or config — logs its reason and leaves the caches
/// exactly as they were (the restore is all-or-nothing): a cold boot,
/// never wrong answers. A missing file is a normal first boot, not a
/// rejection.
fn restore_boot_snapshot(shared: &ServerShared) {
    let Some(path) = &shared.config.snapshot_path else {
        return;
    };
    if !path.exists() {
        return;
    }
    match snapshot::load(
        path,
        shared.engine.synthesizer().domain(),
        &shared.base_config,
        shared.engine.cache(),
        shared.engine.merge_memo(),
    ) {
        Ok(summary) => {
            shared
                .snapshot_restored_paths
                .store(summary.path_entries as u64, Ordering::Relaxed);
            shared
                .snapshot_restored_merges
                .store(summary.merge_entries as u64, Ordering::Relaxed);
            println!(
                "nlquery-serve: restored warm state from {} ({} path entries, {} merge entries)",
                path.display(),
                summary.path_entries,
                summary.merge_entries,
            );
        }
        Err(err) => {
            shared.snapshot_rejected.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "nlquery-serve: snapshot {} rejected ({err}); booting cold",
                path.display()
            );
        }
    }
}

/// Writes the current warm state to the configured snapshot path
/// (atomic temp-file + rename inside [`snapshot::save`]). No-op without
/// a configured path; failures are counted and logged, never fatal.
fn write_snapshot(shared: &ServerShared) {
    let Some(path) = &shared.config.snapshot_path else {
        return;
    };
    match snapshot::save(
        path,
        shared.engine.synthesizer().domain(),
        &shared.base_config,
        shared.engine.cache(),
        shared.engine.merge_memo(),
    ) {
        Ok(summary) => {
            shared.snapshot_writes.fetch_add(1, Ordering::Relaxed);
            shared
                .snapshot_last_bytes
                .store(summary.bytes, Ordering::Relaxed);
        }
        Err(err) => {
            shared.snapshot_write_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "nlquery-serve: snapshot write to {} failed: {err}",
                path.display()
            );
        }
    }
}

/// The periodic snapshotter: rewrites the snapshot every `interval`
/// until the server starts draining (the drain-time write in
/// [`Server::join`] then captures the final state). Sleeps in short
/// ticks so drain is never delayed by a long interval.
fn snapshotter_loop(shared: &Arc<ServerShared>, interval: Duration) {
    let tick = Duration::from_millis(50).min(interval);
    let mut next = Instant::now() + interval;
    while !shared.draining() {
        thread::sleep(tick);
        if shared.draining() {
            return;
        }
        if Instant::now() >= next {
            write_snapshot(shared);
            next = Instant::now() + interval;
        }
    }
}

/// Flips the draining flag and wakes the accept loop with a throwaway
/// self-connection (std's blocking `accept` has no other wake-up).
fn initiate_shutdown(shared: &ServerShared) {
    if !shared.shutting_down.swap(true, Ordering::AcqRel) {
        let _ = TcpStream::connect(shared.local_addr);
    }
}

fn accept_loop(shared: &Arc<ServerShared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.draining() {
            // The wake-up (or an unlucky late client) — refuse and exit;
            // the listener closes when this loop returns.
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let spawned = thread::Builder::new()
            .name("nlquery-conn".to_string())
            .spawn(move || handle_connection(&shared, stream));
        if spawned.is_err() {
            // Thread exhaustion: drop the connection rather than die.
            continue;
        }
    }
}

fn handle_connection(shared: &Arc<ServerShared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    // An Err from `read_request` (read timeout, connection error) ends
    // the connection.
    while let Ok(outcome) = read_request(&mut reader) {
        match outcome {
            RequestOutcome::Closed => break,
            RequestOutcome::Malformed(message) => {
                let response = Response::json(
                    400,
                    &JsonValue::obj([("kind", "BadRequest"), ("message", message)]),
                );
                let _ = response.write_to(&mut writer, false);
                break;
            }
            RequestOutcome::TooLarge => {
                let response = Response::json(
                    413,
                    &JsonValue::obj([("kind", "TooLarge"), ("message", "request too large")]),
                );
                let _ = response.write_to(&mut writer, false);
                break;
            }
            RequestOutcome::Request(request) => {
                shared.inflight.fetch_add(1, Ordering::AcqRel);
                let response = dispatch(shared, &request);
                // Close once draining so keep-alive connections cannot
                // outlive the drain.
                let close = request.wants_close() || shared.draining();
                let written = response.write_to(&mut writer, !close);
                shared.inflight.fetch_sub(1, Ordering::AcqRel);
                if written.is_err() || close {
                    break;
                }
            }
        }
    }
}

fn dispatch(shared: &Arc<ServerShared>, request: &Request) -> Response {
    match (request.method.as_str(), request.path()) {
        ("POST", "/synthesize") => synthesize(shared, request),
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => {
            let mut response = Response::text(200, metrics::render(shared));
            response.content_type = "text/plain; version=0.0.4; charset=utf-8";
            response
        }
        ("POST", "/shutdown") => {
            initiate_shutdown(shared);
            Response::json(200, &JsonValue::obj([("status", "draining")]))
        }
        (_, "/synthesize" | "/healthz" | "/metrics" | "/shutdown") => {
            Response::json(405, &JsonValue::obj([("kind", "MethodNotAllowed")]))
        }
        _ => Response::json(404, &JsonValue::obj([("kind", "NotFound")])),
    }
}

fn healthz(shared: &ServerShared) -> Response {
    let stats = shared.engine.stats();
    Response::json(
        200,
        &JsonValue::obj([
            (
                "status",
                JsonValue::from(if shared.draining() { "draining" } else { "ok" }),
            ),
            ("workers", JsonValue::from(shared.engine.workers())),
            ("outstanding", JsonValue::from(stats.outstanding())),
            (
                "admitted",
                JsonValue::from(shared.admitted.load(Ordering::Relaxed)),
            ),
        ]),
    )
}

/// The `POST /synthesize` handler: validate, admit (or shed), enqueue
/// into the micro-batcher, wait for this request's result.
fn synthesize(shared: &Arc<ServerShared>, request: &Request) -> Response {
    let start = Instant::now();
    shared.requests.fetch_add(1, Ordering::Relaxed);
    if shared.draining() {
        return Response::json(
            503,
            &JsonValue::obj([
                ("kind", "ShuttingDown"),
                ("message", "server is draining; request not admitted"),
            ]),
        );
    }
    let spec = match parse_synthesize_body(shared, request) {
        Ok(spec) => spec,
        Err(message) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Response::json(
                400,
                &JsonValue::obj([
                    ("kind", JsonValue::from("BadRequest")),
                    ("message", JsonValue::from(message)),
                ]),
            );
        }
    };

    // Admission: reserve a slot below `queue_depth` or shed.
    let admitted = shared
        .admitted
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            (n < shared.config.queue_depth).then_some(n + 1)
        });
    if admitted.is_err() {
        shared.shed.fetch_add(1, Ordering::Relaxed);
        return Response::json(
            429,
            &JsonValue::obj([
                ("kind", "Overloaded"),
                ("message", "admission queue full; retry shortly"),
            ]),
        )
        .header("Retry-After", "1");
    }

    let (reply_tx, reply_rx) = mpsc::channel();
    let enqueued = match lock(&shared.queue).as_ref() {
        Some(tx) => tx
            .send(Pending {
                spec,
                reply: reply_tx,
            })
            .is_ok(),
        None => false,
    };
    if !enqueued {
        shared.admitted.fetch_sub(1, Ordering::AcqRel);
        return Response::json(
            503,
            &JsonValue::obj([("kind", "ShuttingDown"), ("message", "queue closed")]),
        );
    }

    // The engine records every job (deadlines enforced, panics isolated),
    // so the reply always arrives; the timeout is a defensive backstop.
    let backstop = shared.base_config.deadline * (shared.config.queue_depth as u32 + 2)
        + Duration::from_secs(30);
    let response = match reply_rx.recv_timeout(backstop) {
        Ok(body) => {
            shared.latency.record(start.elapsed());
            Response::raw_json(200, body)
        }
        Err(_) => Response::json(
            500,
            &JsonValue::obj([("kind", "Internal"), ("message", "result channel stalled")]),
        ),
    };
    shared.admitted.fetch_sub(1, Ordering::AcqRel);
    response
}

/// Parses `{"query": "...", "deadline_ms": n?}` into a [`JobSpec`]. A
/// request deadline can only tighten the server's own deadline.
fn parse_synthesize_body(shared: &ServerShared, request: &Request) -> Result<JobSpec, String> {
    let body = request.body_str().ok_or("body is not UTF-8")?;
    let doc = JsonValue::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let query = doc
        .get("query")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"query\"")?;
    if query.trim().is_empty() {
        return Err("\"query\" must be non-empty".to_string());
    }
    let mut spec = JobSpec::new(query);
    if let Some(value) = doc.get("deadline_ms") {
        let ms = value
            .as_u64()
            .ok_or("\"deadline_ms\" must be a non-negative integer")?;
        let requested = Duration::from_millis(ms);
        let clamped = requested.min(shared.base_config.deadline);
        spec.config = Some(shared.base_config.clone().deadline(clamped));
    }
    Ok(spec)
}

/// The micro-batcher: drains the admission channel in windows of
/// [`ServerConfig::batch_window`] (closing early at
/// [`ServerConfig::max_batch`]) and submits each window as one
/// co-scheduled engine submission. Results stream back per-job through
/// the submission callback.
fn batcher_loop(shared: &Arc<ServerShared>, rx: mpsc::Receiver<Pending>) {
    loop {
        let first = match rx.recv() {
            Ok(pending) => pending,
            Err(_) => return, // queue closed and drained
        };
        let mut batch = vec![first];
        let window_end = Instant::now() + shared.config.batch_window;
        let mut closed = false;
        while batch.len() < shared.config.max_batch {
            let now = Instant::now();
            if now >= window_end {
                break;
            }
            match rx.recv_timeout(window_end - now) {
                Ok(pending) => batch.push(pending),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    closed = true;
                    break;
                }
            }
        }
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .batched_jobs
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let replies: Vec<mpsc::Sender<String>> = batch.iter().map(|p| p.reply.clone()).collect();
        let jobs: Vec<JobSpec> = batch.into_iter().map(|p| p.spec).collect();
        // Fire and forget: the per-job callback renders and delivers each
        // result to its waiting connection; nobody blocks on the batch.
        drop(shared.engine.submit_with(jobs, move |index, synthesis| {
            let _ = replies[index].send(synthesis_json(synthesis).render());
        }));
        if closed {
            return;
        }
    }
}
