//! The resident HTTP server: connection front ends, admission control,
//! per-client fairness, micro-batching, and graceful drain around a
//! [`ServiceEngine`].
//!
//! # Connection front ends
//!
//! Two front ends feed the same request path ([`ServerConfig::event_driven`]
//! picks one; results are bitwise-identical either way):
//!
//! - **Event-driven** (default): one thread runs a readiness loop over
//!   nonblocking sockets ([`crate::sys`] wraps `poll(2)`; see
//!   [`crate::event`]). Connections are per-socket state machines — a
//!   resumable [`RequestParser`](crate::http::RequestParser), an output
//!   buffer, and at most one in-flight `/synthesize` — so a million
//!   idle keep-alive connections cost memory, not threads. The
//!   connection count is bounded by [`ServerConfig::max_connections`]:
//!   beyond it new connections are *answered* with 503 and counted,
//!   never silently dropped.
//! - **Thread-per-connection** (fallback, kept for one PR): the
//!   original blocking accept loop. It honors the same connection
//!   budget, and a failed connection-thread spawn is now an accounted
//!   503 rejection instead of a silent drop.
//!
//! # Request path
//!
//! A parsed `POST /synthesize` passes **per-client fairness** (a token
//! bucket keyed by `X-Client-Id` or peer IP when
//! [`ServerConfig::client_rate`] is set — one hot tenant exhausts its
//! own bucket, not the admission queue) and then the **admission
//! controller**: a bounded count of admitted-but-unanswered requests
//! ([`ServerConfig::queue_depth`]). At the bound the request is shed
//! immediately — HTTP 429 with `Retry-After` — instead of growing an
//! unbounded backlog; under overload the server stays responsive and
//! tells clients when to come back.
//!
//! Admitted requests enter the **micro-batcher**: a single thread that
//! collects everything arriving within [`ServerConfig::batch_window`]
//! (default 2 ms) into one [`ServiceEngine`] submission. Concurrent
//! users thereby share co-scheduling and single-flight path-cache
//! population exactly like an offline batch; a lone request waits at
//! most one window. Results stream back per-job via the submission's
//! completion callback — no thread waits on a whole batch.
//!
//! A request-scoped `deadline_ms` maps onto
//! [`SynthesisConfig::deadline`], clamped to the server's own deadline:
//! a slow query returns a structured `DeadlineExceeded` JSON error
//! rather than stalling the connection.
//!
//! # Drain invariants
//!
//! [`Server::shutdown`] flips the draining flag and wakes the front
//! end; from then on new `/synthesize` requests get 503 and new
//! connections are refused. [`Server::join`] then waits until every
//! admitted request has been answered and the engine is idle before
//! stopping the batcher — in-flight queries always complete with real
//! results.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use nlquery_core::json::synthesis_json;
use nlquery_core::{
    snapshot, BatchOptions, CompiledDomain, Domain, JobSpec, JsonValue, LatencyHistogram,
    ServiceEngine, SynthesisConfig,
};

use crate::event::{self, Completions};
use crate::http::{read_request, Request, RequestOutcome, RequestParser, Response};
use crate::metrics;

/// Tuning knobs of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Engine worker threads; 0 means `available_parallelism()`.
    pub workers: usize,
    /// Use the event-driven connection front end (nonblocking sockets
    /// behind `poll(2)`). `false` selects the legacy
    /// thread-per-connection path, kept as a fallback for one PR.
    pub event_driven: bool,
    /// Connection budget: beyond this many open connections, new ones
    /// are answered with an accounted `503` + `Retry-After` and closed
    /// — never silently dropped.
    pub max_connections: usize,
    /// Per-client admission rate in requests/second (token bucket keyed
    /// by `X-Client-Id` header, else peer IP). `0.0` disables fairness.
    pub client_rate: f64,
    /// Per-client token-bucket burst capacity (clamped to ≥ 1).
    pub client_burst: f64,
    /// Admission bound: maximum requests admitted but not yet answered.
    /// Beyond it requests are shed with HTTP 429.
    pub queue_depth: usize,
    /// Micro-batching window: requests arriving within this interval of
    /// each other coalesce into one engine submission.
    pub batch_window: Duration,
    /// Maximum jobs per micro-batch (the window closes early when hit).
    pub max_batch: usize,
    /// Per-connection idle timeout (idle keep-alive connections are
    /// reaped after this; on the legacy path it doubles as the socket
    /// read timeout).
    pub read_timeout: Duration,
    /// Warm-state snapshot file. When set, an existing snapshot is
    /// restored at boot (a stale or damaged one is rejected with a
    /// logged reason and boot proceeds cold — never wrong answers), the
    /// file is rewritten atomically on graceful drain, and — when
    /// [`ServerConfig::snapshot_interval`] is also set — by a periodic
    /// background snapshotter.
    pub snapshot_path: Option<PathBuf>,
    /// Interval of the background snapshotter (`None` disables it; the
    /// drain-time write still happens whenever `snapshot_path` is set).
    pub snapshot_interval: Option<Duration>,
    /// Corpus queries for ahead-of-time domain compilation. When
    /// non-empty, boot compiles the domain against this corpus (or loads
    /// the artifact from [`ServerConfig::aot_cache_path`]), builds the
    /// engine from the pre-resolved domain, and seeds the path cache
    /// with the compiled path table before the first request can arrive.
    pub aot_corpus: Vec<String>,
    /// Disk cache for the AOT artifact (see
    /// [`CompiledDomain::load_or_compile`]); a missing or stale cache
    /// triggers an in-process recompile and best-effort write-back.
    pub aot_cache_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            event_driven: true,
            max_connections: 1024,
            client_rate: 0.0,
            client_burst: 8.0,
            queue_depth: 64,
            batch_window: Duration::from_millis(2),
            max_batch: 32,
            read_timeout: Duration::from_secs(30),
            snapshot_path: None,
            snapshot_interval: None,
            aot_corpus: Vec::new(),
            aot_cache_path: None,
        }
    }
}

/// Locks a mutex, recovering from poisoning (the guarded state is left
/// consistent before any fallible step).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The hard cap on the defensive reply backstop. The engine records
/// every admitted job, so the backstop should never fire; the cap just
/// keeps a huge configured deadline from producing a nonsensical (or,
/// before saturating arithmetic, panicking) wait.
const BACKSTOP_CAP: Duration = Duration::from_secs(3600);

/// How long a handler may wait for an admitted request's reply before
/// concluding the result channel is wedged. The engine enforces
/// deadlines and isolates panics, so the reply always arrives; this is
/// a defensive backstop, computed with saturating arithmetic so a large
/// configured deadline cannot overflow `Duration` (a panic here took
/// down connection threads before).
pub(crate) fn reply_backstop(shared: &ServerShared) -> Duration {
    let slots = u32::try_from(shared.config.queue_depth.saturating_add(2)).unwrap_or(u32::MAX);
    shared
        .base_config
        .deadline
        .saturating_mul(slots)
        .saturating_add(Duration::from_secs(30))
        .min(BACKSTOP_CAP)
}

/// Where an admitted request's rendered result is delivered: the
/// blocking connection thread's channel (legacy path) or the event
/// loop's completion queue.
#[derive(Clone)]
pub(crate) enum ReplySink {
    /// Thread-per-connection path: the handler blocks on the receiver.
    Channel(mpsc::Sender<String>),
    /// Event-driven path: push into the completion queue and wake the
    /// poll loop.
    Event {
        /// The loop's completion queue + waker.
        completions: Arc<Completions>,
        /// The request id the loop used to track this admission.
        request: u64,
    },
}

impl ReplySink {
    /// Delivers one rendered result body.
    pub(crate) fn deliver(&self, body: String) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send(body);
            }
            ReplySink::Event {
                completions,
                request,
            } => completions.deliver(*request, body),
        }
    }
}

/// One admitted request travelling from its connection to the
/// micro-batcher: the job plus the sink its rendered result returns on.
struct Pending {
    spec: JobSpec,
    reply: ReplySink,
}

/// Per-client admission fairness: one lazily-refilled token bucket per
/// client key, so a hot tenant exhausts its own budget instead of the
/// shared admission queue. Keys are the `X-Client-Id` header when the
/// client sends one (trusted-sidecar deployments), else the peer IP.
pub(crate) struct Fairness {
    rate: f64,
    burst: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Above this many tracked clients, fully-refilled (i.e. long-idle)
/// buckets are evicted before inserting a new one — fairness state must
/// not become an unbounded per-IP memory map.
const MAX_TRACKED_CLIENTS: usize = 16 * 1024;

impl Fairness {
    fn new(rate: f64, burst: f64) -> Fairness {
        Fairness {
            rate,
            burst: burst.max(1.0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Takes one token from `key`'s bucket (refilled at `rate`/sec up to
    /// `burst`). A brand-new key starts with a full bucket.
    fn admit(&self, key: &str) -> bool {
        let mut buckets = lock(&self.buckets);
        let now = Instant::now();
        if buckets.len() >= MAX_TRACKED_CLIENTS && !buckets.contains_key(key) {
            let (rate, burst) = (self.rate, self.burst);
            buckets.retain(|_, b| now.duration_since(b.last).as_secs_f64() * rate < burst);
        }
        let bucket = buckets.entry(key.to_string()).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        let refill = now.duration_since(bucket.last).as_secs_f64() * self.rate;
        bucket.tokens = (bucket.tokens + refill).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Number of client buckets currently tracked (the quota gauge).
    pub(crate) fn tracked_clients(&self) -> usize {
        lock(&self.buckets).len()
    }
}

/// The client key a request is rate-accounted under.
fn client_key(request: &Request, peer: IpAddr) -> String {
    match request.header("x-client-id") {
        Some(id) if !id.is_empty() => id.to_string(),
        _ => peer.to_string(),
    }
}

/// Route indices into [`ServerShared::route_latency`].
pub(crate) const ROUTE_SYNTHESIZE: usize = 0;
const ROUTE_HEALTHZ: usize = 1;
const ROUTE_METRICS: usize = 2;
const ROUTE_SHUTDOWN: usize = 3;
const ROUTE_OTHER: usize = 4;
/// Route label per index, for the metrics exposition.
pub(crate) const ROUTE_NAMES: [&str; 5] = ["synthesize", "healthz", "metrics", "shutdown", "other"];

/// State shared by the connection front end, the batcher, and the
/// [`Server`] handle.
pub(crate) struct ServerShared {
    pub(crate) engine: ServiceEngine,
    pub(crate) base_config: SynthesisConfig,
    pub(crate) config: ServerConfig,
    local_addr: SocketAddr,
    /// `None` once the batcher has been told to stop (post-drain).
    queue: Mutex<Option<mpsc::Sender<Pending>>>,
    /// Requests admitted and not yet answered (the admission gauge).
    pub(crate) admitted: AtomicUsize,
    /// Requests currently inside a handler (response not yet written).
    inflight: AtomicUsize,
    pub(crate) requests: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) bad_requests: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_jobs: AtomicU64,
    pub(crate) latency: LatencyHistogram,
    /// Per-route latency histograms, indexed by `ROUTE_*`.
    pub(crate) route_latency: [LatencyHistogram; ROUTE_NAMES.len()],
    /// Connections currently open (gauge; both front ends maintain it).
    pub(crate) conns_open: AtomicUsize,
    /// Connections ever accepted from the listener.
    pub(crate) conns_accepted: AtomicU64,
    /// Connections answered with 503 and closed: budget exhaustion or a
    /// failed connection-thread spawn. Never a silent drop.
    pub(crate) conns_rejected: AtomicU64,
    /// Idle keep-alive connections reaped by the read timeout.
    pub(crate) conns_idle_reaped: AtomicU64,
    /// Requests denied by per-client fairness (429 `QuotaExceeded`).
    pub(crate) quota_denied: AtomicU64,
    /// The fairness limiter, when [`ServerConfig::client_rate`] is set.
    pub(crate) fairness: Option<Fairness>,
    /// The event loop's completion queue + waker (event-driven front
    /// end only; used by [`initiate_shutdown`] to wake the poll loop).
    pub(crate) event: Mutex<Option<Arc<Completions>>>,
    shutting_down: AtomicBool,
    pub(crate) started: Instant,
    /// Path-cache entries restored from the boot snapshot.
    pub(crate) snapshot_restored_paths: AtomicU64,
    /// Merge-memo entries restored from the boot snapshot.
    pub(crate) snapshot_restored_merges: AtomicU64,
    /// Boot snapshots rejected (stale, corrupt, unreadable) → cold boot.
    pub(crate) snapshot_rejected: AtomicU64,
    /// Snapshot files written (periodic + drain).
    pub(crate) snapshot_writes: AtomicU64,
    /// Snapshot writes that failed.
    pub(crate) snapshot_write_errors: AtomicU64,
    /// Size in bytes of the last snapshot written.
    pub(crate) snapshot_last_bytes: AtomicU64,
    /// Path-cache entries seeded from the AOT-compiled path table.
    pub(crate) aot_seeded_paths: AtomicU64,
}

impl ServerShared {
    pub(crate) fn draining(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }
}

/// A running `nlquery-serve` instance: a bound listener, its connection
/// front end, the micro-batcher, and the resident engine.
///
/// ```no_run
/// use nlquery_serve::{Server, ServerConfig};
/// use nlquery_core::SynthesisConfig;
///
/// let domain = nlquery_domains::astmatcher::domain()?;
/// let server = Server::start(domain, SynthesisConfig::default(), ServerConfig::default())?;
/// println!("listening on http://{}", server.local_addr());
/// server.join(); // blocks until POST /shutdown, then drains
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Server {
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    snapshotter: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the resident engine, the micro-batcher, and the
    /// connection front end, and returns immediately.
    ///
    /// When [`ServerConfig::aot_corpus`] is non-empty the engine is built
    /// from the AOT-compiled domain and its path cache is seeded with the
    /// compiled path table; when [`ServerConfig::snapshot_path`] names an
    /// existing snapshot it is restored on top. Both happen before the
    /// front end spawns, so the first request already runs warm.
    pub fn start(
        domain: Domain,
        config: SynthesisConfig,
        server_config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&server_config.addr)?;
        let local_addr = listener.local_addr()?;

        // AOT compilation happens before the engine exists: the engine
        // must be built from the pre-resolved domain for the lexicon win
        // to apply to live traffic.
        let compiled = if server_config.aot_corpus.is_empty() {
            None
        } else {
            let corpus: Vec<&str> = server_config
                .aot_corpus
                .iter()
                .map(String::as_str)
                .collect();
            Some(match &server_config.aot_cache_path {
                Some(path) => {
                    let (compiled, fallback) =
                        CompiledDomain::load_or_compile(path, &domain, &corpus, &config);
                    if let Some(err) = fallback {
                        eprintln!(
                            "nlquery-serve: AOT cache {} unusable ({err}); recompiled",
                            path.display()
                        );
                    }
                    compiled
                }
                None => CompiledDomain::compile(&domain, &corpus, &config),
            })
        };
        let engine_domain = compiled
            .as_ref()
            .map(|c| c.domain().clone())
            .unwrap_or(domain);

        let engine = ServiceEngine::with_options(
            engine_domain,
            config.clone(),
            BatchOptions {
                workers: server_config.workers,
                ..BatchOptions::default()
            },
        );
        let (queue_tx, queue_rx) = mpsc::channel::<Pending>();
        let event_channel = if server_config.event_driven {
            Some(Completions::pair()?)
        } else {
            None
        };
        let fairness = (server_config.client_rate > 0.0)
            .then(|| Fairness::new(server_config.client_rate, server_config.client_burst));
        let shared = Arc::new(ServerShared {
            engine,
            base_config: config,
            config: server_config,
            local_addr,
            queue: Mutex::new(Some(queue_tx)),
            admitted: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            route_latency: std::array::from_fn(|_| LatencyHistogram::new()),
            conns_open: AtomicUsize::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
            conns_idle_reaped: AtomicU64::new(0),
            quota_denied: AtomicU64::new(0),
            fairness,
            event: Mutex::new(event_channel.as_ref().map(|(c, _)| Arc::clone(c))),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
            snapshot_restored_paths: AtomicU64::new(0),
            snapshot_restored_merges: AtomicU64::new(0),
            snapshot_rejected: AtomicU64::new(0),
            snapshot_writes: AtomicU64::new(0),
            snapshot_write_errors: AtomicU64::new(0),
            snapshot_last_bytes: AtomicU64::new(0),
            aot_seeded_paths: AtomicU64::new(0),
        });

        // Warm the caches before any request thread exists: AOT seed
        // first, snapshot on top (restored traffic state wins on key
        // collisions — it is the fresher of the two).
        if let Some(compiled) = &compiled {
            let seeded = compiled.seed(shared.engine.cache());
            shared
                .aot_seeded_paths
                .store(seeded as u64, Ordering::Relaxed);
            println!(
                "nlquery-serve: AOT-compiled domain ({} corpus queries, {} vocabulary words, \
                 {} path entries seeded, grammar pruned {}→{} nodes{})",
                compiled.corpus_queries(),
                compiled.vocabulary_words(),
                seeded,
                compiled.pruned().graph().len() + compiled.pruned().dropped_nodes(),
                compiled.pruned().graph().len(),
                if compiled.from_cache() {
                    ", from disk cache"
                } else {
                    ""
                },
            );
        }
        restore_boot_snapshot(&shared);

        let snapshotter = match (
            &shared.config.snapshot_path,
            shared.config.snapshot_interval,
        ) {
            (Some(_), Some(interval)) => {
                let shared = Arc::clone(&shared);
                Some(
                    thread::Builder::new()
                        .name("nlquery-snapshot".to_string())
                        .spawn(move || snapshotter_loop(&shared, interval))
                        .expect("spawn snapshotter"),
                )
            }
            _ => None,
        };
        let batcher = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("nlquery-batcher".to_string())
                .spawn(move || batcher_loop(&shared, queue_rx))
                .expect("spawn micro-batcher")
        };
        let accept = {
            let shared = Arc::clone(&shared);
            match event_channel {
                Some((_, wake_rx)) => thread::Builder::new()
                    .name("nlquery-event".to_string())
                    .spawn(move || event::event_loop(&shared, listener, wake_rx))
                    .expect("spawn event loop"),
                None => thread::Builder::new()
                    .name("nlquery-accept".to_string())
                    .spawn(move || accept_loop(&shared, listener))
                    .expect("spawn accept loop"),
            }
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            batcher: Some(batcher),
            snapshotter,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The resident engine (for tests and embedding).
    pub fn engine(&self) -> &ServiceEngine {
        &self.shared.engine
    }

    /// Begins a graceful drain: stop admitting, wake the front end so
    /// it exits, let in-flight requests finish. Idempotent; returns
    /// immediately — [`Server::join`] completes the drain.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Blocks until the server has fully drained: the connection front
    /// end has exited (a `POST /shutdown` or [`Server::shutdown`] call
    /// triggers that), every admitted request has been answered, and
    /// the engine is idle. Then stops the micro-batcher, writes a final
    /// warm-state snapshot (when configured), and returns.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Every admitted request must receive its real result before the
        // batcher may stop: the drain invariant.
        while self.shared.admitted.load(Ordering::Acquire) > 0
            || self.shared.inflight.load(Ordering::Acquire) > 0
            || self.shared.engine.outstanding() > 0
        {
            thread::sleep(Duration::from_millis(2));
        }
        *lock(&self.shared.queue) = None;
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        if let Some(snapshotter) = self.snapshotter.take() {
            let _ = snapshotter.join();
        }
        // The drain-time snapshot: written after the engine went idle,
        // so it captures the final warm state of this process.
        write_snapshot(&self.shared);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped-without-join server (test teardown, early error
        // return) still stops its threads: flag the drain, wake the
        // front end, close the queue.
        initiate_shutdown(&self.shared);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        *lock(&self.shared.queue) = None;
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        if let Some(snapshotter) = self.snapshotter.take() {
            let _ = snapshotter.join();
        }
    }
}

/// Restores the boot snapshot into the engine's caches, when one is
/// configured and present. Any rejection — stale header, corrupt file,
/// mismatched domain or config — logs its reason and leaves the caches
/// exactly as they were (the restore is all-or-nothing): a cold boot,
/// never wrong answers. A missing file is a normal first boot, not a
/// rejection.
fn restore_boot_snapshot(shared: &ServerShared) {
    let Some(path) = &shared.config.snapshot_path else {
        return;
    };
    if !path.exists() {
        return;
    }
    match snapshot::load(
        path,
        shared.engine.synthesizer().domain(),
        &shared.base_config,
        shared.engine.cache(),
        shared.engine.merge_memo(),
    ) {
        Ok(summary) => {
            shared
                .snapshot_restored_paths
                .store(summary.path_entries as u64, Ordering::Relaxed);
            shared
                .snapshot_restored_merges
                .store(summary.merge_entries as u64, Ordering::Relaxed);
            println!(
                "nlquery-serve: restored warm state from {} ({} path entries, {} merge entries)",
                path.display(),
                summary.path_entries,
                summary.merge_entries,
            );
        }
        Err(err) => {
            shared.snapshot_rejected.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "nlquery-serve: snapshot {} rejected ({err}); booting cold",
                path.display()
            );
        }
    }
}

/// Writes the current warm state to the configured snapshot path
/// (atomic temp-file + rename inside [`snapshot::save`]). No-op without
/// a configured path; failures are counted and logged, never fatal.
fn write_snapshot(shared: &ServerShared) {
    let Some(path) = &shared.config.snapshot_path else {
        return;
    };
    match snapshot::save(
        path,
        shared.engine.synthesizer().domain(),
        &shared.base_config,
        shared.engine.cache(),
        shared.engine.merge_memo(),
    ) {
        Ok(summary) => {
            shared.snapshot_writes.fetch_add(1, Ordering::Relaxed);
            shared
                .snapshot_last_bytes
                .store(summary.bytes, Ordering::Relaxed);
        }
        Err(err) => {
            shared.snapshot_write_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "nlquery-serve: snapshot write to {} failed: {err}",
                path.display()
            );
        }
    }
}

/// The periodic snapshotter: rewrites the snapshot every `interval`
/// until the server starts draining (the drain-time write in
/// [`Server::join`] then captures the final state). Sleeps in short
/// ticks so drain is never delayed by a long interval.
fn snapshotter_loop(shared: &Arc<ServerShared>, interval: Duration) {
    let tick = Duration::from_millis(50).min(interval);
    let mut next = Instant::now() + interval;
    while !shared.draining() {
        thread::sleep(tick);
        if shared.draining() {
            return;
        }
        if Instant::now() >= next {
            write_snapshot(shared);
            next = Instant::now() + interval;
        }
    }
}

/// Flips the draining flag and wakes the front end: the event loop via
/// its waker socket, the legacy blocking `accept` via a throwaway
/// self-connection (std's blocking accept has no other wake-up).
fn initiate_shutdown(shared: &ServerShared) {
    if !shared.shutting_down.swap(true, Ordering::AcqRel) {
        if let Some(completions) = lock(&shared.event).as_ref() {
            completions.wake();
        }
        let _ = TcpStream::connect(shared.local_addr);
    }
}

/// Answers a connection the server cannot take — budget exhaustion or a
/// failed connection-thread spawn — with an *accounted* `503` and
/// closes it. The old behavior here was a silent drop: the client saw a
/// reset with no status and no metric moved.
pub(crate) fn reject_connection(shared: &ServerShared, stream: TcpStream) {
    shared.conns_rejected.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut stream = stream;
    let _ = Response::json(
        503,
        &JsonValue::obj([
            ("kind", "ConnectionLimit"),
            ("message", "connection budget exhausted; retry shortly"),
        ]),
    )
    .header("Retry-After", "1")
    .write_to(&mut stream, false);
}

/// The legacy thread-per-connection front end, kept as a fallback for
/// one PR (`event_driven: false`). It shares the connection budget and
/// accounted rejection with the event loop.
fn accept_loop(shared: &Arc<ServerShared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.draining() {
            // The wake-up (or an unlucky late client) — refuse and exit;
            // the listener closes when this loop returns.
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
        let reserved = shared
            .conns_open
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < shared.config.max_connections).then_some(n + 1)
            });
        if reserved.is_err() {
            reject_connection(shared, stream);
            continue;
        }
        // If the thread spawn fails the stream is lost inside the
        // dropped closure; this duplicate handle lets the rejection
        // still be answered and counted rather than silently dropped.
        let reject_handle = stream.try_clone().ok();
        let conn_shared = Arc::clone(shared);
        let spawned = thread::Builder::new()
            .name("nlquery-conn".to_string())
            .spawn(move || {
                handle_connection(&conn_shared, stream);
                conn_shared.conns_open.fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            // Thread exhaustion: answer 503 rather than die or drop.
            shared.conns_open.fetch_sub(1, Ordering::AcqRel);
            match reject_handle {
                Some(stream) => reject_connection(shared, stream),
                None => {
                    shared.conns_rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

fn handle_connection(shared: &Arc<ServerShared>, stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|a| a.ip())
        .unwrap_or(IpAddr::V4(Ipv4Addr::LOCALHOST));
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    // One parser per connection: pipelined bytes beyond the current
    // request stay buffered inside it.
    let mut parser = RequestParser::new();
    loop {
        let outcome = match read_request(&mut reader, &mut parser) {
            Ok(outcome) => outcome,
            Err(e) => {
                // A read timeout on an idle keep-alive connection is the
                // reaper; anything else is a transport error.
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) && parser.is_idle()
                {
                    shared.conns_idle_reaped.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
        };
        match outcome {
            RequestOutcome::Closed => break,
            RequestOutcome::Malformed(message) => {
                let response = Response::json(
                    400,
                    &JsonValue::obj([("kind", "BadRequest"), ("message", message)]),
                );
                let _ = response.write_to(&mut writer, false);
                break;
            }
            RequestOutcome::TooLarge => {
                let response = Response::json(
                    413,
                    &JsonValue::obj([("kind", "TooLarge"), ("message", "request too large")]),
                );
                let _ = response.write_to(&mut writer, false);
                break;
            }
            RequestOutcome::Request(request) => {
                shared.inflight.fetch_add(1, Ordering::AcqRel);
                let response = dispatch(shared, &request, peer);
                // Close once draining so keep-alive connections cannot
                // outlive the drain.
                let close = request.wants_close() || shared.draining();
                let written = response.write_to(&mut writer, !close);
                shared.inflight.fetch_sub(1, Ordering::AcqRel);
                if written.is_err() || close {
                    break;
                }
            }
        }
    }
}

/// True for the one route that takes the asynchronous admission path.
pub(crate) fn is_synthesize(request: &Request) -> bool {
    request.method == "POST" && request.path() == "/synthesize"
}

/// Routes one request on the legacy path (blocking `/synthesize`).
fn dispatch(shared: &Arc<ServerShared>, request: &Request, peer: IpAddr) -> Response {
    if is_synthesize(request) {
        synthesize(shared, request, peer)
    } else {
        dispatch_immediate(shared, request)
    }
}

/// Handles every route except `POST /synthesize` (whose reply is
/// asynchronous) and records the per-route latency. Shared by both
/// front ends.
pub(crate) fn dispatch_immediate(shared: &Arc<ServerShared>, request: &Request) -> Response {
    let start = Instant::now();
    let (route, response) = match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => (ROUTE_HEALTHZ, healthz(shared)),
        ("GET", "/metrics") => {
            let mut response = Response::text(200, metrics::render(shared));
            response.content_type = "text/plain; version=0.0.4; charset=utf-8";
            (ROUTE_METRICS, response)
        }
        ("POST", "/shutdown") => {
            initiate_shutdown(shared);
            (
                ROUTE_SHUTDOWN,
                Response::json(200, &JsonValue::obj([("status", "draining")])),
            )
        }
        (_, "/synthesize" | "/healthz" | "/metrics" | "/shutdown") => (
            ROUTE_OTHER,
            Response::json(405, &JsonValue::obj([("kind", "MethodNotAllowed")])),
        ),
        _ => (
            ROUTE_OTHER,
            Response::json(404, &JsonValue::obj([("kind", "NotFound")])),
        ),
    };
    shared.route_latency[route].record(start.elapsed());
    response
}

/// Validates and admits one `POST /synthesize` request, enqueuing it
/// into the micro-batcher with `reply` as its result sink. Returns the
/// error response (400 / 429 / 503) when the request is not admitted.
/// On `Ok(())` the admission gauge has been incremented; whoever
/// consumes the reply decrements it.
pub(crate) fn admit_synthesize(
    shared: &Arc<ServerShared>,
    request: &Request,
    peer: IpAddr,
    reply: ReplySink,
) -> Result<(), Response> {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    if shared.draining() {
        return Err(Response::json(
            503,
            &JsonValue::obj([
                ("kind", "ShuttingDown"),
                ("message", "server is draining; request not admitted"),
            ]),
        ));
    }
    let spec = match parse_synthesize_body(shared, request) {
        Ok(spec) => spec,
        Err(message) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Err(Response::json(
                400,
                &JsonValue::obj([
                    ("kind", JsonValue::from("BadRequest")),
                    ("message", JsonValue::from(message)),
                ]),
            ));
        }
    };

    // Per-client fairness runs before the shared admission queue: a hot
    // tenant burns its own bucket, not everyone's slots.
    if let Some(fairness) = &shared.fairness {
        if !fairness.admit(&client_key(request, peer)) {
            shared.quota_denied.fetch_add(1, Ordering::Relaxed);
            return Err(Response::json(
                429,
                &JsonValue::obj([
                    ("kind", "QuotaExceeded"),
                    ("message", "per-client rate exceeded; retry shortly"),
                ]),
            )
            .header("Retry-After", "1"));
        }
    }

    // Admission: reserve a slot below `queue_depth` or shed.
    let admitted = shared
        .admitted
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            (n < shared.config.queue_depth).then_some(n + 1)
        });
    if admitted.is_err() {
        shared.shed.fetch_add(1, Ordering::Relaxed);
        return Err(Response::json(
            429,
            &JsonValue::obj([
                ("kind", "Overloaded"),
                ("message", "admission queue full; retry shortly"),
            ]),
        )
        .header("Retry-After", "1"));
    }

    let enqueued = match lock(&shared.queue).as_ref() {
        Some(tx) => tx.send(Pending { spec, reply }).is_ok(),
        None => false,
    };
    if !enqueued {
        shared.admitted.fetch_sub(1, Ordering::AcqRel);
        return Err(Response::json(
            503,
            &JsonValue::obj([("kind", "ShuttingDown"), ("message", "queue closed")]),
        ));
    }
    Ok(())
}

/// The legacy-path `POST /synthesize` handler: admit (or reject),
/// then block this connection thread until the micro-batcher delivers
/// the result.
fn synthesize(shared: &Arc<ServerShared>, request: &Request, peer: IpAddr) -> Response {
    let start = Instant::now();
    let (reply_tx, reply_rx) = mpsc::channel();
    if let Err(response) = admit_synthesize(shared, request, peer, ReplySink::Channel(reply_tx)) {
        return response;
    }

    // The engine records every job (deadlines enforced, panics
    // isolated), so the reply always arrives; the timeout is a
    // defensive backstop (saturating, capped — see `reply_backstop`).
    let response = match reply_rx.recv_timeout(reply_backstop(shared)) {
        Ok(body) => {
            let elapsed = start.elapsed();
            shared.latency.record(elapsed);
            shared.route_latency[ROUTE_SYNTHESIZE].record(elapsed);
            Response::raw_json(200, body)
        }
        Err(_) => Response::json(
            500,
            &JsonValue::obj([("kind", "Internal"), ("message", "result channel stalled")]),
        ),
    };
    shared.admitted.fetch_sub(1, Ordering::AcqRel);
    response
}

fn healthz(shared: &ServerShared) -> Response {
    let stats = shared.engine.stats();
    Response::json(
        200,
        &JsonValue::obj([
            (
                "status",
                JsonValue::from(if shared.draining() { "draining" } else { "ok" }),
            ),
            ("workers", JsonValue::from(shared.engine.workers())),
            ("outstanding", JsonValue::from(stats.outstanding())),
            (
                "admitted",
                JsonValue::from(shared.admitted.load(Ordering::Relaxed)),
            ),
        ]),
    )
}

/// Parses `{"query": "...", "deadline_ms": n?}` into a [`JobSpec`]. A
/// request deadline can only tighten the server's own deadline.
fn parse_synthesize_body(shared: &ServerShared, request: &Request) -> Result<JobSpec, String> {
    let body = request.body_str().ok_or("body is not UTF-8")?;
    let doc = JsonValue::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let query = doc
        .get("query")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"query\"")?;
    if query.trim().is_empty() {
        return Err("\"query\" must be non-empty".to_string());
    }
    let mut spec = JobSpec::new(query);
    if let Some(value) = doc.get("deadline_ms") {
        let ms = value
            .as_u64()
            .ok_or("\"deadline_ms\" must be a non-negative integer")?;
        let requested = Duration::from_millis(ms);
        let clamped = requested.min(shared.base_config.deadline);
        spec.config = Some(shared.base_config.clone().deadline(clamped));
    }
    Ok(spec)
}

/// The micro-batcher: drains the admission channel in windows of
/// [`ServerConfig::batch_window`] (closing early at
/// [`ServerConfig::max_batch`]) and submits each window as one
/// co-scheduled engine submission. Results stream back per-job through
/// the submission callback into each request's [`ReplySink`].
fn batcher_loop(shared: &Arc<ServerShared>, rx: mpsc::Receiver<Pending>) {
    loop {
        let first = match rx.recv() {
            Ok(pending) => pending,
            Err(_) => return, // queue closed and drained
        };
        let mut batch = vec![first];
        let window_end = Instant::now() + shared.config.batch_window;
        let mut closed = false;
        while batch.len() < shared.config.max_batch {
            let now = Instant::now();
            if now >= window_end {
                break;
            }
            match rx.recv_timeout(window_end - now) {
                Ok(pending) => batch.push(pending),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    closed = true;
                    break;
                }
            }
        }
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .batched_jobs
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let replies: Vec<ReplySink> = batch.iter().map(|p| p.reply.clone()).collect();
        let jobs: Vec<JobSpec> = batch.into_iter().map(|p| p.spec).collect();
        // Fire and forget: the per-job callback renders and delivers each
        // result to its waiting connection; nobody blocks on the batch.
        drop(shared.engine.submit_with(jobs, move |index, synthesis| {
            replies[index].deliver(synthesis_json(synthesis).render());
        }));
        if closed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a minimal `ServerShared`-free check: the backstop math
    /// itself must be total over any configured deadline.
    fn backstop_of(deadline: Duration, queue_depth: usize) -> Duration {
        let slots = u32::try_from(queue_depth.saturating_add(2)).unwrap_or(u32::MAX);
        deadline
            .saturating_mul(slots)
            .saturating_add(Duration::from_secs(30))
            .min(BACKSTOP_CAP)
    }

    #[test]
    fn reply_backstop_saturates_instead_of_panicking() {
        // The old expression `deadline * (queue_depth + 2) + 30s`
        // panicked on Duration overflow for large configured deadlines.
        let huge = Duration::MAX;
        assert_eq!(backstop_of(huge, 64), BACKSTOP_CAP);
        assert_eq!(
            backstop_of(Duration::from_secs(u64::MAX / 2), usize::MAX),
            BACKSTOP_CAP
        );
        // Sane configurations keep their exact value (under the cap).
        assert_eq!(
            backstop_of(Duration::from_secs(2), 8),
            Duration::from_secs(2 * 10 + 30)
        );
    }

    #[test]
    fn fairness_buckets_refill_and_deny() {
        let fairness = Fairness::new(1000.0, 2.0);
        assert!(fairness.admit("a"), "fresh bucket starts full");
        assert!(fairness.admit("a"), "burst of 2 admits twice");
        // The third immediate request may only pass via refill; at
        // 1000/s the bucket regains a token within a few ms.
        let denied_then_refilled = !fairness.admit("a") || {
            std::thread::sleep(Duration::from_millis(5));
            fairness.admit("a")
        };
        assert!(denied_then_refilled);
        // Another client is unaffected by `a`'s spend.
        assert!(fairness.admit("b"));
        assert_eq!(fairness.tracked_clients(), 2);
    }

    #[test]
    fn fairness_denies_a_drained_bucket() {
        // Effectively no refill: after the burst, deny deterministically.
        let fairness = Fairness::new(1e-9, 1.0);
        assert!(fairness.admit("hot"));
        assert!(!fairness.admit("hot"), "drained bucket denies");
        assert!(fairness.admit("cold"), "other clients unaffected");
    }
}
