//! The `nlquery-serve` binary: boot a resident query service and run
//! until drained.
//!
//! ```text
//! nlquery-serve [--addr 127.0.0.1:7878] [--domain astmatcher|textedit]
//!               [--workers N] [--queue-depth N] [--window-us N]
//!               [--max-batch N] [--deadline-ms N]
//!               [--event-driven | --threaded] [--max-connections N]
//!               [--client-rate R] [--client-burst B]
//!               [--snapshot PATH] [--snapshot-interval-secs N]
//!               [--aot] [--aot-cache PATH]
//! ```
//!
//! Connections are carried by the event-driven front end by default
//! (`--event-driven`; one poller thread over nonblocking sockets).
//! `--threaded` selects the legacy thread-per-connection path, kept as
//! a fallback for one release. `--max-connections` bounds open
//! connections on either path: beyond it new connections are answered
//! with an accounted 503, never silently dropped. `--client-rate`
//! enables per-client admission fairness (a token bucket of R
//! requests/second with burst B, keyed by the `X-Client-Id` header or
//! the peer IP).
//!
//! `--snapshot PATH` restores warm state (path cache + merge memo) from
//! `PATH` at boot when the file exists — a stale or damaged snapshot is
//! rejected with a logged reason and the boot proceeds cold — and
//! rewrites it atomically on graceful drain (plus every
//! `--snapshot-interval-secs` when set). `--aot` compiles the domain
//! against its bundled corpus at boot and seeds the path cache with the
//! compiled path table; `--aot-cache PATH` persists that artifact so
//! later boots load it instead of recompiling (implies `--aot`).
//!
//! The process is std-only, so there is no signal handler: shut it down
//! with `POST /shutdown` (or `make serve-stop`), which drains in-flight
//! queries before the process exits.

use std::process::ExitCode;
use std::time::Duration;

use nlquery_core::SynthesisConfig;
use nlquery_serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: nlquery-serve [--addr HOST:PORT] [--domain astmatcher|textedit]\n\
         \x20                    [--workers N] [--queue-depth N] [--window-us N]\n\
         \x20                    [--max-batch N] [--deadline-ms N]\n\
         \x20                    [--event-driven | --threaded] [--max-connections N]\n\
         \x20                    [--client-rate R] [--client-burst B]\n\
         \x20                    [--snapshot PATH] [--snapshot-interval-secs N]\n\
         \x20                    [--aot] [--aot-cache PATH]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("nlquery-serve: {flag} needs a valid value");
        usage()
    })
}

fn main() -> ExitCode {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut domain_name = "astmatcher".to_string();
    let mut deadline_ms: Option<u64> = None;
    let mut aot = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parse(&arg, args.next()),
            "--domain" => domain_name = parse(&arg, args.next()),
            "--workers" => config.workers = parse(&arg, args.next()),
            "--queue-depth" => config.queue_depth = parse(&arg, args.next()),
            "--window-us" => config.batch_window = Duration::from_micros(parse(&arg, args.next())),
            "--max-batch" => config.max_batch = parse(&arg, args.next()),
            "--deadline-ms" => deadline_ms = Some(parse(&arg, args.next())),
            "--event-driven" => config.event_driven = true,
            "--threaded" => config.event_driven = false,
            "--max-connections" => config.max_connections = parse(&arg, args.next()),
            "--client-rate" => config.client_rate = parse(&arg, args.next()),
            "--client-burst" => config.client_burst = parse(&arg, args.next()),
            "--snapshot" => config.snapshot_path = Some(parse::<String>(&arg, args.next()).into()),
            "--snapshot-interval-secs" => {
                config.snapshot_interval = Some(Duration::from_secs(parse(&arg, args.next())));
            }
            "--aot" => aot = true,
            "--aot-cache" => {
                config.aot_cache_path = Some(parse::<String>(&arg, args.next()).into());
                aot = true;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("nlquery-serve: unknown flag {other}");
                usage();
            }
        }
    }
    if config.snapshot_interval.is_some() && config.snapshot_path.is_none() {
        eprintln!("nlquery-serve: --snapshot-interval-secs needs --snapshot PATH");
        usage();
    }

    let (domain, corpus) = match domain_name.as_str() {
        "astmatcher" => (
            nlquery_domains::astmatcher::domain(),
            nlquery_domains::astmatcher::queries(),
        ),
        "textedit" => (
            nlquery_domains::textedit::domain(),
            nlquery_domains::textedit::queries(),
        ),
        other => {
            eprintln!("nlquery-serve: unknown domain {other} (astmatcher|textedit)");
            return ExitCode::from(2);
        }
    };
    if aot {
        config.aot_corpus = corpus.into_iter().map(|c| c.query).collect();
    }
    let domain = match domain {
        Ok(domain) => domain,
        Err(e) => {
            eprintln!("nlquery-serve: domain failed to build: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut synthesis_config = SynthesisConfig::default();
    if let Some(ms) = deadline_ms {
        synthesis_config = synthesis_config.deadline(Duration::from_millis(ms));
    }

    let server = match Server::start(domain, synthesis_config, config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("nlquery-serve: could not bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "nlquery-serve listening on http://{} (domain {domain_name}, {} front end, \
         {} workers, queue depth {}, window {:?}, max {} connections)",
        server.local_addr(),
        if config.event_driven {
            "event-driven"
        } else {
            "thread-per-connection"
        },
        server.engine().workers(),
        config.queue_depth,
        config.batch_window,
        config.max_connections,
    );
    println!(
        "shut down with: curl -X POST http://{}/shutdown",
        server.local_addr()
    );
    server.join();
    println!("nlquery-serve: drained, exiting");
    ExitCode::SUCCESS
}
