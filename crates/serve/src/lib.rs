//! `nlquery-serve`: a resident HTTP query service over the DGGT
//! synthesis engine.
//!
//! The paper's headline claim is *near real-time* NLU-driven
//! programming; this crate is where that claim meets traffic. It wraps
//! the resident [`ServiceEngine`](nlquery_core::ServiceEngine) — workers
//! and the shared path cache persist across requests — in a std-only
//! HTTP/1.1 surface (the workspace is offline-green, so no external
//! HTTP or async dependencies):
//!
//! - `POST /synthesize` — `{"query": "...", "deadline_ms": n?}` in;
//!   expression, outcome, structured error taxonomy, and per-stage
//!   timings out.
//! - `GET /healthz` — liveness plus drain state.
//! - `GET /metrics` — Prometheus text format: monotonic engine/cache
//!   counters, admission gauges, shed count, and a request-latency
//!   histogram.
//! - `POST /shutdown` — begin a graceful drain (finish in-flight
//!   queries, then exit).
//!
//! Connections are carried by an event-driven front end by default:
//! nonblocking sockets behind a `poll(2)` readiness loop (one thread,
//! per-connection state machines, keep-alive reuse, a bounded
//! connection budget with accounted 503 rejection, and per-client
//! fairness on admission). The legacy thread-per-connection path
//! remains available as a fallback via
//! [`ServerConfig::event_driven`].
//!
//! Overload is handled by an admission controller (bounded in-flight
//! count; excess requests shed with HTTP 429 + `Retry-After`), and
//! concurrent requests arriving within a ~2 ms micro-batching window
//! are co-scheduled as one engine submission so they share single-flight
//! path-cache population, exactly like offline batches. See
//! [`server`] for the drain invariants and DESIGN.md §9/§13 for the
//! architecture.

// `unsafe` is denied crate-wide and re-allowed in exactly one module:
// `sys`, the thin FFI wrapper over `poll(2)`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod event;
pub mod http;
mod metrics;
pub mod server;
mod sys;

pub use client::{HttpClient, HttpResponse};
pub use server::{Server, ServerConfig};
