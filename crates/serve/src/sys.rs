//! A thin in-tree wrapper over `poll(2)`.
//!
//! The workspace is offline-green — no `libc`, `mio`, or async runtime
//! crates — so the event-driven connection layer declares the one libc
//! entry point it needs itself. `poll` is in POSIX, present in every
//! libc Rust links against on unix, and its ABI (fd/events/revents
//! triples) has been stable for decades; everything else the event loop
//! touches (nonblocking sockets, `UnixStream::pair` for the waker) goes
//! through `std`.
//!
//! This module is the only place in the crate allowed to use `unsafe`
//! (the crate root is `#![deny(unsafe_code)]`), and the unsafety is
//! confined to the FFI call itself: the safe [`poll_fds`] wrapper owns
//! the pointer/length pairing and retries `EINTR`.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_ulong};

/// One entry of a `poll(2)` set, ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch (negative entries are ignored by
    /// the kernel, per POSIX).
    pub fd: RawFd,
    /// Requested readiness events (`POLL*` bits).
    pub events: i16,
    /// Kernel-reported readiness events; `POLLERR`/`POLLHUP`/`POLLNVAL`
    /// can appear here even when not requested.
    pub revents: i16,
}

impl PollFd {
    /// A watch entry for `fd` with the given interest bits.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }
}

/// Data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Data may be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// An error condition on the descriptor (always reported).
pub const POLLERR: i16 = 0x008;
/// The peer hung up (always reported).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is not open (always reported).
pub const POLLNVAL: i16 = 0x020;

extern "C" {
    /// `int poll(struct pollfd *fds, nfds_t nfds, int timeout)` — on
    /// every unix libc Rust targets, `nfds_t` is an unsigned integer of
    /// platform word width (`c_ulong` on the Linux targets this repo
    /// builds for).
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Waits until at least one entry in `fds` is ready, or `timeout_ms`
/// elapses (`-1` blocks indefinitely, `0` polls). Returns the number of
/// entries with non-zero `revents`. `EINTR` is retried transparently.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a live, exclusively-borrowed slice of
        // `#[repr(C)]` pollfd-layout structs, and the length passed is
        // exactly the slice length; the kernel writes only `revents`
        // within those bounds.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poll_reports_readability_and_timeouts() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];

        // Nothing written yet: a zero-timeout poll returns no entries.
        assert_eq!(poll_fds(&mut fds, 0).expect("poll"), 0);
        assert_eq!(fds[0].revents & POLLIN, 0);

        (&b).write_all(b"x").expect("write side");
        let ready = poll_fds(&mut fds, 1000).expect("poll");
        assert_eq!(ready, 1);
        assert_ne!(fds[0].revents & POLLIN, 0, "readable after a write");
    }

    #[test]
    fn poll_reports_writability_and_hangup() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let ready = poll_fds(&mut fds, 1000).expect("poll");
        assert_eq!(ready, 1);
        assert_ne!(fds[0].revents & POLLOUT, 0, "fresh socket is writable");

        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        poll_fds(&mut fds, 1000).expect("poll");
        assert_ne!(
            fds[0].revents & (POLLIN | POLLHUP),
            0,
            "peer close surfaces as readable EOF or hangup"
        );
    }
}
