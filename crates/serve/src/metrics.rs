//! The `GET /metrics` exposition: Prometheus text format (0.0.4).
//!
//! Everything exported as a `counter` here is **monotonic** — the
//! engine's cumulative [`ServiceStats`](nlquery_core::ServiceStats), the
//! shared cache's cumulative counters, the server's HTTP tallies, and
//! the request-latency histogram are never reset — so scrapes compose
//! with `rate()`/`increase()` without counter-reset artifacts. Queue
//! depth, running jobs, and the admission gauge are exported as gauges.

use std::fmt::Write as _;
use std::sync::atomic::Ordering;

use nlquery_core::{HistogramSnapshot, HISTOGRAM_BUCKETS};

use crate::server::{ServerShared, ROUTE_NAMES};

/// Appends one `# HELP`/`# TYPE` header pair.
fn head(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Appends a single unlabelled sample.
fn sample(out: &mut String, name: &str, kind: &str, help: &str, value: impl std::fmt::Display) {
    head(out, name, kind, help);
    let _ = writeln!(out, "{name} {value}");
}

/// Renders the full exposition for one scrape.
pub(crate) fn render(shared: &ServerShared) -> String {
    let stats = shared.engine.stats();
    let mut out = String::with_capacity(4096);

    sample(
        &mut out,
        "nlquery_uptime_seconds",
        "gauge",
        "Seconds since the server started.",
        format_args!("{:.3}", shared.started.elapsed().as_secs_f64()),
    );

    // Engine job counters.
    sample(
        &mut out,
        "nlquery_jobs_submitted_total",
        "counter",
        "Jobs ever submitted to the resident engine.",
        stats.submitted,
    );
    sample(
        &mut out,
        "nlquery_jobs_completed_total",
        "counter",
        "Jobs ever completed by the resident engine.",
        stats.completed,
    );
    head(
        &mut out,
        "nlquery_jobs_outcome_total",
        "counter",
        "Completed jobs by outcome.",
    );
    for (label, value) in [
        ("success", stats.successes),
        ("timeout", stats.timeouts),
        ("no_parse", stats.no_parse),
        ("no_result", stats.no_result),
        ("panicked", stats.panics),
    ] {
        let _ = writeln!(
            out,
            "nlquery_jobs_outcome_total{{outcome=\"{label}\"}} {value}"
        );
    }

    // Engine gauges.
    sample(
        &mut out,
        "nlquery_queue_depth",
        "gauge",
        "Jobs planted on worker deques, not yet claimed.",
        stats.queued,
    );
    sample(
        &mut out,
        "nlquery_jobs_running",
        "gauge",
        "Jobs currently being synthesized.",
        stats.running,
    );

    // Shared path-cache counters (cumulative across all submissions).
    sample(
        &mut out,
        "nlquery_cache_hits_total",
        "counter",
        "EdgeToPath memo-cache hits.",
        stats.cache.hits,
    );
    sample(
        &mut out,
        "nlquery_cache_misses_total",
        "counter",
        "EdgeToPath memo-cache misses.",
        stats.cache.misses,
    );
    sample(
        &mut out,
        "nlquery_cache_dedup_waits_total",
        "counter",
        "Lookups that waited on another worker's in-flight computation.",
        stats.cache.dedup_waits,
    );
    sample(
        &mut out,
        "nlquery_cache_evictions_total",
        "counter",
        "Memo-cache LRU evictions.",
        stats.cache.evictions,
    );
    sample(
        &mut out,
        "nlquery_cache_entries",
        "gauge",
        "Live memo-cache entries.",
        stats.cache.entries,
    );
    sample(
        &mut out,
        "nlquery_cache_capacity",
        "gauge",
        "Memo-cache capacity (entries).",
        stats.cache.capacity,
    );
    sample(
        &mut out,
        "nlquery_cache_bytes",
        "gauge",
        "Approximate bytes held by live memo-cache entries.",
        stats.cache.bytes,
    );

    // Cross-query merge-memo counters (cumulative across all submissions).
    sample(
        &mut out,
        "nlquery_merge_memo_hits_total",
        "counter",
        "Merge-memo hits (beam/fuse results replayed).",
        stats.merge.hits,
    );
    sample(
        &mut out,
        "nlquery_merge_memo_misses_total",
        "counter",
        "Merge-memo misses (merges computed and cached).",
        stats.merge.misses,
    );
    sample(
        &mut out,
        "nlquery_merge_memo_dedup_waits_total",
        "counter",
        "Merge lookups that waited on another worker's in-flight merge.",
        stats.merge.dedup_waits,
    );
    sample(
        &mut out,
        "nlquery_merge_memo_evictions_total",
        "counter",
        "Merge-memo LRU evictions.",
        stats.merge.evictions,
    );
    sample(
        &mut out,
        "nlquery_merge_memo_entries",
        "gauge",
        "Live merge-memo entries.",
        stats.merge.entries,
    );
    sample(
        &mut out,
        "nlquery_merge_memo_capacity",
        "gauge",
        "Merge-memo capacity (entries).",
        stats.merge.capacity,
    );
    sample(
        &mut out,
        "nlquery_merge_memo_bytes",
        "gauge",
        "Approximate bytes held by live merge-memo entries.",
        stats.merge.bytes,
    );
    sample(
        &mut out,
        "nlquery_merge_memo_unique_signatures_total",
        "counter",
        "Distinct merge signatures ever published into the merge memo (capped census; survives eviction).",
        stats.merge.unique_signatures,
    );
    sample(
        &mut out,
        "nlquery_cache_unique_signatures_total",
        "counter",
        "Distinct EdgeToPath memo keys ever published into the path cache (capped census; survives eviction).",
        stats.cache.unique_signatures,
    );

    // Warm-state tier: boot restore, snapshot writes, AOT seeding.
    sample(
        &mut out,
        "nlquery_snapshot_restored_path_entries",
        "gauge",
        "Path-cache entries restored from the boot snapshot.",
        shared.snapshot_restored_paths.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_snapshot_restored_merge_entries",
        "gauge",
        "Merge-memo entries restored from the boot snapshot.",
        shared.snapshot_restored_merges.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_snapshot_rejected_total",
        "counter",
        "Boot snapshots rejected as stale or damaged (fell back to cold boot).",
        shared.snapshot_rejected.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_snapshot_writes_total",
        "counter",
        "Warm-state snapshots written (periodic snapshotter plus drain).",
        shared.snapshot_writes.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_snapshot_write_errors_total",
        "counter",
        "Snapshot writes that failed.",
        shared.snapshot_write_errors.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_snapshot_last_bytes",
        "gauge",
        "Size in bytes of the last snapshot written.",
        shared.snapshot_last_bytes.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_aot_seeded_path_entries",
        "gauge",
        "Path-cache entries seeded from the AOT-compiled path table at boot.",
        shared.aot_seeded_paths.load(Ordering::Relaxed),
    );

    // HTTP-layer counters and the admission gauge.
    sample(
        &mut out,
        "nlquery_http_requests_total",
        "counter",
        "POST /synthesize requests received.",
        shared.requests.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_http_shed_total",
        "counter",
        "Requests shed with 429 by the admission controller.",
        shared.shed.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_http_bad_requests_total",
        "counter",
        "Requests rejected with 400.",
        shared.bad_requests.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_admitted",
        "gauge",
        "Requests admitted and not yet answered.",
        shared.admitted.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_microbatches_total",
        "counter",
        "Micro-batch submissions made by the batching window.",
        shared.batches.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_microbatched_jobs_total",
        "counter",
        "Jobs carried by micro-batch submissions.",
        shared.batched_jobs.load(Ordering::Relaxed),
    );

    // Connection front end: open/accepted/rejected/idle-reaped, plus
    // per-client fairness. Rejected is the load-bearing one — every
    // connection the server cannot take is *answered* (503) and counted
    // here, never silently dropped.
    sample(
        &mut out,
        "nlquery_connections_open",
        "gauge",
        "Connections currently open.",
        shared.conns_open.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_connections_accepted_total",
        "counter",
        "Connections ever accepted from the listener.",
        shared.conns_accepted.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_connections_rejected_total",
        "counter",
        "Connections answered with 503 and closed (budget exhaustion or thread-spawn failure); never a silent drop.",
        shared.conns_rejected.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_connections_idle_reaped_total",
        "counter",
        "Idle keep-alive connections reaped by the read timeout.",
        shared.conns_idle_reaped.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_quota_denied_total",
        "counter",
        "Requests denied with 429 by per-client fairness.",
        shared.quota_denied.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "nlquery_quota_tracked_clients",
        "gauge",
        "Client token buckets currently tracked by the fairness limiter.",
        shared
            .fairness
            .as_ref()
            .map(|f| f.tracked_clients())
            .unwrap_or(0),
    );

    // Request latency, as a cumulative Prometheus histogram.
    let snap = shared.latency.snapshot();
    render_histogram(
        &mut out,
        "nlquery_request_duration_seconds",
        "End-to-end /synthesize latency (admission to response).",
        &snap,
    );

    // Per-route latency, labeled by route.
    head(
        &mut out,
        "nlquery_route_duration_seconds",
        "histogram",
        "Request handling latency by route.",
    );
    for (index, route) in ROUTE_NAMES.iter().enumerate() {
        let snap = shared.route_latency[index].snapshot();
        render_labeled_histogram_samples(
            &mut out,
            "nlquery_route_duration_seconds",
            &format!("route=\"{route}\""),
            &snap,
        );
    }

    out
}

/// Renders one labeled histogram series (bucket/sum/count samples only;
/// the caller emits the shared `# HELP`/`# TYPE` header once).
fn render_labeled_histogram_samples(
    out: &mut String,
    name: &str,
    label: &str,
    snap: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    for i in 0..HISTOGRAM_BUCKETS {
        cumulative += snap.buckets[i];
        let _ = writeln!(
            out,
            "{name}_bucket{{{label},le=\"{}\"}} {cumulative}",
            HistogramSnapshot::bound_secs(i),
        );
    }
    let _ = writeln!(out, "{name}_bucket{{{label},le=\"+Inf\"}} {}", snap.count);
    let _ = writeln!(
        out,
        "{name}_sum{{{label}}} {:.9}",
        snap.sum_nanos as f64 / 1e9
    );
    let _ = writeln!(out, "{name}_count{{{label}}} {}", snap.count);
}

/// Renders one [`HistogramSnapshot`] as a Prometheus histogram: the
/// buckets become cumulative `le` samples, plus `+Inf`, `_sum`, `_count`.
fn render_histogram(out: &mut String, name: &str, help: &str, snap: &HistogramSnapshot) {
    head(out, name, "histogram", help);
    let mut cumulative = 0u64;
    for i in 0..HISTOGRAM_BUCKETS {
        cumulative += snap.buckets[i];
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            HistogramSnapshot::bound_secs(i),
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
    let _ = writeln!(out, "{name}_sum {:.9}", snap.sum_nanos as f64 / 1e9);
    let _ = writeln!(out, "{name}_count {}", snap.count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlquery_core::LatencyHistogram;
    use std::time::Duration;

    #[test]
    fn histograms_render_cumulatively() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_secs(60)); // overflow
        let mut out = String::new();
        render_histogram(&mut out, "x_seconds", "help text", &h.snapshot());
        assert!(out.contains("# TYPE x_seconds histogram"));
        assert!(out.contains("x_seconds_bucket{le=\"0.000001\"} 1"), "{out}");
        assert!(out.contains("x_seconds_bucket{le=\"0.000004\"} 2"), "{out}");
        assert!(out.contains("x_seconds_bucket{le=\"+Inf\"} 3"), "{out}");
        assert!(out.contains("x_seconds_count 3"), "{out}");
        // Cumulative: every bucket line is monotonically non-decreasing.
        let counts: Vec<u64> = out
            .lines()
            .filter(|l| l.starts_with("x_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }
}
