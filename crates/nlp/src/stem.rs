//! A light suffix-stripping stemmer.
//!
//! The semantic matcher compares query words with API documentation words.
//! Both sides are normalized with this stemmer so that inflection
//! ("containing" / "contains" / "contained") does not defeat matching. It is
//! a pragmatic Porter-style reduction, deliberately conservative: it never
//! touches words of four characters or fewer except for a plural `-s`.

/// Stems a lower-case word.
///
/// The input is lower-cased defensively; callers normally pass lemmas that
/// are already lower case.
///
/// # Example
///
/// ```rust
/// use nlquery_nlp::stem;
///
/// assert_eq!(stem("containing"), "contain");
/// assert_eq!(stem("lines"), "line");
/// assert_eq!(stem("replaced"), "replac");
/// assert_eq!(stem("replace"), "replac");
/// ```
pub fn stem(word: &str) -> String {
    let w = word.to_lowercase();
    let mut s = w.as_str();

    // Irregulars that matter for the two evaluated domains.
    match s {
        "is" | "are" | "was" | "were" | "be" | "been" | "being" => return "be".to_string(),
        "has" | "have" | "having" | "had" => return "have".to_string(),
        "does" | "doing" | "did" | "done" => return "do".to_string(),
        "goes" | "went" | "gone" | "going" => return "go".to_string(),
        "characters" | "character" => return "charact".to_string(),
        "occurrences" | "occurrence" | "occurrences'" => return "occurr".to_string(),
        _ => {}
    }

    // Step 1: plurals and verbal -s.
    if let Some(base) = s.strip_suffix("sses") {
        return format!("{base}ss");
    }
    if let Some(base) = s.strip_suffix("ies") {
        return format!("{base}i");
    }
    if s.ends_with('s') && !s.ends_with("ss") && !s.ends_with("us") && s.len() > 3 {
        s = &s[..s.len() - 1];
    }

    // Step 2: -ing / -ed, only when the remaining stem keeps a vowel.
    let stripped = strip_verbal(s);

    // Step 3: -ly adverbs.
    let stripped = stripped
        .strip_suffix("ly")
        .filter(|b| b.len() >= 4)
        .unwrap_or(stripped);

    // Step 4: a trailing -e is dropped so "replace"/"replaced" agree.
    let stripped = stripped
        .strip_suffix('e')
        .filter(|b| b.len() >= 4)
        .unwrap_or(stripped);

    stripped.to_string()
}

fn strip_verbal(s: &str) -> &str {
    for suffix in ["ing", "ed"] {
        if let Some(base) = s.strip_suffix(suffix) {
            if base.len() >= 3 && base.chars().any(is_vowel) {
                // Undo consonant doubling: "inserting" -> "insert" but
                // "putting" -> "put" (base "putt" ends in doubled t).
                let chars: Vec<char> = base.chars().collect();
                let n = chars.len();
                if n >= 2 && chars[n - 1] == chars[n - 2] && !is_vowel(chars[n - 1]) &&
                    // Keep legitimate doubles like "ss" in "passing" stems.
                    chars[n - 1] != 's' && chars[n - 1] != 'l'
                {
                    return &base[..base.len() - 1];
                }
                return base;
            }
        }
    }
    s
}

fn is_vowel(c: char) -> bool {
    matches!(c, 'a' | 'e' | 'i' | 'o' | 'u' | 'y')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plurals() {
        assert_eq!(stem("lines"), "line");
        assert_eq!(stem("numerals"), "numeral");
        assert_eq!(stem("classes"), "class");
        assert_eq!(stem("entries"), "entri");
    }

    #[test]
    fn gerunds_and_past() {
        assert_eq!(stem("inserting"), "insert");
        assert_eq!(stem("inserted"), "insert");
        assert_eq!(stem("starting"), "start");
        assert_eq!(stem("matched"), "match");
    }

    #[test]
    fn consonant_doubling_undone() {
        assert_eq!(stem("putting"), "put");
        assert_eq!(stem("dropping"), "drop");
    }

    #[test]
    fn inflections_agree_with_base() {
        for (a, b) in [
            ("contain", "containing"),
            ("contain", "contains"),
            ("replace", "replaced"),
            ("delete", "deleting"),
            ("declare", "declares"),
        ] {
            assert_eq!(stem(a), stem(b), "{a} vs {b}");
        }
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("as"), "as");
        assert_eq!(stem("us"), "us");
        assert_eq!(stem("is"), "be");
    }

    #[test]
    fn adverbs() {
        assert_eq!(stem("exactly"), stem("exact"));
    }

    #[test]
    fn irregular_verbs() {
        assert_eq!(stem("has"), "have");
        assert_eq!(stem("is"), "be");
    }

    #[test]
    fn idempotent_on_stems() {
        for w in ["insert", "line", "contain", "start"] {
            let once = stem(w);
            assert_eq!(stem(&once), once, "stem not idempotent for {w}");
        }
    }

    #[test]
    fn uppercase_input_normalized() {
        assert_eq!(stem("Lines"), "line");
    }
}
