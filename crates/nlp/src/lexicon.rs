//! Closed-class and domain word lists backing the POS tagger.
//!
//! The lists are tuned for imperative programming queries of the kind the
//! paper evaluates ("insert a string at the start of each line", "find cxx
//! constructor expressions which declare a method named PI").

/// Determiners.
pub(crate) const DETERMINERS: &[&str] = &[
    "a", "an", "the", "every", "each", "all", "any", "some", "this", "these", "those", "no",
    "both", "either",
];

/// Prepositions. `to` is handled separately (particle vs preposition).
pub(crate) const PREPOSITIONS: &[&str] = &[
    "at", "in", "on", "of", "with", "from", "before", "after", "into", "by", "for", "within",
    "under", "over", "between", "without", "inside", "onto", "until", "as", "to", "per",
    "through",
];

/// Coordinating / subordinating conjunctions.
pub(crate) const CONJUNCTIONS: &[&str] = &["and", "or", "but", "if", "then", "when", "while"];

/// Relative / wh-words introducing relative clauses.
pub(crate) const WH_WORDS: &[&str] = &["which", "who", "whose", "where", "that"];

/// Pronouns.
pub(crate) const PRONOUNS: &[&str] = &["it", "them", "its", "they", "itself"];

/// Modals and auxiliaries (rare in imperative queries but appear in
/// relative clauses: "which is a float literal").
pub(crate) const AUXILIARIES: &[&str] = &[
    "is", "are", "was", "were", "be", "been", "being", "has", "have", "had", "do", "does",
    "can", "should", "must", "may",
];

/// Words that are verbs in this domain (imperative commands and clause
/// verbs).
pub(crate) const VERBS: &[&str] = &[
    "insert", "add", "append", "prepend", "delete", "remove", "erase", "drop", "replace",
    "substitute", "change", "swap", "move", "copy", "duplicate", "print", "select", "find",
    "search", "list", "locate", "get", "show", "extract", "convert", "make", "turn", "put",
    "place", "highlight", "merge", "split", "capitalize", "uppercase", "lowercase", "trim",
    "strip", "wrap", "indent", "clear", "declare", "declares", "declare", "contain",
    "contains", "containing", "starts", "ends", "begins", "starting", "ending", "beginning",
    "named", "called", "matching", "matches", "having", "take", "takes", "return", "returns",
    "returning", "define", "defines", "defining", "use", "uses", "using", "modify", "refer",
    "refers", "referring", "point", "points", "pointing", "override", "overrides", "throw",
    "throws", "inherit", "inherits", "derive", "derives", "implement", "implements", "assign",
    "assigns", "invoke", "invokes", "access", "accesses", "reverse", "count", "join",
    "equal", "equals",
];

/// Words that are nouns in this domain.
pub(crate) const NOUNS: &[&str] = &[
    "string", "strings", "line", "lines", "word", "words", "character", "characters", "char",
    "chars", "sentence", "sentences", "paragraph", "paragraphs", "document", "documents",
    "text", "number", "numbers", "numeral", "numerals", "digit", "digits", "letter",
    "letters", "position", "positions", "occurrence", "occurrences", "beginning", "expression",
    "expressions", "statement", "statements", "function", "functions", "method", "methods",
    "class", "classes", "constructor", "constructors", "destructor", "destructors",
    "variable", "variables", "argument", "arguments", "parameter", "parameters", "operator",
    "operators", "literal", "literals", "declaration", "declarations", "loop", "loops",
    "pointer", "pointers", "reference", "references", "type", "types", "field", "fields",
    "member", "members", "call", "calls", "integer", "integers", "float", "floats", "comment",
    "comments", "cast", "casts", "name", "names", "value", "values", "record", "records",
    "struct", "structs", "union", "unions", "enum", "enums", "template", "templates",
    "lambda", "lambdas", "namespace", "namespaces", "label", "labels", "array", "arrays",
    "condition", "conditions", "body", "bodies", "initializer", "initializers", "base",
    "bases", "column", "columns", "tab", "tabs", "space", "spaces", "bracket", "brackets",
    "quote", "quotes", "comma", "commas", "period", "periods", "colon", "colons", "cell",
    "cells", "token", "tokens", "item", "items", "entry", "entries", "selection", "cursor",
    "clipboard", "file", "files", "substring", "prefix", "suffix", "whitespace", "newline",
    "delimiter", "delimiters", "caller", "callee", "operand", "operands", "subscript",
    "bool", "boolean",
];

/// Words that are adjectives in this domain.
pub(crate) const ADJECTIVES: &[&str] = &[
    "first", "last", "second", "third", "nth", "next", "previous", "empty", "blank",
    "non-empty", "binary", "unary", "const", "constant", "static", "virtual", "public",
    "private", "protected", "pure", "default", "explicit", "implicit", "global", "local",
    "numeric", "alphabetic", "uppercase", "lowercase", "odd", "even", "new", "whole",
    "entire", "same", "floating", "integral", "cxx", "c", "member", "compound",
];

/// Words that can be verb or noun; context decides.
pub(crate) const VERB_NOUN_AMBIGUOUS: &[&str] = &[
    "start", "end", "match", "name", "copy", "print", "call", "return", "cast", "comment",
    "count", "label", "begin", "select", "point", "reference", "base", "list",
];

pub(crate) fn contains(list: &[&str], word: &str) -> bool {
    list.contains(&word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_domain_words_present() {
        assert!(contains(VERBS, "insert"));
        assert!(contains(NOUNS, "line"));
        assert!(contains(DETERMINERS, "every"));
        assert!(contains(PREPOSITIONS, "after"));
        assert!(contains(VERB_NOUN_AMBIGUOUS, "start"));
    }

    #[test]
    fn lists_have_no_duplicates() {
        for list in [DETERMINERS, PREPOSITIONS, CONJUNCTIONS, WH_WORDS, PRONOUNS] {
            let mut sorted: Vec<&str> = list.to_vec();
            sorted.sort_unstable();
            let before = sorted.len();
            sorted.dedup();
            assert_eq!(before, sorted.len());
        }
    }
}
