//! Word↔API semantic matching (the WordToAPI step of the pipeline).
//!
//! Each API of the target domain carries documentation ([`ApiDoc`]): its
//! name, explicit keywords (the primary match terms, playing the role of
//! the name's subwords) and a one-line description. A query word matches an
//! API when its synonym-expanded stem hits the API's keywords (strong
//! signal) or description words (weak signal). The resulting scored,
//! ranked candidate lists form the WordToAPI map.
//!
//! Candidate multiplicity is the source of the combinatorial explosion the
//! paper attacks: an ambiguous word like "start" maps to `START`,
//! `STARTFROM` and `STARTSWITH`, multiplying the grammar paths per
//! dependency edge.

use std::collections::BTreeMap;

use crate::stem;
use crate::synonyms::SynonymLexicon;

/// Documentation of one API of the target domain.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiDoc {
    /// The API name as it appears in the grammar (e.g. `STARTFROM`,
    /// `cxxMethodDecl`).
    pub name: String,
    /// Primary match terms — the natural-language subwords of the name
    /// (e.g. `["start", "from"]`).
    pub keywords: Vec<String>,
    /// One-line description from the domain's reference documentation.
    pub description: String,
    /// Number of literal slots the API takes from the query (e.g. 1 for
    /// `STRING(s)` / `hasName(n)`).
    pub literal_slots: usize,
}

impl ApiDoc {
    /// Convenience constructor.
    pub fn new(name: &str, keywords: &[&str], description: &str, literal_slots: usize) -> ApiDoc {
        ApiDoc {
            name: name.to_string(),
            keywords: keywords.iter().map(|s| s.to_string()).collect(),
            description: description.to_string(),
            literal_slots,
        }
    }
}

/// A scored candidate API for a query word.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiCandidate {
    /// The API name.
    pub api: String,
    /// Match score in `(0, 1]`; higher is better.
    pub score: f64,
}

/// The semantic matcher: an inverted index from stems to APIs.
#[derive(Debug, Clone)]
pub struct SemanticMatcher {
    /// stem → [(api index, weight)]
    index: BTreeMap<String, Vec<(usize, f64)>>,
    docs: Vec<ApiDoc>,
    synonyms: SynonymLexicon,
    /// word → full ranked candidate list, precomputed by
    /// [`SemanticMatcher::preresolve`] for a known vocabulary (AOT domain
    /// compilation). Lookups for other words fall back to the live path.
    resolved: BTreeMap<String, Vec<ApiCandidate>>,
}

/// Weight of a keyword hit.
const KEYWORD_WEIGHT: f64 = 1.0;
/// Weight of a description-word hit.
const DESCRIPTION_WEIGHT: f64 = 0.35;
/// Score penalty applied to hits reached through a synonym rather than the
/// word's own stem.
const SYNONYM_FACTOR: f64 = 0.8;
/// Keyword hits are scaled by `COVERAGE_BASE + COVERAGE_SPAN / #keywords`:
/// one word covering a one-keyword API (`decl`) is a better match than the
/// same word covering a third of `cxxConstructorDecl`.
const COVERAGE_BASE: f64 = 0.6;
/// See [`COVERAGE_BASE`].
const COVERAGE_SPAN: f64 = 0.4;

impl SemanticMatcher {
    /// Builds a matcher over the given API documentation.
    pub fn new(docs: Vec<ApiDoc>, synonyms: SynonymLexicon) -> SemanticMatcher {
        let mut index: BTreeMap<String, Vec<(usize, f64)>> = BTreeMap::new();
        for (i, doc) in docs.iter().enumerate() {
            let mut weights: BTreeMap<String, f64> = BTreeMap::new();
            let coverage = COVERAGE_BASE + COVERAGE_SPAN / doc.keywords.len().max(1) as f64;
            for kw in &doc.keywords {
                let s = stem(kw);
                let w = weights.entry(s).or_default();
                *w = w.max(KEYWORD_WEIGHT * coverage);
            }
            for word in doc.description.split(|c: char| !c.is_alphanumeric()) {
                if word.len() < 3 || STOPWORDS.contains(&word.to_lowercase().as_str()) {
                    continue;
                }
                let s = stem(word);
                let w = weights.entry(s).or_default();
                *w = w.max(DESCRIPTION_WEIGHT);
            }
            for (s, w) in weights {
                index.entry(s).or_default().push((i, w));
            }
        }
        SemanticMatcher {
            index,
            docs,
            synonyms,
            resolved: BTreeMap::new(),
        }
    }

    /// The documentation this matcher was built over.
    pub fn docs(&self) -> &[ApiDoc] {
        &self.docs
    }

    /// Precomputes the full ranked candidate list of every word in
    /// `vocabulary`, so later [`SemanticMatcher::candidates`] calls for
    /// those words reduce to a map lookup plus filter/truncate. The
    /// lookup is *exactly* equivalent to the live path: the score filter
    /// and the deterministic total order (descending score, ascending API
    /// name) commute, so filtering the precomputed full ranking yields
    /// the same list the live computation produces. Unknown words keep
    /// taking the live path.
    pub fn preresolve(&mut self, vocabulary: impl IntoIterator<Item = String>) {
        for word in vocabulary {
            if !self.resolved.contains_key(&word) {
                let ranked = self.ranked(&word);
                self.resolved.insert(word, ranked);
            }
        }
    }

    /// Number of words with a precomputed candidate list.
    pub fn preresolved_words(&self) -> usize {
        self.resolved.len()
    }

    /// The top-`k` candidate APIs for a query word, sorted by descending
    /// score (ties broken by API name for determinism).
    ///
    /// Words reach APIs through their own stem at full weight and through
    /// synonyms at [`SYNONYM_FACTOR`] weight. Candidates scoring below
    /// `min_score` are dropped.
    pub fn candidates(&self, word: &str, k: usize, min_score: f64) -> Vec<ApiCandidate> {
        if let Some(full) = self.resolved.get(word) {
            return full
                .iter()
                .filter(|c| c.score >= min_score)
                .take(k)
                .cloned()
                .collect();
        }
        let mut ranked = self.ranked(word);
        ranked.retain(|c| c.score >= min_score);
        ranked.truncate(k);
        ranked
    }

    /// The full ranked candidate list of a word — every API with a
    /// non-zero score, sorted by descending score (ties broken by API name
    /// for determinism), with no score filter and no truncation.
    fn ranked(&self, word: &str) -> Vec<ApiCandidate> {
        let mut scores: BTreeMap<usize, f64> = BTreeMap::new();
        for (rank, s) in self.synonyms.expand(word).into_iter().enumerate() {
            let factor = if rank == 0 { 1.0 } else { SYNONYM_FACTOR };
            if let Some(hits) = self.index.get(&s) {
                for &(api, w) in hits {
                    let entry = scores.entry(api).or_default();
                    *entry = entry.max(w * factor);
                }
            }
        }
        let mut ranked: Vec<ApiCandidate> = scores
            .into_iter()
            .map(|(i, score)| ApiCandidate {
                api: self.docs[i].name.clone(),
                score,
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then_with(|| a.api.cmp(&b.api))
        });
        ranked
    }

    /// Looks up an API's documentation by name.
    pub fn doc(&self, api: &str) -> Option<&ApiDoc> {
        self.docs.iter().find(|d| d.name == api)
    }
}

const STOPWORDS: &[&str] = &[
    "the", "and", "for", "that", "this", "with", "from", "into", "are", "its", "can", "one", "all",
    "any", "not", "but", "was", "has", "have", "will", "which", "when", "where", "given",
    "matches", "matching", "match",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn matcher() -> SemanticMatcher {
        let docs = vec![
            ApiDoc::new("INSERT", &["insert"], "inserts a string at a position", 0),
            ApiDoc::new("DELETE", &["delete"], "deletes the selected entity", 0),
            ApiDoc::new("STRING", &["string"], "a string constant", 1),
            ApiDoc::new("START", &["start"], "the start of the scope", 0),
            ApiDoc::new(
                "STARTFROM",
                &["start", "from"],
                "position counted from the start",
                0,
            ),
            ApiDoc::new(
                "STARTSWITH",
                &["start", "with"],
                "true if the scope starts with the entity",
                0,
            ),
            ApiDoc::new("LINESCOPE", &["line"], "iterate over lines", 0),
        ];
        SemanticMatcher::new(docs, SynonymLexicon::new())
    }

    #[test]
    fn exact_keyword_match_ranks_first() {
        let m = matcher();
        let c = m.candidates("insert", 4, 0.1);
        assert_eq!(c[0].api, "INSERT");
        assert!((c[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn synonyms_reach_apis_with_discount() {
        let m = matcher();
        let c = m.candidates("append", 4, 0.1);
        assert_eq!(c[0].api, "INSERT");
        assert!(c[0].score < 1.0);
    }

    #[test]
    fn ambiguous_word_yields_multiple_candidates() {
        let m = matcher();
        let c = m.candidates("start", 4, 0.1);
        let names: Vec<&str> = c.iter().map(|c| c.api.as_str()).collect();
        assert!(names.contains(&"START"));
        assert!(names.contains(&"STARTFROM"));
        assert!(names.contains(&"STARTSWITH"));
    }

    #[test]
    fn k_truncates() {
        let m = matcher();
        assert_eq!(m.candidates("start", 2, 0.1).len(), 2);
    }

    #[test]
    fn min_score_filters_description_hits() {
        let m = matcher();
        // "position" only appears in descriptions.
        let weak = m.candidates("position", 4, 0.1);
        assert!(!weak.is_empty());
        let strict = m.candidates("position", 4, 0.9);
        assert!(strict.is_empty());
    }

    #[test]
    fn unknown_word_has_no_candidates() {
        let m = matcher();
        assert!(m.candidates("xylophone", 4, 0.1).is_empty());
    }

    #[test]
    fn inflections_match() {
        let m = matcher();
        let c = m.candidates("lines", 4, 0.1);
        assert_eq!(c[0].api, "LINESCOPE");
    }

    #[test]
    fn deterministic_tie_break() {
        let m = matcher();
        let a = m.candidates("start", 4, 0.1);
        let b = m.candidates("start", 4, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn preresolved_lookups_equal_live_lookups() {
        let live = matcher();
        let mut pre = matcher();
        let vocab = [
            "insert",
            "delete",
            "start",
            "append",
            "position",
            "lines",
            "xylophone",
        ];
        pre.preresolve(vocab.iter().map(|w| w.to_string()));
        assert_eq!(pre.preresolved_words(), vocab.len());
        // Every (word, k, min_score) combination — preresolved words and
        // fallback words alike — must match the live path exactly.
        for word in vocab.iter().chain(["from", "every"].iter()) {
            for k in [0, 1, 2, 4, 100] {
                for min in [0.0, 0.1, 0.3, 0.7, 0.9, 1.1] {
                    assert_eq!(
                        pre.candidates(word, k, min),
                        live.candidates(word, k, min),
                        "word={word} k={k} min={min}"
                    );
                }
            }
        }
    }
}
