//! Synonym lexicon for semantic word↔API matching.
//!
//! The paper's WordToAPI step matches query words against API documentation
//! "via NLU techniques". This crate substitutes a curated synonym lexicon
//! (the role WordNet plays in the original): each group lists words that
//! count as semantically equivalent after stemming. Membership is symmetric
//! and transitive within a group.

use std::collections::BTreeMap;

use crate::stem;

/// Groups of inter-substitutable words. All comparisons happen on stems.
#[derive(Debug, Clone)]
pub struct SynonymLexicon {
    /// stem → group id.
    group_of: BTreeMap<String, usize>,
    /// group id → member stems.
    groups: Vec<Vec<String>>,
}

/// The built-in groups, tuned for the text-editing and code-analysis
/// domains.
const DEFAULT_GROUPS: &[&[&str]] = &[
    &[
        "insert", "add", "append", "prepend", "put", "place", "attach",
    ],
    &[
        "delete",
        "remove",
        "erase",
        "drop",
        "eliminate",
        "discard",
        "cut",
    ],
    &["replace", "substitute", "swap", "change", "exchange"],
    &["move", "shift", "relocate"],
    &["copy", "duplicate", "clone"],
    &["print", "show", "display", "output", "list"],
    &["select", "choose", "pick", "highlight"],
    &[
        "find", "search", "locate", "lookup", "get", "identify", "match",
    ],
    &[
        "start",
        "begin",
        "beginning",
        "front",
        "head",
        "starts",
        "begins",
    ],
    &["end", "finish", "tail", "back", "ends"],
    &["line", "row"],
    &["word", "token"],
    &["character", "char", "symbol"],
    &["number", "numeral", "digit", "numeric", "integer"],
    &["string", "text"],
    &["sentence", "phrase"],
    &["paragraph", "passage"],
    &["document", "file", "buffer"],
    &["contain", "include", "have", "hold", "with"],
    &["every", "each", "all", "any"],
    &["first", "initial"],
    &["last", "final"],
    &["empty", "blank"],
    &["position", "place", "location", "spot", "offset"],
    &["occurrence", "instance", "appearance"],
    &["before", "preceding", "prior"],
    &["after", "following", "behind"],
    &["uppercase", "capitalize", "capital"],
    &["lowercase", "small"],
    &["function", "routine", "procedure"],
    &["method", "memberfunction"],
    &["class", "record"],
    &["variable", "var"],
    &["argument", "arg", "operand"],
    &["parameter", "param"],
    &["declare", "define", "declaration", "definition"],
    &["call", "invoke", "invocation"],
    &["return", "yield"],
    &["expression", "expr"],
    &["statement", "stmt"],
    &["constructor", "ctor"],
    &["destructor", "dtor"],
    &["operator", "op"],
    &["literal", "constant", "value"],
    &["pointer", "ptr"],
    &["reference", "ref"],
    &["type", "kind"],
    &["field", "member", "attribute"],
    &["name", "identifier", "named", "called"],
    &["loop", "iteration", "iterate"],
    &["condition", "conditional", "predicate"],
    &["binary", "infix"],
    &["unary", "prefix"],
    &["count", "tally"],
    &["join", "merge", "concatenate", "combine"],
    &["split", "divide", "separate"],
    &["trim", "strip"],
    &["comment", "annotation"],
    &["float", "floating", "double", "real"],
];

impl Default for SynonymLexicon {
    fn default() -> Self {
        SynonymLexicon::from_groups(DEFAULT_GROUPS.iter().map(|g| g.iter().copied()))
    }
}

impl SynonymLexicon {
    /// Builds a lexicon with the built-in groups.
    pub fn new() -> SynonymLexicon {
        SynonymLexicon::default()
    }

    /// Builds a lexicon from explicit groups. Words are stemmed; a word may
    /// appear in only one group (later occurrences are ignored).
    pub fn from_groups<'a, I, G>(groups: I) -> SynonymLexicon
    where
        I: IntoIterator<Item = G>,
        G: IntoIterator<Item = &'a str>,
    {
        let mut lex = SynonymLexicon {
            group_of: BTreeMap::new(),
            groups: Vec::new(),
        };
        for group in groups {
            let id = lex.groups.len();
            let mut members = Vec::new();
            for word in group {
                let s = stem(word);
                if let std::collections::btree_map::Entry::Vacant(e) = lex.group_of.entry(s.clone())
                {
                    e.insert(id);
                    members.push(s);
                }
            }
            lex.groups.push(members);
        }
        lex
    }

    /// Extends the lexicon with an additional group (e.g. domain-specific
    /// vocabulary contributed by a DSL author).
    pub fn add_group<'a, G>(&mut self, group: G)
    where
        G: IntoIterator<Item = &'a str>,
    {
        let id = self.groups.len();
        let mut members = Vec::new();
        for word in group {
            let s = stem(word);
            if let std::collections::btree_map::Entry::Vacant(e) = self.group_of.entry(s.clone()) {
                e.insert(id);
                members.push(s);
            }
        }
        self.groups.push(members);
    }

    /// Whether two words (any inflection) are synonymous: equal stems or
    /// members of the same group.
    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        let sa = stem(a);
        let sb = stem(b);
        if sa == sb {
            return true;
        }
        match (self.group_of.get(&sa), self.group_of.get(&sb)) {
            (Some(ga), Some(gb)) => ga == gb,
            _ => false,
        }
    }

    /// All stems synonymous with `word`, including its own stem.
    pub fn expand(&self, word: &str) -> Vec<String> {
        let s = stem(word);
        let mut result = vec![s.clone()];
        if let Some(&g) = self.group_of.get(&s) {
            for member in &self.groups[g] {
                if *member != s {
                    result.push(member.clone());
                }
            }
        }
        result
    }

    /// Number of synonym groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_groups_cover_domain_verbs() {
        let lex = SynonymLexicon::new();
        assert!(lex.are_synonyms("insert", "append"));
        assert!(lex.are_synonyms("appended", "inserting"));
        assert!(lex.are_synonyms("delete", "remove"));
        assert!(!lex.are_synonyms("insert", "delete"));
    }

    #[test]
    fn same_stem_is_synonym_without_group() {
        let lex = SynonymLexicon::new();
        assert!(lex.are_synonyms("zorp", "zorps"));
    }

    #[test]
    fn expand_includes_self_first() {
        let lex = SynonymLexicon::new();
        let ex = lex.expand("lines");
        assert_eq!(ex[0], "line");
        assert!(ex.contains(&"row".to_string()));
    }

    #[test]
    fn custom_group_extension() {
        let mut lex = SynonymLexicon::new();
        assert!(!lex.are_synonyms("frobnicate", "tweak"));
        lex.add_group(["frobnicate", "tweak"]);
        assert!(lex.are_synonyms("frobnicate", "tweak"));
    }

    #[test]
    fn word_keeps_first_group_membership() {
        let mut lex = SynonymLexicon::new();
        let before = lex.expand("insert");
        lex.add_group(["insert", "unrelated"]);
        // "insert" stays in its original group.
        assert_eq!(lex.expand("insert"), before);
        // "unrelated" joined the new (now singleton-with-insert-dropped)
        // group and is not a synonym of insert.
        assert!(!lex.are_synonyms("insert", "unrelated"));
    }
}
