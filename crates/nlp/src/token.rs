//! Tokenization of natural-language queries.
//!
//! The tokenizer is literal-aware: quoted spans (`":"`, `'foo'`) become
//! single [`TokenKind::Literal`] tokens whose unquoted text is preserved —
//! the synthesizer later fills DSL literal slots (e.g. `STRING(:)`,
//! `hasName("PI")`) from them in order of appearance.

/// The kind of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// An alphabetic word (possibly with internal hyphens).
    Word,
    /// A number written with digits (`14`, `3.5`).
    Number,
    /// A quoted string literal; [`Token::text`] holds the unquoted content.
    Literal,
    /// Punctuation (comma, period, parentheses…).
    Punct,
}

/// A single token of a query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// Token text. For [`TokenKind::Literal`] this is the content without
    /// the surrounding quotes.
    pub text: String,
    /// The token's kind.
    pub kind: TokenKind,
    /// Byte offset of the token start in the original query.
    pub offset: usize,
}

impl Token {
    /// The lower-cased text, the form used for lexicon lookups.
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }
}

/// Tokenizes a query.
///
/// Splitting rules:
/// * double- or single-quoted spans become one [`TokenKind::Literal`] token
///   (unterminated quotes fall back to per-character handling);
/// * runs of digits (with optional one `.`) become [`TokenKind::Number`];
/// * runs of alphabetic characters, `-` and `_` become [`TokenKind::Word`];
/// * every other non-space character is a [`TokenKind::Punct`] token.
///
/// # Example
///
/// ```rust
/// use nlquery_nlp::{tokenize, TokenKind};
///
/// let toks = tokenize("append \":\" in every line");
/// assert_eq!(toks.len(), 5);
/// assert_eq!(toks[1].kind, TokenKind::Literal);
/// assert_eq!(toks[1].text, ":");
/// ```
pub fn tokenize(query: &str) -> Vec<Token> {
    let bytes: Vec<char> = query.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    // Track byte offsets alongside char indices.
    let mut byte_offsets: Vec<usize> = Vec::with_capacity(bytes.len() + 1);
    {
        let mut off = 0;
        for c in &bytes {
            byte_offsets.push(off);
            off += c.len_utf8();
        }
        byte_offsets.push(off);
    }

    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        if c == '"' || c == '\'' {
            // A quoted literal. An apostrophe inside a word ("line's") is
            // not an opening quote.
            let is_intra_word_apostrophe = c == '\''
                && start > 0
                && bytes[start - 1].is_alphanumeric()
                && start + 1 < bytes.len()
                && bytes[start + 1].is_alphanumeric();
            if !is_intra_word_apostrophe {
                if let Some(end) = (start + 1..bytes.len()).find(|&j| bytes[j] == c) {
                    let content: String = bytes[start + 1..end].iter().collect();
                    tokens.push(Token {
                        text: content,
                        kind: TokenKind::Literal,
                        offset: byte_offsets[start],
                    });
                    i = end + 1;
                    continue;
                }
            }
            // Unterminated quote or apostrophe: treat as punctuation.
            tokens.push(Token {
                text: c.to_string(),
                kind: TokenKind::Punct,
                offset: byte_offsets[start],
            });
            i += 1;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = start;
            let mut seen_dot = false;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || (bytes[j] == '.' && !seen_dot)) {
                if bytes[j] == '.' {
                    // Only treat `.` as part of a number when a digit
                    // follows ("3.5", not "14.").
                    if j + 1 >= bytes.len() || !bytes[j + 1].is_ascii_digit() {
                        break;
                    }
                    seen_dot = true;
                }
                j += 1;
            }
            tokens.push(Token {
                text: bytes[start..j].iter().collect(),
                kind: TokenKind::Number,
                offset: byte_offsets[start],
            });
            i = j;
            continue;
        }
        if c.is_alphabetic() {
            let mut j = start;
            while j < bytes.len()
                && (bytes[j].is_alphanumeric()
                    || bytes[j] == '-'
                    || bytes[j] == '_'
                    || (bytes[j] == '\'' && j + 1 < bytes.len() && bytes[j + 1].is_alphanumeric()))
            {
                j += 1;
            }
            tokens.push(Token {
                text: bytes[start..j].iter().collect(),
                kind: TokenKind::Word,
                offset: byte_offsets[start],
            });
            i = j;
            continue;
        }
        tokens.push(Token {
            text: c.to_string(),
            kind: TokenKind::Punct,
            offset: byte_offsets[start],
        });
        i += 1;
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(q: &str) -> Vec<TokenKind> {
        tokenize(q).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_and_literal() {
        let toks = tokenize("append \":\" in every line containing numerals");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "append",
                ":",
                "in",
                "every",
                "line",
                "containing",
                "numerals"
            ]
        );
        assert_eq!(toks[1].kind, TokenKind::Literal);
    }

    #[test]
    fn single_quoted_literal() {
        let toks = tokenize("add '-' before each word");
        assert_eq!(toks[1].kind, TokenKind::Literal);
        assert_eq!(toks[1].text, "-");
    }

    #[test]
    fn numbers() {
        let toks = tokenize("add \":\" after 14 characters");
        assert_eq!(toks[3].kind, TokenKind::Number);
        assert_eq!(toks[3].text, "14");
    }

    #[test]
    fn decimal_number_and_trailing_period() {
        let toks = tokenize("move 3.5 units.");
        assert_eq!(toks[1].text, "3.5");
        assert_eq!(toks[1].kind, TokenKind::Number);
        assert_eq!(toks.last().unwrap().kind, TokenKind::Punct);
    }

    #[test]
    fn punctuation_split() {
        assert_eq!(
            kinds("delete, then print"),
            vec![
                TokenKind::Word,
                TokenKind::Punct,
                TokenKind::Word,
                TokenKind::Word
            ]
        );
    }

    #[test]
    fn intra_word_apostrophe_stays_in_word() {
        let toks = tokenize("delete the line's end");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["delete", "the", "line's", "end"]);
    }

    #[test]
    fn unterminated_quote_is_punct() {
        let toks = tokenize("say \"hello");
        assert_eq!(toks[1].kind, TokenKind::Punct);
        assert_eq!(toks[2].kind, TokenKind::Word);
    }

    #[test]
    fn empty_literal_preserved() {
        let toks = tokenize("replace \"\" everywhere");
        assert_eq!(toks[1].kind, TokenKind::Literal);
        assert_eq!(toks[1].text, "");
    }

    #[test]
    fn offsets_are_byte_positions() {
        let toks = tokenize("ab \"x\" cd");
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
        assert_eq!(toks[2].offset, 7);
    }

    #[test]
    fn empty_query_yields_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t ").is_empty());
    }

    #[test]
    fn hyphenated_word_is_one_token() {
        let toks = tokenize("non-empty lines");
        assert_eq!(toks[0].text, "non-empty");
        assert_eq!(toks.len(), 2);
    }
}
