//! The rule-based dependency parser.
//!
//! A single left-to-right scan with pending-attachment state, tuned for the
//! imperative programming queries of the paper's two domains. It covers:
//!
//! * imperative roots ("**insert** a string …");
//! * direct objects and literal objects ("insert → string", `named → "PI"`);
//! * prepositional attachment with per-preposition anchor rules
//!   ("at the start" anchors to the verb, "of each line" to the noun);
//! * gerund and relative clauses ("line **containing** numerals",
//!   "expressions **which declare** …");
//! * subordinate "if/when" clauses attached as `advcl`;
//! * verb and noun coordination ("… **and** print …");
//! * copulas and "whose" possessives ("whose argument **is** a float
//!   literal").
//!
//! The parser is intentionally *not* perfect: like the real NLU tooling the
//! paper builds on, it errs on some constructions, which downstream shows up
//! as orphan nodes — exactly the situation the paper's orphan-node
//! relocation optimization addresses.

use crate::dep::{DepEdge, DepGraph, DepNode, DepRel};
use crate::pos::{Pos, PosTagger};
use crate::token::{tokenize, Token, TokenKind};

/// Rule-based dependency parser for programming queries.
///
/// # Example
///
/// ```rust
/// use nlquery_nlp::DepParser;
///
/// let g = DepParser::new().parse("append \":\" in every line containing numerals");
/// // The gerund "containing" modifies "line".
/// let line = g.nodes().iter().position(|n| n.word == "line").unwrap();
/// let acl: Vec<&str> = g.children(line).map(|(_, n)| n.word.as_str()).collect();
/// assert!(acl.contains(&"containing"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DepParser {
    tagger: PosTagger,
}

impl DepParser {
    /// Creates a parser with the default tagger.
    pub fn new() -> DepParser {
        DepParser::default()
    }

    /// Parses a query into its dependency graph.
    pub fn parse(&self, query: &str) -> DepGraph {
        let tokens = tokenize(query);
        let tags = self.tagger.tag(&tokens);
        self.parse_tagged(&tokens, &tags)
    }

    /// Parses pre-tokenized, pre-tagged input (useful for tests that need
    /// to force a tagging).
    pub fn parse_tagged(&self, tokens: &[Token], tags: &[Pos]) -> DepGraph {
        assert_eq!(tokens.len(), tags.len(), "one tag per token");
        // Build nodes for non-punctuation tokens, remembering the mapping.
        let mut nodes: Vec<DepNode> = Vec::new();
        let mut node_of_token: Vec<Option<usize>> = vec![None; tokens.len()];
        for (t_idx, (tok, &pos)) in tokens.iter().zip(tags).enumerate() {
            if pos == Pos::Punct {
                continue;
            }
            let idx = nodes.len();
            node_of_token[t_idx] = Some(idx);
            nodes.push(DepNode {
                index: idx,
                word: tok.text.clone(),
                lemma: tok.lower(),
                pos,
                literal: match tok.kind {
                    TokenKind::Literal | TokenKind::Number => Some(tok.text.clone()),
                    _ => None,
                },
            });
        }

        let mut st = ScanState::new(nodes.len());
        for (t_idx, tok) in tokens.iter().enumerate() {
            let pos = tags[t_idx];
            if pos == Pos::Punct {
                st.adjacent_noun = None;
                if tok.text == "," {
                    st.clause_break();
                }
                continue;
            }
            let idx = node_of_token[t_idx].expect("non-punct token has a node");
            st.step(idx, &nodes[idx], pos);
        }
        st.finish();

        DepGraph::new(nodes, st.edges, st.root)
    }
}

/// Which preposition anchors where.
fn prep_prefers_noun(prep: &str) -> bool {
    matches!(prep, "of" | "with" | "without")
}

struct ScanState {
    edges: Vec<DepEdge>,
    root: Option<usize>,
    /// The verb currently receiving objects.
    current_verb: Option<usize>,
    /// Most recent noun (for compounds, gerund attachment, "of"-anchors).
    last_noun: Option<usize>,
    /// Most recent content word of any category (anchor heuristics).
    last_content: Option<(usize, Pos)>,
    /// The immediately preceding token, when it was a noun — true
    /// adjacency, reset by *any* other token. Drives compound-noun runs.
    adjacent_noun: Option<usize>,
    /// Pending preposition: (anchor node, preposition lemma).
    pending_prep: Option<(usize, String)>,
    /// Pending determiner/adjective/number modifiers for the next noun.
    pending_mods: Vec<(usize, DepRel)>,
    /// Subject stashed before its clause verb appears.
    pending_subj: Option<usize>,
    /// In a subordinate ("if"/"when") clause whose verb should attach to
    /// the main verb as advcl.
    subordinate: bool,
    /// Subordinate clause verb awaiting the main verb.
    pending_advcl: Option<usize>,
    /// A wh-word was seen; the next verb is a relative-clause verb.
    pending_wh: bool,
    /// A "whose" was seen; the next noun attaches to last_noun.
    pending_whose: bool,
    /// A copula ("is") was seen after `Some(noun)`.
    pending_copula: Option<usize>,
    /// A coordination ("and"/"or"/"then") is pending.
    pending_conj: bool,
    /// Verbs that already received an object.
    has_obj: Vec<bool>,
}

impl ScanState {
    fn new(n: usize) -> ScanState {
        ScanState {
            edges: Vec::new(),
            root: None,
            current_verb: None,
            last_noun: None,
            last_content: None,
            adjacent_noun: None,
            pending_prep: None,
            pending_mods: Vec::new(),
            pending_subj: None,
            subordinate: false,
            pending_advcl: None,
            pending_wh: false,
            pending_whose: false,
            pending_copula: None,
            pending_conj: false,
            has_obj: vec![false; n],
        }
    }

    fn attach(&mut self, gov: usize, dep: usize, rel: DepRel) {
        if gov != dep && !self.edges.iter().any(|e| e.dep == dep) {
            self.edges.push(DepEdge { gov, dep, rel });
        }
    }

    /// Re-parent: used when a compound head displaces its modifier.
    fn replace_dependent(&mut self, old_dep: usize, new_dep: usize) -> bool {
        if let Some(e) = self.edges.iter_mut().find(|e| e.dep == old_dep) {
            let gov = e.gov;
            let rel = e.rel.clone();
            if gov == new_dep {
                return false;
            }
            e.dep = new_dep;
            let _ = (gov, rel);
            true
        } else {
            false
        }
    }

    fn clause_break(&mut self) {
        self.pending_prep = None;
        self.pending_mods.clear();
        self.pending_wh = false;
        self.pending_whose = false;
        self.pending_copula = None;
        if self.subordinate {
            // End of a fronted subordinate clause: the main clause follows.
            self.subordinate = false;
            self.current_verb = None;
            self.last_noun = None;
        }
    }

    fn step(&mut self, idx: usize, node: &DepNode, pos: Pos) {
        match pos {
            Pos::Det => {
                // Determiners carry no synthesis semantics except
                // "every/each/all/any" which the pruner keeps via the noun;
                // record a det edge for realism.
                self.pending_mods.push((idx, DepRel::Amod));
            }
            Pos::Adj => self.pending_mods.push((idx, DepRel::Amod)),
            Pos::Adv => { /* ignored */ }
            Pos::Num => self.step_number(idx),
            Pos::Conj => match node.lemma.as_str() {
                "if" | "when" | "while" => {
                    self.subordinate = true;
                }
                "and" | "or" | "but" | "then" => {
                    self.pending_conj = true;
                }
                _ => {}
            },
            Pos::Wh => {
                if node.lemma == "whose" {
                    self.pending_whose = true;
                } else {
                    self.pending_wh = true;
                }
            }
            Pos::Aux => {
                self.pending_copula = self.last_noun;
            }
            Pos::Prep => {
                let anchor = self.prep_anchor(&node.lemma);
                if let Some(anchor) = anchor {
                    self.pending_prep = Some((anchor, node.lemma.clone()));
                }
            }
            Pos::Pron => { /* ignored */ }
            Pos::Verb => self.step_verb(idx, &node.lemma),
            Pos::Noun | Pos::Other => self.step_noun(idx),
            Pos::Literal => self.step_literal(idx),
            Pos::Punct => unreachable!("punctuation filtered by caller"),
        }
        if pos.is_content() {
            self.last_content = Some((idx, pos));
        }
        self.adjacent_noun = match pos {
            Pos::Noun | Pos::Other => Some(idx),
            _ => None,
        };
    }

    fn prep_anchor(&self, prep: &str) -> Option<usize> {
        if prep_prefers_noun(prep) {
            // "of"/"with(out)" prefer the adjacent noun, falling back to
            // the verb — except when the immediately preceding content word
            // is the clause verb ("starts with").
            if let Some((idx, Pos::Verb)) = self.last_content {
                return Some(idx);
            }
            return self.last_noun.or(self.current_verb);
        }
        // Locative prepositions anchor to the verb ("insert … at the
        // start"), falling back to the last noun.
        self.current_verb.or(self.last_noun)
    }

    fn step_number(&mut self, idx: usize) {
        // A number modifies the following noun ("14 characters"); when no
        // noun follows it acts as a nominal itself ("move to 5"). Defer via
        // pending_mods; `finish` resolves the nominal case.
        self.pending_mods.push((idx, DepRel::NumMod));
    }

    fn step_verb(&mut self, idx: usize, lemma: &str) {
        // Gerunds/participles directly modify the preceding noun.
        let is_gerund_or_participle =
            (lemma.ends_with("ing") || lemma.ends_with("ed")) && self.last_noun.is_some();

        if self.root.is_none() && !self.subordinate {
            self.root = Some(idx);
            self.current_verb = Some(idx);
            if let Some(subj) = self.pending_subj.take() {
                self.attach(idx, subj, DepRel::Subj);
            }
            if let Some(sub) = self.pending_advcl.take() {
                self.attach(idx, sub, DepRel::Advcl);
            }
            return;
        }

        if self.subordinate && self.pending_advcl.is_none() {
            // Clause verb of a fronted "if/when" clause.
            if let Some(subj) = self.pending_subj.take() {
                self.attach(idx, subj, DepRel::Subj);
            }
            self.pending_advcl = Some(idx);
            self.current_verb = Some(idx);
            return;
        }

        if self.pending_wh {
            self.pending_wh = false;
            if let Some(noun) = self.last_noun {
                self.attach(noun, idx, DepRel::Acl);
            } else if let Some(root) = self.root {
                self.attach(root, idx, DepRel::Advcl);
            }
            self.current_verb = Some(idx);
            return;
        }

        if self.pending_conj {
            self.pending_conj = false;
            if let Some(root) = self.root {
                self.attach(root, idx, DepRel::Conj);
            }
            self.current_verb = Some(idx);
            self.last_noun = None;
            return;
        }

        if is_gerund_or_participle {
            let noun = self.last_noun.expect("checked above");
            self.attach(noun, idx, DepRel::Acl);
            self.current_verb = Some(idx);
            return;
        }

        // A bare verb after a noun ("a sentence starts …"): the noun is its
        // subject.
        if let Some(noun) = self.last_noun.take() {
            if self.parent_of(noun).is_none() || self.subordinate {
                self.attach(idx, noun, DepRel::Subj);
            } else {
                self.attach(noun, idx, DepRel::Acl);
            }
            if self.root.is_none() && !self.subordinate {
                self.root = Some(idx);
            }
            self.current_verb = Some(idx);
            return;
        }

        // Fallback: treat as coordinated with the root.
        if let Some(root) = self.root {
            self.attach(root, idx, DepRel::Conj);
        } else {
            self.root = Some(idx);
        }
        self.current_verb = Some(idx);
    }

    fn step_noun(&mut self, idx: usize) {
        // Attach pending modifiers (det/adj/num) below this noun.
        let mods = std::mem::take(&mut self.pending_mods);
        for (m, rel) in mods {
            self.attach(idx, m, rel);
        }

        // Compound run: an immediately preceding noun is displaced by this
        // head ("constructor expressions" → expressions -compound->
        // constructor, with expressions taking over constructor's place).
        if let Some(prev) = self.adjacent_noun {
            let had_parent = self.replace_dependent(prev, idx);
            self.attach(idx, prev, DepRel::Compound);
            self.last_noun = Some(idx);
            if !had_parent && self.pending_subj == Some(prev) {
                self.pending_subj = Some(idx);
            }
            return;
        }

        if self.pending_whose {
            self.pending_whose = false;
            if let Some(noun) = self.last_noun {
                self.attach(noun, idx, DepRel::Nmod("whose".to_string()));
                self.last_noun = Some(idx);
                return;
            }
        }

        if let Some(subject) = self.pending_copula.take() {
            // "argument is a float literal" → argument -obj-> literal.
            self.attach(subject, idx, DepRel::Obj);
            self.last_noun = Some(idx);
            return;
        }

        if let Some((anchor, prep)) = self.pending_prep.take() {
            self.attach(anchor, idx, DepRel::Nmod(prep));
            self.last_noun = Some(idx);
            return;
        }

        if self.pending_conj {
            self.pending_conj = false;
            if let Some(noun) = self.last_noun {
                self.attach(noun, idx, DepRel::Conj);
                return;
            }
        }

        if let Some(verb) = self.current_verb {
            if !self.has_obj[verb] {
                self.has_obj[verb] = true;
                self.attach(verb, idx, DepRel::Obj);
                self.last_noun = Some(idx);
                return;
            }
        }

        if self.root.is_none() && self.current_verb.is_none() {
            // Noun before its clause verb: subject-in-waiting.
            if self.pending_subj.is_none() {
                self.pending_subj = Some(idx);
                self.last_noun = Some(idx);
                return;
            }
        }

        // Fallback: a second bare noun after the verb's object chains as a
        // modifier of the previous noun.
        if let Some(noun) = self.last_noun {
            self.attach(noun, idx, DepRel::Compound);
        }
        self.last_noun = Some(idx);
    }

    fn step_literal(&mut self, idx: usize) {
        if let Some((anchor, prep)) = self.pending_prep.take() {
            self.attach(anchor, idx, DepRel::Nmod(prep));
            return;
        }
        if let Some((prev, prev_pos)) = self.last_content {
            if prev_pos == Pos::Verb {
                // `named "PI"`, `insert ":"`.
                self.attach(prev, idx, DepRel::Lit);
                if let Some(v) = self.current_verb {
                    if v == prev {
                        self.has_obj[v] = true;
                    }
                }
                return;
            }
        }
        if let Some(verb) = self.current_verb {
            if !self.has_obj[verb] {
                self.has_obj[verb] = true;
                self.attach(verb, idx, DepRel::Lit);
                return;
            }
        }
        if let Some(noun) = self.last_noun {
            self.attach(noun, idx, DepRel::Lit);
        }
        // Otherwise: literal with nothing before it, leave unattached (orphan).
    }

    fn parent_of(&self, idx: usize) -> Option<usize> {
        self.edges.iter().find(|e| e.dep == idx).map(|e| e.gov)
    }

    fn finish(&mut self) {
        // Unconsumed numeric modifiers become nominal attachments.
        let mods = std::mem::take(&mut self.pending_mods);
        for (m, rel) in mods {
            if rel == DepRel::NumMod {
                if let Some((anchor, prep)) = self.pending_prep.take() {
                    self.attach(anchor, m, DepRel::Nmod(prep));
                } else if let Some(verb) = self.current_verb {
                    self.attach(verb, m, DepRel::Obj);
                }
            }
        }
        // A stashed subject with no verb: attach to root if any.
        if let (Some(subj), Some(root)) = (self.pending_subj.take(), self.root) {
            self.attach(root, subj, DepRel::Subj);
        }
        // A subordinate verb that never met a main verb becomes the root.
        if self.root.is_none() {
            self.root = self.pending_advcl.take();
        } else if let Some(sub) = self.pending_advcl.take() {
            let root = self.root.expect("checked");
            self.attach(root, sub, DepRel::Advcl);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(q: &str) -> DepGraph {
        DepParser::new().parse(q)
    }

    fn edge_words(g: &DepGraph) -> Vec<(String, String, String)> {
        g.edges()
            .iter()
            .map(|e| {
                (
                    g.node(e.gov).word.clone(),
                    e.rel.label(),
                    g.node(e.dep).word.clone(),
                )
            })
            .collect()
    }

    fn has_edge(g: &DepGraph, gov: &str, rel: &str, dep: &str) -> bool {
        edge_words(g)
            .iter()
            .any(|(gw, r, dw)| gw == gov && r == rel && dw == dep)
    }

    #[test]
    fn paper_running_example() {
        // Figure 3: "insert a string at the start of each line".
        let g = parse("insert a string at the start of each line");
        assert_eq!(g.node(g.root().unwrap()).word, "insert");
        assert!(has_edge(&g, "insert", "obj", "string"), "{}", g.render());
        assert!(has_edge(&g, "insert", "nmod:at", "start"), "{}", g.render());
        assert!(has_edge(&g, "start", "nmod:of", "line"), "{}", g.render());
    }

    #[test]
    fn gerund_clause() {
        // Table I example 1: 'Append ":" in every line containing numerals.'
        let g = parse("append \":\" in every line containing numerals");
        assert!(has_edge(&g, "append", "lit", ":"), "{}", g.render());
        assert!(has_edge(&g, "append", "nmod:in", "line"), "{}", g.render());
        assert!(has_edge(&g, "line", "acl", "containing"), "{}", g.render());
        assert!(
            has_edge(&g, "containing", "obj", "numerals"),
            "{}",
            g.render()
        );
    }

    #[test]
    fn fronted_conditional_clause() {
        // Table I example 2: 'if a sentence starts with "-", add ":" after
        // 14 characters'.
        let g = parse("if a sentence starts with \"-\", add \":\" after 14 characters");
        assert_eq!(g.node(g.root().unwrap()).word, "add");
        assert!(has_edge(&g, "add", "advcl", "starts"), "{}", g.render());
        assert!(has_edge(&g, "starts", "subj", "sentence"), "{}", g.render());
        assert!(has_edge(&g, "starts", "nmod:with", "-"), "{}", g.render());
        assert!(has_edge(&g, "add", "lit", ":"), "{}", g.render());
        assert!(
            has_edge(&g, "add", "nmod:after", "characters"),
            "{}",
            g.render()
        );
        assert!(has_edge(&g, "characters", "nummod", "14"), "{}", g.render());
    }

    #[test]
    fn relative_clause_with_named_literal() {
        // Table I example 5: 'find cxx constructor expressions which declare
        // a cxx method named "PI"'.
        let g = parse("find cxx constructor expressions which declare a cxx method named \"PI\"");
        assert_eq!(g.node(g.root().unwrap()).word, "find");
        assert!(has_edge(&g, "find", "obj", "expressions"), "{}", g.render());
        assert!(
            has_edge(&g, "expressions", "compound", "constructor"),
            "{}",
            g.render()
        );
        assert!(
            has_edge(&g, "expressions", "acl", "declare"),
            "{}",
            g.render()
        );
        assert!(has_edge(&g, "declare", "obj", "method"), "{}", g.render());
        assert!(has_edge(&g, "method", "acl", "named"), "{}", g.render());
        assert!(has_edge(&g, "named", "lit", "PI"), "{}", g.render());
    }

    #[test]
    fn whose_copula() {
        // Table I example 6: 'search for call expressions whose argument is
        // a float literal'.
        let g = parse("search for call expressions whose argument is a float literal");
        assert!(
            has_edge(&g, "expressions", "nmod:whose", "argument"),
            "{}",
            g.render()
        );
        assert!(has_edge(&g, "argument", "obj", "literal"), "{}", g.render());
        // "float" hangs off "literal" — as amod or compound depending on
        // its tagging; both merge into the head during pruning.
        assert!(
            has_edge(&g, "literal", "amod", "float")
                || has_edge(&g, "literal", "compound", "float"),
            "{}",
            g.render()
        );
    }

    #[test]
    fn verb_coordination() {
        let g = parse("delete the first word and print the line");
        assert!(has_edge(&g, "delete", "conj", "print"), "{}", g.render());
        assert!(has_edge(&g, "delete", "obj", "word"), "{}", g.render());
        assert!(has_edge(&g, "print", "obj", "line"), "{}", g.render());
    }

    #[test]
    fn amod_attachment() {
        let g = parse("delete all empty lines");
        assert!(has_edge(&g, "lines", "amod", "empty"), "{}", g.render());
        assert!(has_edge(&g, "delete", "obj", "lines"), "{}", g.render());
    }

    #[test]
    fn starts_with_anchors_to_verb() {
        let g = parse("delete every line which starts with \"#\"");
        assert!(has_edge(&g, "line", "acl", "starts"), "{}", g.render());
        assert!(has_edge(&g, "starts", "nmod:with", "#"), "{}", g.render());
    }

    #[test]
    fn empty_query() {
        let g = parse("");
        assert!(g.is_empty());
        assert_eq!(g.root(), None);
    }

    #[test]
    fn single_word() {
        let g = parse("undo");
        assert_eq!(g.len(), 1);
        // Unknown word defaults nominal; no verb → no root edges.
        assert!(g.edges().is_empty());
    }

    #[test]
    fn every_node_has_at_most_one_parent() {
        for q in [
            "insert a string at the start of each line",
            "append \":\" in every line containing numerals",
            "if a sentence starts with \"-\", add \":\" after 14 characters",
            "find cxx constructor expressions which declare a cxx method named \"PI\"",
            "search for call expressions whose argument is a float literal",
            "delete the first word and print the line",
        ] {
            let g = parse(q);
            for i in 0..g.len() {
                let parents = g.edges().iter().filter(|e| e.dep == i).count();
                assert!(
                    parents <= 1,
                    "node {} of {:?} has {} parents",
                    i,
                    q,
                    parents
                );
            }
        }
    }

    #[test]
    fn no_self_edges() {
        for q in [
            "insert a string at the start of each line",
            "list all binary operators named \"*\"",
        ] {
            let g = parse(q);
            assert!(g.edges().iter().all(|e| e.gov != e.dep), "{}", g.render());
        }
    }
}
