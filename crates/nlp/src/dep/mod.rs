//! Query dependency graphs and the rule-based dependency parser.
//!
//! A *query dependency graph* (paper §II, step 1) has one node per query
//! word and directed edges from a *governor* to its *dependent*, labelled
//! with a *dependency type*. For "insert a string at the start of each
//! line", the edge `insert → string` is labelled `obj`.

mod parser;

pub use parser::DepParser;

use std::collections::VecDeque;
use std::fmt;

use crate::Pos;

/// A dependency relation label.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DepRel {
    /// The clause root (no governor).
    Root,
    /// Direct object: `insert → string`.
    Obj,
    /// Nominal subject: `starts → sentence`.
    Subj,
    /// Nominal modifier through a preposition; carries the preposition
    /// ("at", "of", …): `insert → start (nmod:at)`.
    Nmod(String),
    /// Adjectival modifier: `line → empty`.
    Amod,
    /// Clausal modifier of a noun (gerunds, relative clauses):
    /// `line → containing`.
    Acl,
    /// Adverbial clause ("if a sentence starts with …" modifying the main
    /// verb).
    Advcl,
    /// Coordinated conjunct: `insert → print` in "insert … and print …".
    Conj,
    /// Compound noun: `expression → constructor` in
    /// "constructor expressions".
    Compound,
    /// Numeric modifier: `characters → 14`.
    NumMod,
    /// A literal attached to a word: `named → "PI"`.
    Lit,
}

impl DepRel {
    /// Short label used in renderings ("obj", "nmod:at", …).
    pub fn label(&self) -> String {
        match self {
            DepRel::Root => "root".to_string(),
            DepRel::Obj => "obj".to_string(),
            DepRel::Subj => "subj".to_string(),
            DepRel::Nmod(p) => format!("nmod:{p}"),
            DepRel::Amod => "amod".to_string(),
            DepRel::Acl => "acl".to_string(),
            DepRel::Advcl => "advcl".to_string(),
            DepRel::Conj => "conj".to_string(),
            DepRel::Compound => "compound".to_string(),
            DepRel::NumMod => "nummod".to_string(),
            DepRel::Lit => "lit".to_string(),
        }
    }
}

impl fmt::Display for DepRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A node of the query dependency graph: one query word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepNode {
    /// Position of the word in the (non-punctuation) token sequence.
    pub index: usize,
    /// The surface word as written.
    pub word: String,
    /// Lower-cased form used for matching.
    pub lemma: String,
    /// Part of speech.
    pub pos: Pos,
    /// For literal/number tokens, the literal content to fill DSL slots.
    pub literal: Option<String>,
}

/// A governor → dependent edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEdge {
    /// Node index of the governor.
    pub gov: usize,
    /// Node index of the dependent.
    pub dep: usize,
    /// The dependency type.
    pub rel: DepRel,
}

/// A query dependency graph.
///
/// Shape: a tree (or forest, when parsing leaves stray subtrees) over the
/// word nodes, rooted at the main verb.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DepGraph {
    nodes: Vec<DepNode>,
    edges: Vec<DepEdge>,
    root: Option<usize>,
}

impl DepGraph {
    /// Creates a graph from parts. `edges` must reference valid node
    /// indices.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node index out of range.
    pub fn new(nodes: Vec<DepNode>, edges: Vec<DepEdge>, root: Option<usize>) -> DepGraph {
        for e in &edges {
            assert!(
                e.gov < nodes.len() && e.dep < nodes.len(),
                "edge out of range"
            );
        }
        if let Some(r) = root {
            assert!(r < nodes.len(), "root out of range");
        }
        DepGraph { nodes, edges, root }
    }

    /// The word nodes in sentence order.
    pub fn nodes(&self) -> &[DepNode] {
        &self.nodes
    }

    /// The dependency edges.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// The root node index (main verb), if any node exists.
    pub fn root(&self) -> Option<usize> {
        self.root
    }

    /// The node at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node(&self, index: usize) -> &DepNode {
        &self.nodes[index]
    }

    /// Number of word nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Children (dependents) of `index` with their relations.
    pub fn children(&self, index: usize) -> impl Iterator<Item = (&DepEdge, &DepNode)> {
        self.edges
            .iter()
            .filter(move |e| e.gov == index)
            .map(move |e| (e, &self.nodes[e.dep]))
    }

    /// The governor of `index`, if any.
    pub fn parent(&self, index: usize) -> Option<(&DepEdge, &DepNode)> {
        self.edges
            .iter()
            .find(|e| e.dep == index)
            .map(|e| (e, &self.nodes[e.gov]))
    }

    /// Nodes with no governor and not the root — stray subtree heads.
    pub fn unattached(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| Some(i) != self.root && self.parent(i).is_none())
            .collect()
    }

    /// Breadth-first levels from the root: `levels()[0]` is the root,
    /// `levels()[1]` its dependents, etc. Unattached nodes are appended to
    /// level 1 (mirroring HISyn's treatment of strays as root children).
    pub fn levels(&self) -> Vec<Vec<usize>> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        let mut depth: Vec<Option<usize>> = vec![None; self.nodes.len()];
        depth[root] = Some(0);
        let mut queue = VecDeque::from([root]);
        let mut max_depth = 0;
        while let Some(cur) = queue.pop_front() {
            let d = depth[cur].expect("queued nodes have depth");
            for e in self.edges.iter().filter(|e| e.gov == cur) {
                if depth[e.dep].is_none() {
                    depth[e.dep] = Some(d + 1);
                    max_depth = max_depth.max(d + 1);
                    queue.push_back(e.dep);
                }
            }
        }
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); max_depth + 1];
        for (i, d) in depth.iter().enumerate() {
            if let Some(d) = d {
                levels[*d].push(i);
            }
        }
        for i in self.unattached() {
            if levels.len() < 2 {
                levels.resize(2, Vec::new());
            }
            levels[1].push(i);
        }
        levels
    }

    /// Renders the graph as one `gov -rel-> dep` line per edge, in edge
    /// order — convenient in tests and error messages.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(r) = self.root {
            out.push_str(&format!("root: {}\n", self.nodes[r].word));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "{} -{}-> {}\n",
                self.nodes[e.gov].word, e.rel, self.nodes[e.dep].word
            ));
        }
        out
    }

    /// Removes the nodes for which `keep` returns `false`, splicing their
    /// dependents up to their governor. Used by query-graph pruning
    /// (step 2).
    ///
    /// Edges from a removed node's governor to its dependents inherit the
    /// dependents' relations. The root is never removed.
    pub fn retain<F>(&self, keep: F) -> DepGraph
    where
        F: Fn(&DepNode) -> bool,
    {
        let keep_flags: Vec<bool> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| Some(i) == self.root || keep(n))
            .collect();

        // Map every node to its nearest kept ancestor-or-self.
        let lift = |mut i: usize| -> Option<usize> {
            loop {
                if keep_flags[i] {
                    return Some(i);
                }
                match self.edges.iter().find(|e| e.dep == i) {
                    Some(e) => i = e.gov,
                    None => return None,
                }
            }
        };

        let mut remap: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut nodes = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if keep_flags[i] {
                remap[i] = Some(nodes.len());
                let mut n = node.clone();
                n.index = nodes.len();
                nodes.push(n);
            }
        }
        let mut edges = Vec::new();
        for e in &self.edges {
            if !keep_flags[e.dep] {
                continue;
            }
            if let Some(gov) = lift(e.gov) {
                let (Some(g), Some(d)) = (remap[gov], remap[e.dep]) else {
                    continue;
                };
                if g != d {
                    edges.push(DepEdge {
                        gov: g,
                        dep: d,
                        rel: e.rel.clone(),
                    });
                }
            }
        }
        let root = self.root.and_then(|r| remap[r]);
        DepGraph { nodes, edges, root }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word(i: usize, w: &str, pos: Pos) -> DepNode {
        DepNode {
            index: i,
            word: w.to_string(),
            lemma: w.to_lowercase(),
            pos,
            literal: None,
        }
    }

    fn chain_graph() -> DepGraph {
        // insert -> string ; insert -> start ; start -> line
        DepGraph::new(
            vec![
                word(0, "insert", Pos::Verb),
                word(1, "string", Pos::Noun),
                word(2, "start", Pos::Noun),
                word(3, "line", Pos::Noun),
            ],
            vec![
                DepEdge {
                    gov: 0,
                    dep: 1,
                    rel: DepRel::Obj,
                },
                DepEdge {
                    gov: 0,
                    dep: 2,
                    rel: DepRel::Nmod("at".into()),
                },
                DepEdge {
                    gov: 2,
                    dep: 3,
                    rel: DepRel::Nmod("of".into()),
                },
            ],
            Some(0),
        )
    }

    #[test]
    fn levels_are_bfs_depths() {
        let g = chain_graph();
        let levels = g.levels();
        assert_eq!(levels, vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn parent_and_children() {
        let g = chain_graph();
        assert_eq!(g.parent(3).unwrap().1.word, "start");
        assert!(g.parent(0).is_none());
        let kids: Vec<&str> = g.children(0).map(|(_, n)| n.word.as_str()).collect();
        assert_eq!(kids, vec!["string", "start"]);
    }

    #[test]
    fn unattached_nodes_listed() {
        let mut g = chain_graph();
        g.nodes.push(word(4, "stray", Pos::Noun));
        assert_eq!(g.unattached(), vec![4]);
        // And they land on level 1.
        assert!(g.levels()[1].contains(&4));
    }

    #[test]
    fn retain_splices_grandchildren() {
        let g = chain_graph();
        // Drop "start": "line" must become a child of "insert".
        let pruned = g.retain(|n| n.word != "start");
        assert_eq!(pruned.len(), 3);
        let insert = 0;
        let kids: Vec<&str> = pruned
            .children(insert)
            .map(|(_, n)| n.word.as_str())
            .collect();
        assert_eq!(kids, vec!["string", "line"]);
    }

    #[test]
    fn retain_never_drops_root() {
        let g = chain_graph();
        let pruned = g.retain(|_| false);
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned.node(pruned.root().unwrap()).word, "insert");
    }

    #[test]
    fn render_mentions_relations() {
        let g = chain_graph();
        let text = g.render();
        assert!(text.contains("insert -obj-> string"));
        assert!(text.contains("start -nmod:of-> line"));
    }

    #[test]
    #[should_panic(expected = "edge out of range")]
    fn new_validates_edges() {
        DepGraph::new(
            vec![word(0, "a", Pos::Noun)],
            vec![DepEdge {
                gov: 0,
                dep: 5,
                rel: DepRel::Obj,
            }],
            Some(0),
        );
    }
}
