//! Part-of-speech tagging.
//!
//! A two-pass tagger: pass one assigns tags from token kind, lexicon lookup
//! and suffix heuristics; pass two applies context rules (imperative first
//! word is a verb, a word after a determiner is nominal, verb/noun
//! ambiguities resolve by position, …).

use crate::lexicon;
use crate::token::{Token, TokenKind};

/// Part-of-speech categories used by the query dependency parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Pos {
    /// Verb (imperative, clause verb, gerund, participle).
    Verb,
    /// Noun.
    Noun,
    /// Adjective.
    Adj,
    /// Adverb.
    Adv,
    /// Determiner (a, the, every…).
    Det,
    /// Preposition (at, in, of…).
    Prep,
    /// Conjunction (and, or, if…).
    Conj,
    /// Relative / wh-word (which, whose…).
    Wh,
    /// Pronoun.
    Pron,
    /// Auxiliary or modal verb (is, has, should…).
    Aux,
    /// Number written with digits or an ordinal word.
    Num,
    /// Quoted string literal.
    Literal,
    /// Punctuation.
    Punct,
    /// Anything unrecognized (tagged nominal by default downstream).
    Other,
}

impl Pos {
    /// Whether this POS is a content word kept by query-graph pruning.
    pub fn is_content(self) -> bool {
        matches!(
            self,
            Pos::Verb | Pos::Noun | Pos::Adj | Pos::Num | Pos::Literal | Pos::Other
        )
    }
}

/// The rule/lexicon POS tagger.
///
/// # Example
///
/// ```rust
/// use nlquery_nlp::{tokenize, Pos, PosTagger};
///
/// let tokens = tokenize("insert a string at the start of each line");
/// let tags = PosTagger::new().tag(&tokens);
/// assert_eq!(tags[0], Pos::Verb);   // imperative
/// assert_eq!(tags[2], Pos::Noun);   // string
/// assert_eq!(tags[5], Pos::Noun);   // start (after determiner)
/// ```
#[derive(Debug, Clone, Default)]
pub struct PosTagger {
    _private: (),
}

impl PosTagger {
    /// Creates a tagger.
    pub fn new() -> PosTagger {
        PosTagger::default()
    }

    /// Tags each token of a query.
    pub fn tag(&self, tokens: &[Token]) -> Vec<Pos> {
        let lowers: Vec<String> = tokens.iter().map(Token::lower).collect();
        let mut tags: Vec<Pos> = tokens
            .iter()
            .zip(&lowers)
            .map(|(t, low)| initial_tag(t, low))
            .collect();

        // Pass 2: context rules — for word tokens only (quoted literals
        // like "count" must keep their Literal tag even when their text is
        // a lexicon word).
        let n = tokens.len();
        for i in 0..n {
            if tokens[i].kind != TokenKind::Word {
                continue;
            }
            let low = lowers[i].as_str();
            let ambiguous = lexicon::contains(lexicon::VERB_NOUN_AMBIGUOUS, low);

            // Imperative: the first word token of the query is a verb when
            // the lexicon allows it — including words whose provisional tag
            // came only from a suffix heuristic ("disable" ends in -able
            // but opens a command).
            let lexicon_nonverb = lexicon::contains(lexicon::NOUNS, low)
                || lexicon::contains(lexicon::ADJECTIVES, low)
                || matches!(
                    tags[i],
                    Pos::Conj | Pos::Prep | Pos::Det | Pos::Wh | Pos::Aux | Pos::Pron
                );
            if i == first_word_index(tokens)
                && tokens[i].kind == TokenKind::Word
                && (ambiguous || !lexicon_nonverb)
            {
                tags[i] = Pos::Verb;
                continue;
            }

            if ambiguous {
                // After a determiner, adjective or preposition: nominal.
                let prev_tag = previous_non_punct(&tags, i);
                match prev_tag {
                    Some(Pos::Det) | Some(Pos::Adj) | Some(Pos::Prep) | Some(Pos::Num) => {
                        tags[i] = Pos::Noun;
                    }
                    // After a wh-word or conjunction the ambiguous word acts
                    // as the clause verb: "which start with", "and end".
                    Some(Pos::Wh) | Some(Pos::Conj) => {
                        tags[i] = Pos::Verb;
                    }
                    // After a noun, a third-person-singular form reads as
                    // a clause verb ("a sentence starts with…"); bare
                    // forms stay nominal ("declaration reference
                    // expressions").
                    Some(Pos::Noun) => {
                        tags[i] = if low.ends_with('s') {
                            Pos::Verb
                        } else {
                            Pos::Noun
                        };
                    }
                    _ => {
                        tags[i] = Pos::Noun;
                    }
                }
                continue;
            }

            // "that" is a determiner before a plain noun, a wh-word before a
            // verb ("expressions that declare") — including verb/noun
            // ambiguous words ("calls that return"), which still carry their
            // provisional Noun tag at this point.
            if low == "that" {
                let next_idx = ((i + 1)..n).find(|&j| tags[j] != Pos::Punct);
                let next_is_verbal = next_idx.is_some_and(|j| {
                    tags[j] == Pos::Verb
                        || tags[j] == Pos::Aux
                        || lexicon::contains(lexicon::VERB_NOUN_AMBIGUOUS, &lowers[j])
                });
                tags[i] = match (next_is_verbal, next_idx.map(|j| tags[j])) {
                    (true, _) => Pos::Wh,
                    (false, Some(Pos::Noun) | Some(Pos::Adj) | Some(Pos::Other)) => Pos::Det,
                    _ => Pos::Wh,
                };
            }

            // Gerund directly after a noun stays a verb ("line containing
            // numerals") — initial_tag already says Verb for -ing words in
            // the verb lexicon; nothing to do.

            // Unknown capitalized-or-other words between a determiner and a
            // noun read as adjectives ("a cxx method").
            if tags[i] == Pos::Other {
                let prev = previous_non_punct(&tags, i);
                let next = next_non_punct(&tags, i, n);
                if matches!(prev, Some(Pos::Det)) && matches!(next, Some(Pos::Noun)) {
                    tags[i] = Pos::Adj;
                } else {
                    tags[i] = Pos::Noun;
                }
            }
        }
        tags
    }
}

fn first_word_index(tokens: &[Token]) -> usize {
    tokens
        .iter()
        .position(|t| t.kind == TokenKind::Word)
        .unwrap_or(usize::MAX)
}

fn previous_non_punct(tags: &[Pos], i: usize) -> Option<Pos> {
    tags[..i].iter().rev().copied().find(|&t| t != Pos::Punct)
}

fn next_non_punct(tags: &[Pos], i: usize, n: usize) -> Option<Pos> {
    ((i + 1)..n).map(|j| tags[j]).find(|&t| t != Pos::Punct)
}

fn initial_tag(token: &Token, low: &str) -> Pos {
    match token.kind {
        TokenKind::Literal => return Pos::Literal,
        TokenKind::Number => return Pos::Num,
        TokenKind::Punct => return Pos::Punct,
        TokenKind::Word => {}
    }
    if lexicon::contains(lexicon::DETERMINERS, low) {
        return Pos::Det;
    }
    if lexicon::contains(lexicon::CONJUNCTIONS, low) {
        return Pos::Conj;
    }
    if lexicon::contains(lexicon::WH_WORDS, low) && low != "that" {
        return Pos::Wh;
    }
    if lexicon::contains(lexicon::AUXILIARIES, low) {
        return Pos::Aux;
    }
    if lexicon::contains(lexicon::PRONOUNS, low) {
        return Pos::Pron;
    }
    if lexicon::contains(lexicon::PREPOSITIONS, low) {
        return Pos::Prep;
    }
    if low == "that" {
        return Pos::Wh; // refined by context pass
    }
    if lexicon::contains(lexicon::VERB_NOUN_AMBIGUOUS, low) {
        return Pos::Noun; // refined by context pass
    }
    if lexicon::contains(lexicon::NOUNS, low) {
        return Pos::Noun;
    }
    if lexicon::contains(lexicon::VERBS, low) {
        return Pos::Verb;
    }
    if lexicon::contains(lexicon::ADJECTIVES, low) {
        return Pos::Adj;
    }
    if matches!(
        low,
        "first" | "second" | "third" | "fourth" | "fifth" | "once" | "twice"
    ) {
        return Pos::Num;
    }
    // Suffix heuristics for open-class words outside the lexicon.
    if low.ends_with("ing") || low.ends_with("ed") {
        return Pos::Verb;
    }
    if low.ends_with("ly") {
        return Pos::Adv;
    }
    if low.ends_with("tion")
        || low.ends_with("ment")
        || low.ends_with("ness")
        || low.ends_with("ity")
        || low.ends_with("ance")
        || low.ends_with("ence")
    {
        return Pos::Noun;
    }
    if low.ends_with("al") || low.ends_with("ous") || low.ends_with("ive") || low.ends_with("able")
    {
        return Pos::Adj;
    }
    Pos::Other
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;

    fn tag_query(q: &str) -> Vec<(String, Pos)> {
        let toks = tokenize(q);
        let tags = PosTagger::new().tag(&toks);
        toks.iter().map(|t| t.text.clone()).zip(tags).collect()
    }

    fn tag_of(q: &str, word: &str) -> Pos {
        tag_query(q)
            .into_iter()
            .find(|(w, _)| w == word)
            .unwrap_or_else(|| panic!("word {word} not in query"))
            .1
    }

    #[test]
    fn imperative_first_word_is_verb() {
        assert_eq!(tag_of("insert a string", "insert"), Pos::Verb);
        assert_eq!(tag_of("copy the line", "copy"), Pos::Verb);
    }

    #[test]
    fn ambiguous_after_determiner_is_noun() {
        assert_eq!(tag_of("insert a string at the start", "start"), Pos::Noun);
        assert_eq!(tag_of("delete the end of each line", "end"), Pos::Noun);
    }

    #[test]
    fn ambiguous_after_noun_is_clause_verb() {
        assert_eq!(
            tag_of("if a sentence starts with \"-\" add \":\"", "starts"),
            Pos::Verb
        );
    }

    #[test]
    fn wh_introduces_verb() {
        assert_eq!(
            tag_of("find expressions which declare a method", "declare"),
            Pos::Verb
        );
        assert_eq!(tag_of("lines which start with a digit", "start"), Pos::Verb);
    }

    #[test]
    fn that_is_det_before_noun_wh_before_verb() {
        assert_eq!(tag_of("delete that line", "that"), Pos::Det);
        assert_eq!(tag_of("find calls that return a pointer", "that"), Pos::Wh);
    }

    #[test]
    fn literal_number_punct() {
        let tags = tag_query("add \":\" after 14 characters");
        assert_eq!(tags[1].1, Pos::Literal);
        assert_eq!(tags[3].1, Pos::Num);
    }

    #[test]
    fn gerund_is_verb() {
        assert_eq!(
            tag_of(
                "append \":\" in every line containing numerals",
                "containing"
            ),
            Pos::Verb
        );
    }

    #[test]
    fn unknown_word_defaults_to_noun() {
        assert_eq!(tag_of("delete the foobar", "foobar"), Pos::Noun);
    }

    #[test]
    fn unknown_between_det_and_noun_is_adjective() {
        assert_eq!(tag_of("find a zorp method", "zorp"), Pos::Adj);
    }

    #[test]
    fn content_word_classification() {
        assert!(Pos::Verb.is_content());
        assert!(Pos::Literal.is_content());
        assert!(!Pos::Det.is_content());
        assert!(!Pos::Prep.is_content());
    }

    #[test]
    fn auxiliary_tagged() {
        assert_eq!(tag_of("find literals that are floats", "are"), Pos::Aux);
    }
}
