//! Deterministic NLP substrate for NLU-driven program synthesis.
//!
//! The DGGT paper builds on off-the-shelf NLU tooling for its first three
//! pipeline steps: dependency parsing of the query, POS-based pruning, and
//! semantic word-to-API matching. This crate re-implements those substrates
//! from scratch as deterministic, rule/lexicon-driven components:
//!
//! * [`tokenize`] — tokenizer that keeps quoted strings as literal tokens;
//! * [`stem`] — a light suffix-stripping stemmer;
//! * [`PosTagger`] — lexicon + suffix + context POS tagging tuned for
//!   imperative programming queries ("insert a string at the start of each
//!   line");
//! * [`DepParser`] — a rule-based dependency parser producing the *query
//!   dependency graph* consumed by the synthesizer (governor → dependent
//!   edges labelled with dependency types);
//! * [`SemanticMatcher`] — word↔API matching over API documentation with a
//!   synonym lexicon, producing the WordToAPI map of step 3.
//!
//! The synthesis algorithms only consume the *outputs* of these components
//! (dependency graphs and candidate-API maps), so any parser producing the
//! same interfaces — including one that occasionally errs, which is exactly
//! what exercises the paper's orphan-node relocation — preserves the
//! behaviour the paper studies.
//!
//! # Example
//!
//! ```rust
//! use nlquery_nlp::{DepParser, PosTagger};
//!
//! let parser = DepParser::new();
//! let graph = parser.parse("insert \":\" at the start of each line");
//! let root = graph.root().expect("imperative queries have a verb root");
//! assert_eq!(graph.node(root).lemma, "insert");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dep;
mod lexicon;
mod pos;
mod semantic;
mod stem;
mod synonyms;
mod token;

pub use dep::{DepEdge, DepGraph, DepNode, DepParser, DepRel};
pub use pos::{Pos, PosTagger};
pub use semantic::{ApiCandidate, ApiDoc, SemanticMatcher};
pub use stem::stem;
pub use synonyms::SynonymLexicon;
pub use token::{tokenize, Token, TokenKind};
