//! Step 2 — query-graph pruning (fused with step 3's candidate lookup).
//!
//! Starting from the raw dependency graph, pruning:
//!
//! * drops generic *intent verbs* ("find", "search", …) at the root and
//!   promotes their object ("find constructor expressions" roots at the
//!   expressions node);
//! * folds numeric modifiers and — in domains without a literal API —
//!   quoted literals into their governor as slot payloads
//!   (`hasName("PI")`);
//! * merges compound/adjectival modifiers into their head when one API's
//!   keywords cover the whole phrase ("constructor expressions" →
//!   `cxxConstructExpr`);
//! * removes every remaining word with no candidate API (articles,
//!   prepositions, filler), splicing grandchildren up.
//!
//! The output is the *pruned dependency graph* ([`QueryGraph`]) plus the
//! WordToAPI map ([`WordToApi`]) — steps 2 and 3 of the paper's pipeline.

use nlquery_nlp::{ApiCandidate, DepGraph, DepRel, Pos};

use crate::word2api::{full_coverage_score, phrase_candidates, WordToApi};
use crate::{Domain, QueryEdge, QueryGraph, QueryNode, SynthesisConfig};

/// Minimum full-coverage score at which a modifier merges into its head.
/// Keyword scores carry a coverage factor of `0.6 + 0.4/#keywords`, so a
/// phrase fully covering a three-keyword API scores ≈ 0.73 before synonym
/// discounts.
const MERGE_THRESHOLD: f64 = 0.55;

/// Wall-clock split of one [`prune`] run: the graph-rewriting phases
/// (step 2) versus the WordToAPI candidate lookup (step 3) — the two steps
/// are fused in this module but instrumented separately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneTiming {
    /// Time in graph rewriting (intent-root dropping, folding, modifier
    /// merging, unmatched-word removal).
    pub t_prune: std::time::Duration,
    /// Time in the semantic candidate lookup.
    pub t_word2api: std::time::Duration,
}

/// Prunes a dependency graph and computes the WordToAPI map.
pub fn prune(dep: &DepGraph, domain: &Domain, config: &SynthesisConfig) -> (QueryGraph, WordToApi) {
    let (graph, w2a, _) = prune_timed(dep, domain, config);
    (graph, w2a)
}

/// [`prune`] with a per-phase wall-clock split for stage instrumentation.
pub fn prune_timed(
    dep: &DepGraph,
    domain: &Domain,
    config: &SynthesisConfig,
) -> (QueryGraph, WordToApi, PruneTiming) {
    let mut timing = PruneTiming::default();
    let t0 = std::time::Instant::now();
    let mut work = Workspace::from_dep(dep);
    work.drop_intent_roots(domain);
    work.fold_numbers();
    work.fold_literals(domain);
    work.merge_modifiers(domain);
    timing.t_prune = t0.elapsed();
    let t1 = std::time::Instant::now();
    work.assign_candidates(domain, config);
    timing.t_word2api = t1.elapsed();
    let t2 = std::time::Instant::now();
    work.drop_unmatched();
    let (graph, w2a) = work.into_query_graph();
    timing.t_prune += t2.elapsed();
    (graph, w2a, timing)
}

/// Computes the WordToAPI map for a query graph that is *already* in
/// pruned form (e.g. emitted by a synthetic generator rather than by the
/// dependency parser). Applies exactly the candidate rules of
/// [`prune`]'s step 3: function-word POS classes get no candidates,
/// domain stopwords are filtered out of the phrase before the semantic
/// lookup, and literal nodes in domains with a literal API get that API
/// as a fixed full-score candidate.
pub fn graph_candidates(
    query: &QueryGraph,
    domain: &Domain,
    config: &SynthesisConfig,
) -> WordToApi {
    let candidates = query
        .nodes
        .iter()
        .map(|node| {
            if matches!(node.pos, Pos::Literal | Pos::Num) {
                if let Some(api) = domain.literal_api() {
                    return vec![ApiCandidate {
                        api: api.to_string(),
                        score: 1.0,
                    }];
                }
            }
            if matches!(
                node.pos,
                Pos::Prep | Pos::Wh | Pos::Aux | Pos::Conj | Pos::Pron | Pos::Adv
            ) {
                return Vec::new();
            }
            let words: Vec<String> = node
                .words
                .iter()
                .filter(|w| !domain.stopwords().iter().any(|s| s == *w))
                .cloned()
                .collect();
            phrase_candidates(
                domain.matcher(),
                &words,
                config.max_candidates,
                config.min_score,
            )
        })
        .collect();
    WordToApi { candidates }
}

#[derive(Debug, Clone)]
struct WorkNode {
    words: Vec<(usize, String)>, // (original index, lemma) kept in query order
    pos: Pos,
    literal: Option<String>,
    parent: Option<(usize, DepRel)>,
    alive: bool,
    candidates: Vec<ApiCandidate>,
    fixed_candidates: bool,
}

#[derive(Debug)]
struct Workspace {
    nodes: Vec<WorkNode>,
    root: Option<usize>,
}

impl Workspace {
    fn from_dep(dep: &DepGraph) -> Workspace {
        let mut nodes: Vec<WorkNode> = dep
            .nodes()
            .iter()
            .map(|n| WorkNode {
                words: vec![(n.index, n.lemma.clone())],
                pos: n.pos,
                literal: n.literal.clone(),
                parent: None,
                alive: true,
                candidates: Vec::new(),
                fixed_candidates: false,
            })
            .collect();
        for e in dep.edges() {
            nodes[e.dep].parent = Some((e.gov, e.rel.clone()));
        }
        Workspace {
            nodes,
            root: dep.root(),
        }
    }

    fn children(&self, id: usize) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| {
                self.nodes[i].alive && self.nodes[i].parent.as_ref().map(|p| p.0) == Some(id)
            })
            .collect()
    }

    /// Kills `id`, splicing its children to its parent (or to
    /// `new_parent`).
    fn remove(&mut self, id: usize, new_parent: Option<usize>) {
        let parent = new_parent.or(self.nodes[id].parent.as_ref().map(|p| p.0));
        for c in self.children(id) {
            match parent {
                Some(p) => {
                    let rel = self.nodes[c].parent.as_ref().map(|pr| pr.1.clone());
                    self.nodes[c].parent = Some((p, rel.unwrap_or(DepRel::Obj)));
                }
                None => self.nodes[c].parent = None,
            }
        }
        self.nodes[id].alive = false;
        self.nodes[id].parent = None;
    }

    fn drop_intent_roots(&mut self, domain: &Domain) {
        for _ in 0..2 {
            let Some(root) = self.root else { return };
            let node = &self.nodes[root];
            let is_intent = node.words.len() == 1
                && domain.intent_verbs().iter().any(|v| *v == node.words[0].1);
            if !is_intent {
                return;
            }
            let kids = self.children(root);
            // Prefer the object child as the new root.
            let new_root = kids
                .iter()
                .copied()
                .find(|&c| {
                    matches!(
                        self.nodes[c].parent.as_ref().map(|p| &p.1),
                        Some(DepRel::Obj) | Some(DepRel::Nmod(_)) | Some(DepRel::Lit)
                    )
                })
                .or_else(|| kids.first().copied());
            let Some(new_root) = new_root else {
                return;
            };
            self.nodes[new_root].parent = None;
            self.remove(root, Some(new_root));
            self.root = Some(new_root);
        }
    }

    fn fold_numbers(&mut self) {
        for i in 0..self.nodes.len() {
            if !self.nodes[i].alive || self.nodes[i].pos != Pos::Num {
                continue;
            }
            if let Some((gov, DepRel::NumMod)) = self.nodes[i].parent.clone() {
                if let Some(lit) = self.nodes[i].literal.clone() {
                    if self.nodes[gov].literal.is_none() {
                        self.nodes[gov].literal = Some(lit);
                    }
                }
                self.remove(i, None);
            }
        }
    }

    fn fold_literals(&mut self, domain: &Domain) {
        for i in 0..self.nodes.len() {
            if !self.nodes[i].alive || !matches!(self.nodes[i].pos, Pos::Literal | Pos::Num) {
                continue;
            }
            match domain.literal_api() {
                Some(api) => {
                    // The literal is a standalone entity (STRING in the
                    // text-editing DSL).
                    self.nodes[i].candidates = vec![ApiCandidate {
                        api: api.to_string(),
                        score: 1.0,
                    }];
                    self.nodes[i].fixed_candidates = true;
                }
                None => {
                    // Fold the literal into its governor as a slot payload.
                    if let Some((gov, _)) = self.nodes[i].parent.clone() {
                        if let Some(lit) = self.nodes[i].literal.clone() {
                            if self.nodes[gov].literal.is_none() {
                                self.nodes[gov].literal = Some(lit);
                            }
                        }
                        self.remove(i, None);
                    }
                }
            }
        }
    }

    fn merge_modifiers(&mut self, domain: &Domain) {
        // Visit dependents in reverse query order so inner modifiers merge
        // before outer ones ("cxx" then "constructor" into "expressions").
        let order: Vec<usize> = (0..self.nodes.len()).rev().collect();
        for i in order {
            if !self.nodes[i].alive {
                continue;
            }
            let Some((gov, rel)) = self.nodes[i].parent.clone() else {
                continue;
            };
            if !matches!(rel, DepRel::Compound | DepRel::Amod) {
                continue;
            }
            if self.nodes[i].fixed_candidates || self.nodes[i].pos == Pos::Literal {
                continue;
            }
            // Candidate merged phrase, in query order.
            let mut merged = self.nodes[gov].words.clone();
            merged.extend(self.nodes[i].words.iter().cloned());
            merged.sort_by_key(|(idx, _)| *idx);
            let phrase: Vec<String> = merged.iter().map(|(_, w)| w.clone()).collect();
            if let Some((_, score)) = full_coverage_score(domain.matcher(), &phrase) {
                if score >= MERGE_THRESHOLD {
                    self.nodes[gov].words = merged;
                    if self.nodes[gov].literal.is_none() {
                        self.nodes[gov].literal = self.nodes[i].literal.clone();
                    }
                    self.remove(i, Some(gov));
                }
            }
        }
    }

    fn assign_candidates(&mut self, domain: &Domain, config: &SynthesisConfig) {
        for node in &mut self.nodes {
            if !node.alive || node.fixed_candidates {
                continue;
            }
            // Function words never map to APIs no matter what they hit
            // textually ("for" must not become `forStmt`). Determiners are
            // the one exception: quantifiers like "every" legitimately map
            // (→ `ALL` in the text-editing DSL).
            if matches!(
                node.pos,
                Pos::Prep | Pos::Wh | Pos::Aux | Pos::Conj | Pos::Pron | Pos::Adv
            ) {
                node.candidates = Vec::new();
                continue;
            }
            let words: Vec<String> = node
                .words
                .iter()
                .map(|(_, w)| w.clone())
                .filter(|w| !domain.stopwords().iter().any(|s| s == w))
                .collect();
            node.candidates = phrase_candidates(
                domain.matcher(),
                &words,
                config.max_candidates,
                config.min_score,
            );
        }
    }

    fn drop_unmatched(&mut self) {
        // Promote past a matchless root first.
        for _ in 0..3 {
            let Some(root) = self.root else { break };
            if !self.nodes[root].candidates.is_empty() {
                break;
            }
            let kids = self.children(root);
            let Some(&new_root) = kids
                .iter()
                .find(|&&c| !self.nodes[c].candidates.is_empty())
                .or_else(|| kids.first())
            else {
                break;
            };
            self.nodes[new_root].parent = None;
            self.remove(root, Some(new_root));
            self.root = Some(new_root);
        }
        for i in 0..self.nodes.len() {
            if !self.nodes[i].alive || Some(i) == self.root {
                continue;
            }
            if self.nodes[i].candidates.is_empty() {
                self.remove(i, None);
            }
        }
    }

    fn into_query_graph(self) -> (QueryGraph, WordToApi) {
        let mut remap: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut nodes = Vec::new();
        let mut candidates = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.alive {
                continue;
            }
            remap[i] = Some(nodes.len());
            nodes.push(QueryNode {
                id: nodes.len(),
                words: n.words.iter().map(|(_, w)| w.clone()).collect(),
                pos: n.pos,
                literal: n.literal.clone(),
            });
            candidates.push(n.candidates.clone());
        }
        let mut edges = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.alive {
                continue;
            }
            if let Some((gov, rel)) = &n.parent {
                if let (Some(g), Some(d)) = (remap[*gov], remap[i]) {
                    if g != d {
                        edges.push(QueryEdge {
                            gov: g,
                            dep: d,
                            rel: rel.clone(),
                        });
                    }
                }
            }
        }
        let root = self.root.and_then(|r| remap[r]);
        (QueryGraph { nodes, edges, root }, WordToApi { candidates })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlquery_grammar::GrammarGraph;
    use nlquery_nlp::{ApiDoc, DepParser};

    fn textedit_domain() -> Domain {
        let graph = GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg | DELETE delete_arg
            insert_arg ::= string pos iter
            delete_arg ::= entity iter
            string     ::= STRING
            entity     ::= STRING | WORDTOKEN | NUMBERTOKEN
            pos        ::= START | END | POSITION
            iter       ::= LINESCOPE | ALL
            "#,
        )
        .unwrap();
        Domain::builder("textedit")
            .graph(graph)
            .docs(vec![
                ApiDoc::new("INSERT", &["insert"], "inserts a string at a position", 0),
                ApiDoc::new("DELETE", &["delete"], "deletes the entity", 0),
                ApiDoc::new("STRING", &["string"], "a string constant", 1),
                ApiDoc::new("WORDTOKEN", &["word"], "a word token", 0),
                ApiDoc::new("NUMBERTOKEN", &["number"], "a number token", 0),
                ApiDoc::new("START", &["start"], "the start of the scope", 0),
                ApiDoc::new("END", &["end"], "the end of the scope", 0),
                ApiDoc::new(
                    "POSITION",
                    &["position", "character"],
                    "a character position",
                    1,
                ),
                ApiDoc::new("LINESCOPE", &["line"], "iterate over lines", 0),
                ApiDoc::new("ALL", &["all", "every"], "all occurrences", 0),
            ])
            .literal_api("STRING")
            .build()
            .unwrap()
    }

    fn run(domain: &Domain, q: &str) -> (QueryGraph, WordToApi) {
        let dep = DepParser::new().parse(q);
        prune(&dep, domain, &SynthesisConfig::default())
    }

    #[test]
    fn drops_function_words() {
        let d = textedit_domain();
        let (g, _) = run(&d, "insert a string at the start of each line");
        let phrases: Vec<String> = g.nodes.iter().map(|n| n.phrase()).collect();
        assert!(!phrases.contains(&"a".to_string()), "{phrases:?}");
        assert!(!phrases.contains(&"the".to_string()), "{phrases:?}");
        assert!(phrases.contains(&"insert".to_string()));
        assert!(phrases.contains(&"start".to_string()));
        assert!(phrases.contains(&"line".to_string()));
    }

    #[test]
    fn quantifier_every_is_kept() {
        let d = textedit_domain();
        let (g, w2a) = run(&d, "delete every word");
        let every = g.nodes.iter().position(|n| n.phrase() == "every");
        assert!(every.is_some(), "{}", g.render());
        assert!(w2a.of(every.unwrap()).iter().any(|c| c.api == "ALL"));
    }

    #[test]
    fn literal_becomes_string_node() {
        let d = textedit_domain();
        let (g, w2a) = run(&d, "insert \":\" at the start");
        let lit = g
            .nodes
            .iter()
            .position(|n| n.literal.as_deref() == Some(":"))
            .expect("literal node kept");
        assert_eq!(w2a.of(lit)[0].api, "STRING");
    }

    #[test]
    fn number_folds_into_governor() {
        let d = textedit_domain();
        let (g, _) = run(&d, "add \":\" after 14 characters");
        let pos_node = g
            .nodes
            .iter()
            .find(|n| n.phrase() == "characters")
            .expect("characters kept");
        assert_eq!(pos_node.literal.as_deref(), Some("14"));
        assert!(!g.nodes.iter().any(|n| n.phrase() == "14"));
    }

    #[test]
    fn root_preserved_and_edges_spliced() {
        let d = textedit_domain();
        let (g, _) = run(&d, "insert a string at the start of each line");
        let root = g.root.unwrap();
        assert_eq!(g.nodes[root].phrase(), "insert");
        // start -> line survives the removal of "of"/"each" style words.
        let start = g.nodes.iter().position(|n| n.phrase() == "start").unwrap();
        let line = g.nodes.iter().position(|n| n.phrase() == "line").unwrap();
        assert!(
            g.edges.iter().any(|e| e.gov == start && e.dep == line),
            "{}",
            g.render()
        );
    }

    fn ast_domain() -> Domain {
        let graph = GrammarGraph::parse(
            r#"
            top     ::= cxxConstructExpr inner | callExpr inner
            inner   ::= hasName | hasDeclaration top
            "#,
        )
        .unwrap();
        Domain::builder("ast")
            .graph(graph)
            .docs(vec![
                ApiDoc::new(
                    "cxxConstructExpr",
                    &["cxx", "constructor", "expression"],
                    "matches c++ constructor expressions",
                    0,
                ),
                ApiDoc::new(
                    "callExpr",
                    &["call", "expression"],
                    "matches call expressions",
                    0,
                ),
                ApiDoc::new("hasName", &["name"], "matches by name", 1),
                ApiDoc::new(
                    "hasDeclaration",
                    &["declaration"],
                    "matches the declaration",
                    0,
                ),
            ])
            .quote_literals(true)
            .build()
            .unwrap()
    }

    #[test]
    fn intent_verb_root_promoted() {
        let d = ast_domain();
        let (g, _) = run(&d, "find call expressions");
        let root = g.root.unwrap();
        assert!(
            g.nodes[root].phrase().contains("expression"),
            "{}",
            g.render()
        );
        assert!(!g.nodes.iter().any(|n| n.phrase() == "find"));
    }

    #[test]
    fn compound_merges_into_full_coverage_api() {
        let d = ast_domain();
        let (g, w2a) = run(&d, "find cxx constructor expressions");
        assert_eq!(g.nodes.len(), 1, "{}", g.render());
        assert_eq!(w2a.of(0)[0].api, "cxxConstructExpr");
    }

    #[test]
    fn literal_folds_into_governor_without_literal_api() {
        let d = ast_domain();
        let (g, _) = run(&d, "find expressions named \"PI\"");
        let named = g
            .nodes
            .iter()
            .find(|n| n.phrase().contains("name"))
            .expect("named kept");
        assert_eq!(named.literal.as_deref(), Some("PI"));
        assert!(!g
            .nodes
            .iter()
            .any(|n| n.literal.as_deref() == Some("PI") && n.pos == Pos::Literal));
    }

    #[test]
    fn empty_query_survives() {
        let d = textedit_domain();
        let (g, w2a) = run(&d, "");
        assert!(g.nodes.is_empty());
        assert!(w2a.candidates.is_empty());
    }
}
