//! Step 4 — EdgeToPath: candidate grammar paths per dependency edge.
//!
//! For every edge `gov → dep` of the pruned query graph, the reversed
//! all-path search finds every grammar path connecting a candidate API of
//! `gov` to a candidate API of `dep`. The dependency root gets a *pseudo
//! edge* from the grammar root. Edges for which **no** candidate pair is
//! connected mark their dependent as an *orphan node* (§V-B).
//!
//! Search results are memoized at two levels: a per-query [`PathCache`]
//! (orphan relocation re-runs EdgeToPath on several graph variants whose
//! edges mostly repeat the same searches) and an optional cross-query
//! [`SharedPathCache`] holding finalized per-edge candidate lists keyed by
//! the candidate-set hashes — the grammar graph is immutable per domain,
//! so structurally repeated edges across queries resolve without touching
//! the grammar at all.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use nlquery_grammar::{
    GrammarGraph, GrammarPath, NodeId, PathId, SearchDeadline, SearchLimits, SearchTimedOut,
};
use nlquery_nlp::DepRel;

use crate::engine::{Deadline, TimedOut};
use crate::memo::{Flight, FlightToken, MemoKey, RawPath, SharedPathCache};
use crate::{Domain, QueryGraph, WordToApi};

/// Minimum matcher score at which a preposition "claims" an API for the
/// relation-affinity bonus ("before" → `BEFORE`).
const AFFINITY_MIN_SCORE: f64 = 0.7;

/// Score bonus (milli-units) granted to a path that passes through an API
/// the edge's preposition names.
const AFFINITY_BONUS: u64 = 300;

/// Memo for path searches within one query, optionally layered over a
/// cross-query [`SharedPathCache`].
#[derive(Debug, Default)]
pub struct PathCache {
    between: HashMap<(NodeId, NodeId), Vec<GrammarPath>>,
    from_root: HashMap<NodeId, Vec<GrammarPath>>,
    shared: Option<Arc<SharedPathCache>>,
    shared_hits: u64,
    shared_misses: u64,
    shared_dedup_waits: u64,
}

/// Outcome of [`PathCache::begin_edge`]: either the finalized candidate
/// list (hit, or shared after waiting on a concurrent worker), or the duty
/// to compute it (with the single-flight leadership token when a shared
/// cache is attached).
enum EdgeFlight {
    Found(Arc<Vec<RawPath>>),
    Compute(Option<FlightToken>),
}

impl PathCache {
    /// Creates an empty query-local cache.
    pub fn new() -> PathCache {
        PathCache::default()
    }

    /// Creates a query-local cache layered over a cross-query memo.
    pub fn with_shared(shared: Arc<SharedPathCache>) -> PathCache {
        PathCache {
            shared: Some(shared),
            ..PathCache::default()
        }
    }

    /// Cross-query memo hits observed through this cache.
    pub fn shared_hits(&self) -> u64 {
        self.shared_hits
    }

    /// Cross-query memo misses observed through this cache.
    pub fn shared_misses(&self) -> u64 {
        self.shared_misses
    }

    /// Cross-query lookups that blocked on another worker's in-flight
    /// computation of the same key (single-flight deduplication).
    pub fn shared_dedup_waits(&self) -> u64 {
        self.shared_dedup_waits
    }

    /// Memoized API→API search. A timed-out search leaves no entry behind —
    /// a list truncated by time rather than by [`SearchLimits`] would be
    /// timing-dependent and must never be memoized.
    fn between(
        &mut self,
        graph: &GrammarGraph,
        from: NodeId,
        to: NodeId,
        limits: SearchLimits,
        deadline: &SearchDeadline,
    ) -> Result<&[GrammarPath], SearchTimedOut> {
        if let Entry::Vacant(e) = self.between.entry((from, to)) {
            let paths = graph.paths_between_deadline(from, to, limits, deadline)?;
            e.insert(paths);
        }
        Ok(&self.between[&(from, to)])
    }

    /// Memoized root→API search; same never-cache-a-timeout rule as
    /// [`PathCache::between`].
    fn root_paths(
        &mut self,
        graph: &GrammarGraph,
        to: NodeId,
        limits: SearchLimits,
        deadline: &SearchDeadline,
    ) -> Result<&[GrammarPath], SearchTimedOut> {
        if let Entry::Vacant(e) = self.from_root.entry(to) {
            let paths = graph.paths_from_root_deadline(to, limits, deadline)?;
            e.insert(paths);
        }
        Ok(&self.from_root[&to])
    }

    /// Cross-query single-flight lookup. With a shared cache attached this
    /// either returns the memoized list (a hit, or — after blocking on a
    /// concurrent worker computing the same key — a dedup wait) or makes
    /// this caller the computing leader. Without one, the caller always
    /// computes (and [`PathCache::finish_edge`] just wraps the value).
    fn begin_edge(&mut self, key: MemoKey) -> EdgeFlight {
        let Some(shared) = &self.shared else {
            return EdgeFlight::Compute(None);
        };
        match shared.join(key) {
            Flight::Hit(value) => {
                self.shared_hits += 1;
                EdgeFlight::Found(value)
            }
            Flight::Shared(value) => {
                self.shared_dedup_waits += 1;
                EdgeFlight::Found(value)
            }
            Flight::Miss(token) => {
                self.shared_misses += 1;
                EdgeFlight::Compute(Some(token))
            }
        }
    }

    /// Publishes a computed edge result, waking any workers blocked on the
    /// flight (no-op handle when no shared cache is attached).
    fn finish_edge(&self, token: Option<FlightToken>, value: Vec<RawPath>) -> Arc<Vec<RawPath>> {
        match token {
            Some(token) => token.complete(value),
            None => Arc::new(value),
        }
    }
}

/// One candidate grammar path for a dependency edge.
#[derive(Debug, Clone, PartialEq)]
pub struct PathCandidate {
    /// The paper-style path id (`edge.path`).
    pub id: PathId,
    /// The governor-side API node; `None` when the path starts at the
    /// grammar root (root pseudo-edge, HISyn orphan attachment).
    pub gov_api: Option<NodeId>,
    /// The dependent-side API node (the path's sink).
    pub dep_api: NodeId,
    /// Relation-affinity bonus (milli-units): granted when the dependency
    /// edge's preposition semantically names an API on this path
    /// ("split … *before* X" prefers paths through `BEFORE`).
    pub bonus_milli: u64,
    /// The path itself.
    pub path: GrammarPath,
}

/// All path candidates of one dependency edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeCandidates {
    /// Edge index within the [`EdgeToPath`] (0 is the root pseudo-edge).
    pub edge_index: usize,
    /// Governor query node; `None` for the root pseudo-edge and for
    /// root-attached orphans.
    pub gov: Option<usize>,
    /// Dependent query node.
    pub dep: usize,
    /// Candidate paths.
    pub paths: Vec<PathCandidate>,
}

/// The EdgeToPath map plus orphan diagnosis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeToPath {
    /// Per-edge candidates. Edge 0 is the root pseudo-edge; real edges
    /// follow in query-graph edge order (edges with no paths are omitted —
    /// their dependents appear in [`EdgeToPath::orphans`]).
    pub edges: Vec<EdgeCandidates>,
    /// Query nodes unreachable from their governor (or unattached in the
    /// parse): the orphan nodes.
    pub orphans: Vec<usize>,
}

impl EdgeToPath {
    /// Total number of candidate paths across all edges.
    pub fn total_paths(&self) -> usize {
        self.edges.iter().map(|e| e.paths.len()).sum()
    }

    /// Product over edges of per-edge path counts — the theoretical
    /// combination count `Π_l p_l^{e_l}` of §III-A (as `f64`; it overflows
    /// integers on hard queries).
    pub fn combination_count(&self) -> f64 {
        self.edges
            .iter()
            .filter(|e| !e.paths.is_empty())
            .map(|e| e.paths.len() as f64)
            .product()
    }

    /// The edge whose dependent is `dep`, if present.
    pub fn edge_for(&self, dep: usize) -> Option<&EdgeCandidates> {
        self.edges.iter().find(|e| e.dep == dep)
    }
}

/// Sorted, deduplicated candidate API nodes of one query node — the
/// canonical form hashed into cross-query [`MemoKey`]s.
fn candidate_apis(w2a: &WordToApi, node: usize, graph: &GrammarGraph) -> Vec<NodeId> {
    let mut apis: Vec<NodeId> = w2a
        .of(node)
        .iter()
        .filter_map(|c| graph.api_node(&c.api))
        .collect();
    apis.sort_unstable();
    apis.dedup();
    apis
}

/// Finalizes a raw candidate list: ascending path size, then chain, then
/// source (a total order — insertion order never matters), truncated to the
/// per-edge cap. The shortest paths are the ones the smallest-CGT objective
/// can use; the cap bounds the per-edge fan-out on very permissive
/// grammars.
fn sort_and_truncate(raw: &mut Vec<RawPath>, graph: &GrammarGraph, limits: SearchLimits) {
    raw.sort_by_key(|rp| (rp.path.size(graph), rp.path.chain.clone(), rp.path.source));
    raw.truncate(limits.max_paths);
}

/// Memoized root-pseudo-edge search: every path from the grammar root to a
/// candidate API of `node`.
///
/// Should a bounded `deadline` fire, the `?` drops the in-flight
/// leadership token before any value is published, which removes the slot
/// and promotes one blocked waiter to leader — an aborted search never
/// wedges or poisons the shared cache. (The pipeline itself always passes
/// an unbounded search deadline and bounds the query at edge boundaries
/// instead — see [`compute_deadline`].)
fn root_edge_paths(
    node: usize,
    w2a: &WordToApi,
    graph: &GrammarGraph,
    limits: SearchLimits,
    cache: &mut PathCache,
    deadline: &SearchDeadline,
) -> Result<Arc<Vec<RawPath>>, SearchTimedOut> {
    let apis = candidate_apis(w2a, node, graph);
    let key = MemoKey::from_root(&apis, limits);
    let token = match cache.begin_edge(key) {
        EdgeFlight::Found(raw) => return Ok(raw),
        EdgeFlight::Compute(token) => token,
    };
    let mut raw = Vec::new();
    for &api in &apis {
        for p in cache.root_paths(graph, api, limits, deadline)? {
            raw.push(RawPath {
                gov_api: None,
                dep_api: api,
                path: p.clone(),
            });
        }
    }
    sort_and_truncate(&mut raw, graph, limits);
    Ok(cache.finish_edge(token, raw))
}

/// Memoized real-edge search: every path from a candidate API of `gov` to
/// a candidate API of `dep`. Timeout handling as in [`root_edge_paths`].
fn between_edge_paths(
    gov: usize,
    dep: usize,
    w2a: &WordToApi,
    graph: &GrammarGraph,
    limits: SearchLimits,
    cache: &mut PathCache,
    deadline: &SearchDeadline,
) -> Result<Arc<Vec<RawPath>>, SearchTimedOut> {
    let gov_apis = candidate_apis(w2a, gov, graph);
    let dep_apis = candidate_apis(w2a, dep, graph);
    let key = MemoKey::between(&gov_apis, &dep_apis, limits);
    let token = match cache.begin_edge(key) {
        EdgeFlight::Found(raw) => return Ok(raw),
        EdgeFlight::Compute(token) => token,
    };
    let mut raw = Vec::new();
    for &ga in &gov_apis {
        for &da in &dep_apis {
            for p in cache.between(graph, ga, da, limits, deadline)? {
                raw.push(RawPath {
                    gov_api: Some(ga),
                    dep_api: da,
                    path: p.clone(),
                });
            }
        }
    }
    sort_and_truncate(&mut raw, graph, limits);
    Ok(cache.finish_edge(token, raw))
}

/// The cross-query memo keys the EdgeToPath step will request for a pruned
/// query graph — the root pseudo-edge plus every real dependency edge, in
/// computation order. No search is performed; this is the cheap "shape
/// signature" the [`BatchEngine`](crate::BatchEngine) uses to co-schedule
/// queries that share pruned-graph edges on the same worker.
pub fn memo_keys(
    query: &QueryGraph,
    w2a: &WordToApi,
    domain: &Domain,
    limits: SearchLimits,
) -> Vec<MemoKey> {
    let graph = domain.graph();
    // Empty, whitespace-only, and unparseable queries prune to a graph with
    // no nodes: no search will ever run for them, so their signature is
    // empty. The batch engine feeds every raw query through here for
    // co-scheduling, so this path must stay total — no panics.
    if query.nodes.is_empty() {
        return Vec::new();
    }
    let mut keys = Vec::new();
    if let Some(root) = query.root {
        keys.push(MemoKey::from_root(
            &candidate_apis(w2a, root, graph),
            limits,
        ));
    }
    for qe in &query.edges {
        keys.push(MemoKey::between(
            &candidate_apis(w2a, qe.gov, graph),
            &candidate_apis(w2a, qe.dep, graph),
            limits,
        ));
    }
    keys
}

/// Stamps per-edge metadata onto a finalized raw list: path ids and the
/// relation-affinity bonus (both depend on the edge, not the search).
fn to_candidates(
    raw: &[RawPath],
    edge_index: usize,
    affine: &[NodeId],
    graph: &GrammarGraph,
) -> Vec<PathCandidate> {
    raw.iter()
        .enumerate()
        .map(|(i, rp)| {
            let bonus = if !affine.is_empty()
                && rp.path.api_nodes(graph).iter().any(|n| affine.contains(n))
            {
                AFFINITY_BONUS
            } else {
                0
            };
            PathCandidate {
                id: PathId {
                    edge: edge_index as u32,
                    path: i as u32,
                },
                gov_api: rp.gov_api,
                dep_api: rp.dep_api,
                bonus_milli: bonus,
                path: rp.path.clone(),
            }
        })
        .collect()
}

/// Computes the EdgeToPath map for a pruned query graph.
///
/// `limits` bounds the reversed all-path search. Orphans are *diagnosed*
/// here; attaching them (to the grammar root à la HISyn, or by relocation à
/// la DGGT) is the caller's decision.
pub fn compute(
    query: &QueryGraph,
    w2a: &WordToApi,
    domain: &Domain,
    limits: SearchLimits,
) -> EdgeToPath {
    compute_cached(query, w2a, domain, limits, &mut PathCache::new())
}

/// [`compute`] with an external [`PathCache`], reused across orphan
/// relocation variants of the same query — and, when the cache carries a
/// [`SharedPathCache`], across queries.
pub fn compute_cached(
    query: &QueryGraph,
    w2a: &WordToApi,
    domain: &Domain,
    limits: SearchLimits,
    cache: &mut PathCache,
) -> EdgeToPath {
    compute_inner(
        query,
        w2a,
        domain,
        limits,
        cache,
        &Deadline::new(std::time::Duration::MAX),
    )
    .expect("an unbounded deadline cannot expire")
}

/// [`compute_cached`] under a per-query [`Deadline`]: the wall-clock
/// budget is polled at every *edge boundary*, so an expired query stops
/// before the next edge's search begins — with nothing from unstarted
/// edges cached — and surfaces `Err(TimedOut)`.
///
/// Each individual search still runs to completion (it is bounded by
/// [`SearchLimits`], not wall-clock): a finished search always enters the
/// memo, locally and cross-query. Aborting mid-search instead would leave
/// the shared cache cold exactly when the machine is oversubscribed, and
/// every co-scheduled query sharing the edge would redo — and re-abort —
/// the same search, cascading timeouts across the batch.
pub fn compute_deadline(
    query: &QueryGraph,
    w2a: &WordToApi,
    domain: &Domain,
    limits: SearchLimits,
    cache: &mut PathCache,
    deadline: &Deadline,
) -> Result<EdgeToPath, TimedOut> {
    compute_inner(query, w2a, domain, limits, cache, deadline)
}

fn compute_inner(
    query: &QueryGraph,
    w2a: &WordToApi,
    domain: &Domain,
    limits: SearchLimits,
    cache: &mut PathCache,
    deadline: &Deadline,
) -> Result<EdgeToPath, TimedOut> {
    let search = SearchDeadline::unbounded();
    let graph = domain.graph();
    let mut result = EdgeToPath::default();
    let mut edge_index = 0;

    // APIs named by a preposition ("before" → BEFORE): paths through them
    // get a score bonus on edges labelled with that preposition.
    let affinity_apis = |rel: &DepRel| -> Vec<NodeId> {
        let DepRel::Nmod(prep) = rel else {
            return Vec::new();
        };
        domain
            .matcher()
            .candidates(prep, 4, AFFINITY_MIN_SCORE)
            .into_iter()
            .filter_map(|c| graph.api_node(&c.api))
            .collect()
    };

    // Root pseudo-edge.
    if let Some(root) = query.root {
        deadline.check()?;
        let raw = root_edge_paths(root, w2a, graph, limits, cache, &search)
            .map_err(|SearchTimedOut| TimedOut)?;
        if raw.is_empty() {
            result.orphans.push(root);
        } else {
            result.edges.push(EdgeCandidates {
                edge_index,
                gov: None,
                dep: root,
                paths: to_candidates(&raw, edge_index, &[], graph),
            });
            edge_index += 1;
        }
    }

    // Real dependency edges.
    for qe in &query.edges {
        deadline.check()?;
        let raw = between_edge_paths(qe.gov, qe.dep, w2a, graph, limits, cache, &search)
            .map_err(|SearchTimedOut| TimedOut)?;
        if raw.is_empty() {
            result.orphans.push(qe.dep);
        } else {
            let affine = affinity_apis(&qe.rel);
            result.edges.push(EdgeCandidates {
                edge_index,
                gov: Some(qe.gov),
                dep: qe.dep,
                paths: to_candidates(&raw, edge_index, &affine, graph),
            });
            edge_index += 1;
        }
    }

    // Unattached nodes are orphans too.
    for u in query.unattached() {
        if !result.orphans.contains(&u) {
            result.orphans.push(u);
        }
    }
    Ok(result)
}

/// Adds a root pseudo-edge for an orphan node — the HISyn treatment
/// ("regards an orphan node as the child of the root", searching all paths
/// from the grammar root to the orphan's candidate APIs).
pub fn attach_orphan_to_root(
    map: &mut EdgeToPath,
    orphan: usize,
    w2a: &WordToApi,
    graph: &GrammarGraph,
    limits: SearchLimits,
) {
    attach_orphan_to_root_cached(map, orphan, w2a, graph, limits, &mut PathCache::new())
}

/// [`attach_orphan_to_root`] through an external [`PathCache`], so orphan
/// attachment shares the same per-query and cross-query memo as
/// [`compute_cached`].
pub fn attach_orphan_to_root_cached(
    map: &mut EdgeToPath,
    orphan: usize,
    w2a: &WordToApi,
    graph: &GrammarGraph,
    limits: SearchLimits,
    cache: &mut PathCache,
) {
    attach_orphan_to_root_deadline(
        map,
        orphan,
        w2a,
        graph,
        limits,
        cache,
        &Deadline::new(std::time::Duration::MAX),
    )
    .expect("unbounded search cannot time out")
}

/// [`attach_orphan_to_root_cached`] under a per-query [`Deadline`]: the
/// budget is checked before the attachment search starts (an expired query
/// leaves `map` untouched and nothing cached); a started search runs to
/// completion and is memoized, as in [`compute_deadline`].
#[allow(clippy::too_many_arguments)]
pub fn attach_orphan_to_root_deadline(
    map: &mut EdgeToPath,
    orphan: usize,
    w2a: &WordToApi,
    graph: &GrammarGraph,
    limits: SearchLimits,
    cache: &mut PathCache,
    deadline: &Deadline,
) -> Result<(), TimedOut> {
    deadline.check()?;
    let edge_index = map.edges.len();
    let raw = root_edge_paths(
        orphan,
        w2a,
        graph,
        limits,
        cache,
        &SearchDeadline::unbounded(),
    )
    .map_err(|SearchTimedOut| TimedOut)?;
    if !raw.is_empty() {
        map.edges.push(EdgeCandidates {
            edge_index,
            gov: None,
            dep: orphan,
            paths: to_candidates(&raw, edge_index, &[], graph),
        });
        map.orphans.retain(|&o| o != orphan);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QueryEdge, QueryNode};
    use nlquery_nlp::{ApiCandidate, ApiDoc, DepRel, Pos};

    fn domain() -> Domain {
        let graph = GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg
            insert_arg ::= string pos
            string     ::= STRING
            pos        ::= POSITION | START
            "#,
        )
        .unwrap();
        Domain::builder("t")
            .graph(graph)
            .docs(vec![
                ApiDoc::new("INSERT", &["insert"], "inserts", 0),
                ApiDoc::new("STRING", &["string"], "a string", 1),
                ApiDoc::new("POSITION", &["position"], "a position", 1),
                ApiDoc::new("START", &["start"], "the start", 0),
            ])
            .build()
            .unwrap()
    }

    fn qnode(id: usize, word: &str) -> QueryNode {
        QueryNode {
            id,
            words: vec![word.to_string()],
            pos: Pos::Noun,
            literal: None,
        }
    }

    fn cand(api: &str) -> ApiCandidate {
        ApiCandidate {
            api: api.to_string(),
            score: 1.0,
        }
    }

    fn setup() -> (QueryGraph, WordToApi) {
        let q = QueryGraph {
            nodes: vec![qnode(0, "insert"), qnode(1, "string"), qnode(2, "start")],
            edges: vec![
                QueryEdge {
                    gov: 0,
                    dep: 1,
                    rel: DepRel::Obj,
                },
                QueryEdge {
                    gov: 0,
                    dep: 2,
                    rel: DepRel::Nmod("at".into()),
                },
            ],
            root: Some(0),
        };
        let w2a = WordToApi {
            candidates: vec![
                vec![cand("INSERT")],
                vec![cand("STRING")],
                vec![cand("START"), cand("POSITION")],
            ],
        };
        (q, w2a)
    }

    #[test]
    fn computes_root_edge_and_real_edges() {
        let d = domain();
        let (q, w2a) = setup();
        let map = compute(&q, &w2a, &d, SearchLimits::default());
        assert_eq!(map.edges.len(), 3);
        assert_eq!(map.edges[0].gov, None);
        assert_eq!(map.edges[0].dep, 0);
        assert_eq!(map.edges[0].paths.len(), 1); // root -> INSERT
        assert_eq!(map.edges[1].paths.len(), 1); // INSERT -> STRING
        assert_eq!(map.edges[2].paths.len(), 2); // INSERT -> {START, POSITION}
        assert!(map.orphans.is_empty());
        assert_eq!(map.total_paths(), 4);
        assert!((map.combination_count() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ambiguous_candidates_multiply_paths() {
        let d = domain();
        let (q, mut w2a) = setup();
        // Give "start" an extra bogus candidate that has no path.
        w2a.candidates[2].push(cand("STRING"));
        let map = compute(&q, &w2a, &d, SearchLimits::default());
        // STRING adds one more INSERT->STRING path on edge 2.
        assert_eq!(map.edges[2].paths.len(), 3);
    }

    #[test]
    fn unreachable_dependent_is_orphan() {
        let d = domain();
        let (mut q, mut w2a) = setup();
        q.edges.push(QueryEdge {
            gov: 1,
            dep: 2,
            rel: DepRel::Obj,
        });
        q.edges.remove(1); // now: insert->string, string->start
        w2a.candidates[2] = vec![cand("START")];
        let map = compute(&q, &w2a, &d, SearchLimits::default());
        // STRING is not an ancestor of START.
        assert_eq!(map.orphans, vec![2]);
    }

    #[test]
    fn orphan_can_attach_to_root() {
        let d = domain();
        let g = d.graph();
        let (mut q, w2a) = setup();
        q.edges.remove(1);
        q.edges.push(QueryEdge {
            gov: 1,
            dep: 2,
            rel: DepRel::Obj,
        });
        let mut map = compute(&q, &w2a, &d, SearchLimits::default());
        assert_eq!(map.orphans, vec![2]);
        attach_orphan_to_root(&mut map, 2, &w2a, g, SearchLimits::default());
        assert!(map.orphans.is_empty());
        let last = map.edges.last().unwrap();
        assert_eq!(last.dep, 2);
        assert!(last.paths.iter().all(|p| p.gov_api.is_none()));
        // Root->START and root->POSITION paths exist.
        assert_eq!(last.paths.len(), 2);
    }

    #[test]
    fn unattached_node_is_orphan() {
        let d = domain();
        let (mut q, mut w2a) = setup();
        q.nodes.push(qnode(3, "stray"));
        w2a.candidates.push(vec![cand("POSITION")]);
        let map = compute(&q, &w2a, &d, SearchLimits::default());
        assert!(map.orphans.contains(&3));
    }

    #[test]
    fn rootless_graph_yields_empty_map() {
        let d = domain();
        let q = QueryGraph::default();
        let w2a = WordToApi::default();
        let map = compute(&q, &w2a, &d, SearchLimits::default());
        assert!(map.edges.is_empty());
        assert!(map.orphans.is_empty());
    }

    #[test]
    fn shared_cache_hits_on_repeated_structure() {
        let d = domain();
        let (q, w2a) = setup();
        let shared = std::sync::Arc::new(SharedPathCache::new(64));

        let mut cold = PathCache::with_shared(std::sync::Arc::clone(&shared));
        let a = compute_cached(&q, &w2a, &d, SearchLimits::default(), &mut cold);
        assert_eq!(cold.shared_hits(), 0);
        assert_eq!(cold.shared_misses(), 3); // root + 2 real edges

        let mut warm = PathCache::with_shared(std::sync::Arc::clone(&shared));
        let b = compute_cached(&q, &w2a, &d, SearchLimits::default(), &mut warm);
        assert_eq!(warm.shared_hits(), 3, "every edge is memoized");
        assert_eq!(warm.shared_misses(), 0);
        assert_eq!(a, b, "memoized results are identical to computed ones");
    }

    #[test]
    fn memo_keys_of_empty_graph_are_empty() {
        let d = domain();
        let q = QueryGraph::default();
        let w2a = WordToApi::default();
        assert!(memo_keys(&q, &w2a, &d, SearchLimits::default()).is_empty());
    }

    #[test]
    fn expired_deadline_stops_edge_search_before_it_starts() {
        // 24 stacked diamonds: 2^24 root→SINK paths under a permissive
        // max_paths. The edge-boundary poll must fire *before* the search
        // is launched — once started, a search runs to completion, so an
        // expired budget letting it start would hog the worker for ages.
        let mut src = String::new();
        for i in 0..24 {
            let next = if i == 23 {
                "last".to_string()
            } else {
                format!("s{}", i + 1)
            };
            src.push_str(&format!("s{i} ::= A{i} {next} | B{i} {next}\n"));
        }
        src.push_str("last ::= SINK\n");
        let graph = GrammarGraph::parse(&src).unwrap();
        let mut docs = vec![ApiDoc::new("SINK", &["sink"], "the sink", 0)];
        for i in 0..24 {
            docs.push(ApiDoc::new(&format!("A{i}"), &["alpha"], "left arm", 0));
            docs.push(ApiDoc::new(&format!("B{i}"), &["beta"], "right arm", 0));
        }
        let d = Domain::builder("explode")
            .graph(graph)
            .docs(docs)
            .build()
            .unwrap();
        let q = QueryGraph {
            nodes: vec![qnode(0, "sink")],
            edges: vec![],
            root: Some(0),
        };
        let w2a = WordToApi {
            candidates: vec![vec![cand("SINK")]],
        };
        let limits = SearchLimits {
            max_paths: usize::MAX,
            max_depth: 64,
        };
        let mut cache = PathCache::new();
        let started = std::time::Instant::now();
        let r = compute_deadline(
            &q,
            &w2a,
            &d,
            limits,
            &mut cache,
            &Deadline::new(std::time::Duration::ZERO),
        );
        assert_eq!(r, Err(TimedOut));
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "timed-out search still ran {:?}",
            started.elapsed()
        );
        assert!(
            cache.from_root.is_empty() && cache.between.is_empty(),
            "timed-out search must not be memoized"
        );
    }

    #[test]
    fn shared_cache_does_not_change_results() {
        let d = domain();
        let (q, w2a) = setup();
        let shared = std::sync::Arc::new(SharedPathCache::new(64));
        let plain = compute(&q, &w2a, &d, SearchLimits::default());
        for _ in 0..3 {
            let mut cache = PathCache::with_shared(std::sync::Arc::clone(&shared));
            let cached = compute_cached(&q, &w2a, &d, SearchLimits::default(), &mut cache);
            assert_eq!(plain, cached);
        }
    }
}
