//! Step 4 — EdgeToPath: candidate grammar paths per dependency edge.
//!
//! For every edge `gov → dep` of the pruned query graph, the reversed
//! all-path search finds every grammar path connecting a candidate API of
//! `gov` to a candidate API of `dep`. The dependency root gets a *pseudo
//! edge* from the grammar root. Edges for which **no** candidate pair is
//! connected mark their dependent as an *orphan node* (§V-B).

use std::collections::HashMap;

use nlquery_grammar::{GrammarGraph, GrammarPath, NodeId, PathId, SearchLimits};
use nlquery_nlp::DepRel;

use crate::{Domain, QueryGraph, WordToApi};

/// Minimum matcher score at which a preposition "claims" an API for the
/// relation-affinity bonus ("before" → `BEFORE`).
const AFFINITY_MIN_SCORE: f64 = 0.7;

/// Score bonus (milli-units) granted to a path that passes through an API
/// the edge's preposition names.
const AFFINITY_BONUS: u64 = 300;

/// Memo for path searches within one query: orphan relocation re-runs
/// EdgeToPath on several graph variants whose edges mostly repeat the same
/// (source, sink) pairs.
#[derive(Debug, Default)]
pub struct PathCache {
    between: HashMap<(NodeId, NodeId), Vec<GrammarPath>>,
    from_root: HashMap<NodeId, Vec<GrammarPath>>,
}

impl PathCache {
    /// Creates an empty cache.
    pub fn new() -> PathCache {
        PathCache::default()
    }

    fn between(
        &mut self,
        graph: &GrammarGraph,
        from: NodeId,
        to: NodeId,
        limits: SearchLimits,
    ) -> &[GrammarPath] {
        self.between
            .entry((from, to))
            .or_insert_with(|| graph.paths_between(from, to, limits))
    }

    fn from_root(
        &mut self,
        graph: &GrammarGraph,
        to: NodeId,
        limits: SearchLimits,
    ) -> &[GrammarPath] {
        self.from_root
            .entry(to)
            .or_insert_with(|| graph.paths_from_root(to, limits))
    }
}

/// One candidate grammar path for a dependency edge.
#[derive(Debug, Clone, PartialEq)]
pub struct PathCandidate {
    /// The paper-style path id (`edge.path`).
    pub id: PathId,
    /// The governor-side API node; `None` when the path starts at the
    /// grammar root (root pseudo-edge, HISyn orphan attachment).
    pub gov_api: Option<NodeId>,
    /// The dependent-side API node (the path's sink).
    pub dep_api: NodeId,
    /// Relation-affinity bonus (milli-units): granted when the dependency
    /// edge's preposition semantically names an API on this path
    /// ("split … *before* X" prefers paths through `BEFORE`).
    pub bonus_milli: u64,
    /// The path itself.
    pub path: GrammarPath,
}

/// All path candidates of one dependency edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeCandidates {
    /// Edge index within the [`EdgeToPath`] (0 is the root pseudo-edge).
    pub edge_index: usize,
    /// Governor query node; `None` for the root pseudo-edge and for
    /// root-attached orphans.
    pub gov: Option<usize>,
    /// Dependent query node.
    pub dep: usize,
    /// Candidate paths.
    pub paths: Vec<PathCandidate>,
}

/// The EdgeToPath map plus orphan diagnosis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeToPath {
    /// Per-edge candidates. Edge 0 is the root pseudo-edge; real edges
    /// follow in query-graph edge order (edges with no paths are omitted —
    /// their dependents appear in [`EdgeToPath::orphans`]).
    pub edges: Vec<EdgeCandidates>,
    /// Query nodes unreachable from their governor (or unattached in the
    /// parse): the orphan nodes.
    pub orphans: Vec<usize>,
}

impl EdgeToPath {
    /// Total number of candidate paths across all edges.
    pub fn total_paths(&self) -> usize {
        self.edges.iter().map(|e| e.paths.len()).sum()
    }

    /// Product over edges of per-edge path counts — the theoretical
    /// combination count `Π_l p_l^{e_l}` of §III-A (as `f64`; it overflows
    /// integers on hard queries).
    pub fn combination_count(&self) -> f64 {
        self.edges
            .iter()
            .filter(|e| !e.paths.is_empty())
            .map(|e| e.paths.len() as f64)
            .product()
    }

    /// The edge whose dependent is `dep`, if present.
    pub fn edge_for(&self, dep: usize) -> Option<&EdgeCandidates> {
        self.edges.iter().find(|e| e.dep == dep)
    }
}

/// Computes the EdgeToPath map for a pruned query graph.
///
/// `limits` bounds the reversed all-path search. Orphans are *diagnosed*
/// here; attaching them (to the grammar root à la HISyn, or by relocation à
/// la DGGT) is the caller's decision.
pub fn compute(
    query: &QueryGraph,
    w2a: &WordToApi,
    domain: &Domain,
    limits: SearchLimits,
) -> EdgeToPath {
    compute_cached(query, w2a, domain, limits, &mut PathCache::new())
}

/// [`compute`] with an external [`PathCache`], reused across orphan
/// relocation variants of the same query.
pub fn compute_cached(
    query: &QueryGraph,
    w2a: &WordToApi,
    domain: &Domain,
    limits: SearchLimits,
    cache: &mut PathCache,
) -> EdgeToPath {
    let graph = domain.graph();
    let mut result = EdgeToPath::default();
    let mut edge_index = 0;

    // APIs named by a preposition ("before" → BEFORE): paths through them
    // get a score bonus on edges labelled with that preposition.
    let affinity_apis = |rel: &DepRel| -> Vec<NodeId> {
        let DepRel::Nmod(prep) = rel else {
            return Vec::new();
        };
        domain
            .matcher()
            .candidates(prep, 4, AFFINITY_MIN_SCORE)
            .into_iter()
            .filter_map(|c| graph.api_node(&c.api))
            .collect()
    };

    // Sort an edge's candidates by ascending path size (then chain) and cap
    // the total per edge: the shortest paths are the ones the smallest-CGT
    // objective can use; the cap bounds the per-edge fan-out on very
    // permissive grammars.
    let finalize = |paths: &mut Vec<PathCandidate>, edge_index: usize| {
        paths.sort_by_key(|pc| (pc.path.size(graph), pc.path.chain.clone()));
        paths.truncate(limits.max_paths);
        for (i, pc) in paths.iter_mut().enumerate() {
            pc.id = PathId {
                edge: edge_index as u32,
                path: i as u32,
            };
        }
    };

    // Root pseudo-edge.
    if let Some(root) = query.root {
        let mut paths = Vec::new();
        for cand in w2a.of(root) {
            if let Some(api) = graph.api_node(&cand.api) {
                for p in cache.from_root(graph, api, limits) {
                    paths.push(PathCandidate {
                        id: PathId { edge: 0, path: 0 },
                        gov_api: None,
                        dep_api: api,
                        bonus_milli: 0,
                        path: p.clone(),
                    });
                }
            }
        }
        if paths.is_empty() {
            result.orphans.push(root);
        } else {
            finalize(&mut paths, edge_index);
            result.edges.push(EdgeCandidates {
                edge_index,
                gov: None,
                dep: root,
                paths,
            });
            edge_index += 1;
        }
    }

    // Real dependency edges.
    for qe in &query.edges {
        let affine = affinity_apis(&qe.rel);
        let mut paths = Vec::new();
        for gc in w2a.of(qe.gov) {
            let Some(ga) = graph.api_node(&gc.api) else {
                continue;
            };
            for dc in w2a.of(qe.dep) {
                let Some(da) = graph.api_node(&dc.api) else {
                    continue;
                };
                for p in cache.between(graph, ga, da, limits) {
                    let bonus = if !affine.is_empty()
                        && p.api_nodes(graph).iter().any(|n| affine.contains(n))
                    {
                        AFFINITY_BONUS
                    } else {
                        0
                    };
                    paths.push(PathCandidate {
                        id: PathId { edge: 0, path: 0 },
                        gov_api: Some(ga),
                        dep_api: da,
                        bonus_milli: bonus,
                        path: p.clone(),
                    });
                }
            }
        }
        if paths.is_empty() {
            result.orphans.push(qe.dep);
        } else {
            finalize(&mut paths, edge_index);
            result.edges.push(EdgeCandidates {
                edge_index,
                gov: Some(qe.gov),
                dep: qe.dep,
                paths,
            });
            edge_index += 1;
        }
    }

    // Unattached nodes are orphans too.
    for u in query.unattached() {
        if !result.orphans.contains(&u) {
            result.orphans.push(u);
        }
    }
    result
}

/// Adds a root pseudo-edge for an orphan node — the HISyn treatment
/// ("regards an orphan node as the child of the root", searching all paths
/// from the grammar root to the orphan's candidate APIs).
pub fn attach_orphan_to_root(
    map: &mut EdgeToPath,
    orphan: usize,
    w2a: &WordToApi,
    graph: &GrammarGraph,
    limits: SearchLimits,
) {
    let edge_index = map.edges.len();
    let mut paths = Vec::new();
    for cand in w2a.of(orphan) {
        if let Some(api) = graph.api_node(&cand.api) {
            for p in graph.paths_from_root(api, limits) {
                paths.push(PathCandidate {
                    id: PathId { edge: 0, path: 0 },
                    gov_api: None,
                    dep_api: api,
                    bonus_milli: 0,
                    path: p,
                });
            }
        }
    }
    paths.sort_by_key(|pc| (pc.path.size(graph), pc.path.chain.clone()));
    paths.truncate(limits.max_paths);
    for (i, pc) in paths.iter_mut().enumerate() {
        pc.id = PathId {
            edge: edge_index as u32,
            path: i as u32,
        };
    }
    if !paths.is_empty() {
        map.edges.push(EdgeCandidates {
            edge_index,
            gov: None,
            dep: orphan,
            paths,
        });
        map.orphans.retain(|&o| o != orphan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QueryEdge, QueryNode};
    use nlquery_nlp::{ApiCandidate, ApiDoc, DepRel, Pos};

    fn domain() -> Domain {
        let graph = GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg
            insert_arg ::= string pos
            string     ::= STRING
            pos        ::= POSITION | START
            "#,
        )
        .unwrap();
        Domain::builder("t")
            .graph(graph)
            .docs(vec![
                ApiDoc::new("INSERT", &["insert"], "inserts", 0),
                ApiDoc::new("STRING", &["string"], "a string", 1),
                ApiDoc::new("POSITION", &["position"], "a position", 1),
                ApiDoc::new("START", &["start"], "the start", 0),
            ])
            .build()
            .unwrap()
    }

    fn qnode(id: usize, word: &str) -> QueryNode {
        QueryNode {
            id,
            words: vec![word.to_string()],
            pos: Pos::Noun,
            literal: None,
        }
    }

    fn cand(api: &str) -> ApiCandidate {
        ApiCandidate {
            api: api.to_string(),
            score: 1.0,
        }
    }

    fn setup() -> (QueryGraph, WordToApi) {
        let q = QueryGraph {
            nodes: vec![qnode(0, "insert"), qnode(1, "string"), qnode(2, "start")],
            edges: vec![
                QueryEdge { gov: 0, dep: 1, rel: DepRel::Obj },
                QueryEdge { gov: 0, dep: 2, rel: DepRel::Nmod("at".into()) },
            ],
            root: Some(0),
        };
        let w2a = WordToApi {
            candidates: vec![
                vec![cand("INSERT")],
                vec![cand("STRING")],
                vec![cand("START"), cand("POSITION")],
            ],
        };
        (q, w2a)
    }

    #[test]
    fn computes_root_edge_and_real_edges() {
        let d = domain();
        let g = d.graph();
        let (q, w2a) = setup();
        let map = compute(&q, &w2a, &d, SearchLimits::default());
        assert_eq!(map.edges.len(), 3);
        assert_eq!(map.edges[0].gov, None);
        assert_eq!(map.edges[0].dep, 0);
        assert_eq!(map.edges[0].paths.len(), 1); // root -> INSERT
        assert_eq!(map.edges[1].paths.len(), 1); // INSERT -> STRING
        assert_eq!(map.edges[2].paths.len(), 2); // INSERT -> {START, POSITION}
        assert!(map.orphans.is_empty());
        assert_eq!(map.total_paths(), 4);
        assert!((map.combination_count() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ambiguous_candidates_multiply_paths() {
        let d = domain();
        let g = d.graph();
        let (q, mut w2a) = setup();
        // Give "start" an extra bogus candidate that has no path.
        w2a.candidates[2].push(cand("STRING"));
        let map = compute(&q, &w2a, &d, SearchLimits::default());
        // STRING adds one more INSERT->STRING path on edge 2.
        assert_eq!(map.edges[2].paths.len(), 3);
    }

    #[test]
    fn unreachable_dependent_is_orphan() {
        let d = domain();
        let g = d.graph();
        let (mut q, mut w2a) = setup();
        q.edges.push(QueryEdge { gov: 1, dep: 2, rel: DepRel::Obj });
        q.edges.remove(1); // now: insert->string, string->start
        w2a.candidates[2] = vec![cand("START")];
        let map = compute(&q, &w2a, &d, SearchLimits::default());
        // STRING is not an ancestor of START.
        assert_eq!(map.orphans, vec![2]);
    }

    #[test]
    fn orphan_can_attach_to_root() {
        let d = domain();
        let g = d.graph();
        let (mut q, w2a) = setup();
        q.edges.remove(1);
        q.edges.push(QueryEdge { gov: 1, dep: 2, rel: DepRel::Obj });
        let mut map = compute(&q, &w2a, &d, SearchLimits::default());
        assert_eq!(map.orphans, vec![2]);
        attach_orphan_to_root(&mut map, 2, &w2a, g, SearchLimits::default());
        assert!(map.orphans.is_empty());
        let last = map.edges.last().unwrap();
        assert_eq!(last.dep, 2);
        assert!(last.paths.iter().all(|p| p.gov_api.is_none()));
        // Root->START and root->POSITION paths exist.
        assert_eq!(last.paths.len(), 2);
    }

    #[test]
    fn unattached_node_is_orphan() {
        let d = domain();
        let g = d.graph();
        let (mut q, mut w2a) = setup();
        q.nodes.push(qnode(3, "stray"));
        w2a.candidates.push(vec![cand("POSITION")]);
        let map = compute(&q, &w2a, &d, SearchLimits::default());
        assert!(map.orphans.contains(&3));
    }

    #[test]
    fn rootless_graph_yields_empty_map() {
        let d = domain();
        let g = d.graph();
        let q = QueryGraph::default();
        let w2a = WordToApi::default();
        let map = compute(&q, &w2a, &d, SearchLimits::default());
        assert!(map.edges.is_empty());
        assert!(map.orphans.is_empty());
    }
}
