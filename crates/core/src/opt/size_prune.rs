//! Size-based pruning (§V-C).
//!
//! For a combination `c = {p₁ … pₙ}` of candidate paths, the merged size
//! is bounded without merging:
//!
//! ```text
//! max_i size(pᵢ)  ≤  size(c)  ≤  Σ size(pᵢ) − (n − 1)
//! ```
//!
//! The upper bound is reached when only the shared source API merges; the
//! lower bound when paths overlap maximally. Across all combinations
//! `C = {c₁ … cₘ}`, any `c` with `c.lower > min_j(cⱼ.upper)` cannot be the
//! minimum and is pruned before merging.

/// Cheap size bounds of a path combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComboBounds {
    /// Lower bound on the merged combination's API count.
    pub lower: usize,
    /// Upper bound on the merged combination's API count.
    pub upper: usize,
}

/// Computes [`ComboBounds`] from the APIs-per-path sizes of a combination.
///
/// # Panics
///
/// Panics if `path_sizes` is empty.
pub fn bounds(path_sizes: &[usize]) -> ComboBounds {
    assert!(
        !path_sizes.is_empty(),
        "a combination has at least one path"
    );
    let lower = *path_sizes.iter().max().expect("non-empty");
    let sum: usize = path_sizes.iter().sum();
    let upper = sum.saturating_sub(path_sizes.len() - 1);
    ComboBounds {
        lower,
        upper: upper.max(lower),
    }
}

/// Seeds the DGGT sibling-enumeration's running upper bound *before* the
/// first combination is visited.
///
/// `min_costs[i]` is the cheapest combined cost (`size_excluding_sink +
/// child_best_size`) of any option for sibling `i`; picking each sibling's
/// cheapest option independently yields the smallest per-combination upper
/// bound `Σ cost_i − (n − 1)` the enumeration could ever reach, so
/// combinations whose lower bound already exceeds it die on arrival
/// instead of after `O(product)` odometer steps each tightening the bound
/// from `usize::MAX`. Returns `usize::MAX` for an empty slice (nothing to
/// bound).
pub fn seed_min_upper(min_costs: &[usize]) -> usize {
    if min_costs.is_empty() {
        return usize::MAX;
    }
    let sum: usize = min_costs.iter().sum();
    sum.saturating_sub(min_costs.len() - 1)
}

/// Returns the indices of combinations that survive size-based pruning:
/// those whose lower bound does not exceed the smallest upper bound
/// (`C.min_size` in the paper's notation).
pub fn survivors(all: &[ComboBounds]) -> Vec<usize> {
    let Some(min_upper) = all.iter().map(|b| b.upper).min() else {
        return Vec::new();
    };
    all.iter()
        .enumerate()
        .filter(|(_, b)| b.lower <= min_upper)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_single_path() {
        let b = bounds(&[5]);
        assert_eq!(b, ComboBounds { lower: 5, upper: 5 });
    }

    #[test]
    fn bounds_multi_path() {
        // Paths of sizes 3, 2, 2: upper = 7 - 2 = 5, lower = 3.
        let b = bounds(&[3, 2, 2]);
        assert_eq!(b.lower, 3);
        assert_eq!(b.upper, 5);
    }

    #[test]
    fn upper_never_below_lower() {
        // Degenerate all-ones combination: sum - (n-1) = 1.
        let b = bounds(&[1, 1, 1, 1]);
        assert_eq!(b.lower, 1);
        assert_eq!(b.upper, 1);
    }

    #[test]
    fn paper_example_prunes_larger_combo() {
        // §V-C: c1 has min=max=5, c2 has min=max=6 → c2 pruned.
        let c1 = ComboBounds { lower: 5, upper: 5 };
        let c2 = ComboBounds { lower: 6, upper: 6 };
        assert_eq!(survivors(&[c1, c2]), vec![0]);
    }

    #[test]
    fn overlapping_bounds_all_survive() {
        let c1 = ComboBounds { lower: 3, upper: 8 };
        let c2 = ComboBounds { lower: 5, upper: 6 };
        assert_eq!(survivors(&[c1, c2]), vec![0, 1]);
    }

    #[test]
    fn empty_input_yields_no_survivors() {
        assert!(survivors(&[]).is_empty());
    }

    #[test]
    fn seed_is_cheapest_reachable_upper() {
        // Three siblings whose cheapest options cost 3, 2, 4:
        // upper = 9 - 2 = 7.
        assert_eq!(seed_min_upper(&[3, 2, 4]), 7);
        assert_eq!(seed_min_upper(&[5]), 5);
        assert_eq!(seed_min_upper(&[]), usize::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn bounds_reject_empty() {
        bounds(&[]);
    }
}
