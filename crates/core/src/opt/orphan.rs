//! Orphan-node relocation (§V-B).
//!
//! When a dependency edge `n₁ → n₂` has no candidate grammar path, `n₁` is
//! not the real governor of `n₂` — `n₂` is an *orphan*. HISyn attaches
//! orphans to the grammar root, which explodes the candidate path count.
//! Relocation instead consults the grammar: if some candidate API of a
//! non-orphan node `m` is a grammar *ancestor* of a candidate API of the
//! orphan, an edge `m → n₂` plausibly belongs in the dependency graph. One
//! augmented query graph is produced per plausible location (capped); the
//! synthesizer runs on each and keeps the smallest CGT.

use nlquery_grammar::GrammarGraph;
use nlquery_nlp::DepRel;

use crate::{QueryEdge, QueryGraph, WordToApi};

/// A plausible new governor for an orphan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    /// The orphan query node.
    pub orphan: usize,
    /// The proposed governor query node.
    pub governor: usize,
}

/// Finds the plausible governors of `orphan`, best-first.
///
/// A node `m` qualifies when one of its candidate APIs is a grammar
/// ancestor of one of the orphan's candidate APIs. Candidates are ordered
/// deepest-first (more specific governors first) and exclude other orphans.
pub fn locations_for(
    orphan: usize,
    orphans: &[usize],
    query: &QueryGraph,
    w2a: &WordToApi,
    graph: &GrammarGraph,
) -> Vec<Location> {
    let mut depth_of = vec![usize::MAX; query.nodes.len()];
    for (d, level) in query.levels().iter().enumerate() {
        for &n in level {
            depth_of[n] = d;
        }
    }
    let mut found: Vec<(usize, Location)> = Vec::new();
    for (m, &depth) in depth_of.iter().enumerate() {
        if m == orphan || orphans.contains(&m) || depth == usize::MAX {
            continue;
        }
        let qualifies = w2a.of(m).iter().any(|gc| {
            graph.api_node(&gc.api).is_some_and(|ga| {
                w2a.of(orphan).iter().any(|oc| {
                    graph
                        .api_node(&oc.api)
                        .is_some_and(|oa| graph.is_api_descendant(ga, oa))
                })
            })
        });
        if qualifies {
            found.push((
                depth_of[m],
                Location {
                    orphan,
                    governor: m,
                },
            ));
        }
    }
    // Deepest governors first; ties by node order for determinism.
    found.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.governor.cmp(&b.1.governor)));
    found.into_iter().map(|(_, l)| l).collect()
}

/// One per-orphan choice when building variants: a new governor, or
/// dropping the orphan from the synthesis problem entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Placement {
    Relocate(Location),
    Drop(usize),
}

/// A relocated query-graph variant plus the orphans it dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// The rewired query graph.
    pub graph: QueryGraph,
    /// Orphans excluded from the problem in this variant (their subtree
    /// semantics are given up — a last resort when every placement makes
    /// the problem infeasible, e.g. "the first word of *every* line" where
    /// "first" and "every" compete for the same occurrence slot).
    pub dropped: Vec<usize>,
}

/// Builds the augmented query-graph variants for a set of orphans.
///
/// Each variant picks one placement per orphan: a plausible governor
/// (best-first), or — ranked last — dropping the orphan. The cartesian
/// product is capped at `max_variants`. Orphans with no plausible location
/// at all keep their original detached state (the pipeline root-attaches
/// them).
pub fn relocation_variants(
    query: &QueryGraph,
    orphans: &[usize],
    w2a: &WordToApi,
    graph: &GrammarGraph,
    max_variants: usize,
) -> Vec<Variant> {
    let per_orphan: Vec<Vec<Placement>> = orphans
        .iter()
        .map(|&o| {
            let mut options: Vec<Placement> = locations_for(o, orphans, query, w2a, graph)
                .into_iter()
                .map(Placement::Relocate)
                .collect();
            if !options.is_empty() {
                options.push(Placement::Drop(o));
            }
            options
        })
        .filter(|opts| !opts.is_empty())
        .collect();
    if per_orphan.is_empty() {
        return Vec::new();
    }
    // Best-first cartesian product, capped.
    let mut variants = Vec::new();
    let mut indices = vec![0usize; per_orphan.len()];
    loop {
        let mut g = query.clone();
        let mut dropped = Vec::new();
        for (opts, &idx) in per_orphan.iter().zip(&indices) {
            match &opts[idx] {
                Placement::Relocate(loc) => {
                    // Detach any existing edge to the orphan, then
                    // re-attach.
                    g.edges.retain(|e| e.dep != loc.orphan);
                    g.edges.push(QueryEdge {
                        gov: loc.governor,
                        dep: loc.orphan,
                        rel: DepRel::Obj,
                    });
                }
                Placement::Drop(o) => {
                    g.edges.retain(|e| e.dep != *o && e.gov != *o);
                    dropped.push(*o);
                }
            }
        }
        variants.push(Variant { graph: g, dropped });
        if variants.len() >= max_variants {
            break;
        }
        // Odometer increment.
        let mut pos = per_orphan.len();
        loop {
            if pos == 0 {
                return variants;
            }
            pos -= 1;
            indices[pos] += 1;
            if indices[pos] < per_orphan[pos].len() {
                break;
            }
            indices[pos] = 0;
        }
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlquery_nlp::{ApiCandidate, Pos};

    use crate::QueryNode;

    fn graph() -> GrammarGraph {
        GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg | DELETE delete_arg
            insert_arg ::= string pos iter
            delete_arg ::= string
            string     ::= STRING
            pos        ::= START | POSITION
            iter       ::= LINESCOPE
            "#,
        )
        .unwrap()
    }

    fn qnode(id: usize, word: &str) -> QueryNode {
        QueryNode {
            id,
            words: vec![word.to_string()],
            pos: Pos::Noun,
            literal: None,
        }
    }

    fn cand(api: &str) -> ApiCandidate {
        ApiCandidate {
            api: api.to_string(),
            score: 1.0,
        }
    }

    /// insert -> string, with "start" and "line" unattached (orphans), as
    /// in Figure 6 of the paper.
    fn setup() -> (QueryGraph, WordToApi) {
        let q = QueryGraph {
            nodes: vec![
                qnode(0, "insert"),
                qnode(1, "string"),
                qnode(2, "start"),
                qnode(3, "line"),
            ],
            edges: vec![QueryEdge {
                gov: 0,
                dep: 1,
                rel: nlquery_nlp::DepRel::Obj,
            }],
            root: Some(0),
        };
        let w2a = WordToApi {
            candidates: vec![
                vec![cand("INSERT")],
                vec![cand("STRING")],
                vec![cand("START")],
                vec![cand("LINESCOPE")],
            ],
        };
        (q, w2a)
    }

    #[test]
    fn relocates_under_grammar_ancestor() {
        let g = graph();
        let (q, w2a) = setup();
        let locs = locations_for(2, &[2, 3], &q, &w2a, &g);
        // INSERT is the ancestor of START; "string" (STRING) is not.
        assert_eq!(locs.len(), 1);
        assert_eq!(locs[0].governor, 0);
    }

    #[test]
    fn variant_attaches_both_orphans() {
        let g = graph();
        let (q, w2a) = setup();
        let variants = relocation_variants(&q, &[2, 3], &w2a, &g, 8);
        // One governor each plus the drop fallback: 2×2 variants, the
        // all-relocate one first.
        assert_eq!(variants.len(), 4);
        assert!(variants[0].dropped.is_empty());
        assert_eq!(variants[3].dropped.len(), 2);
        let v = &variants[0];
        assert!(v.graph.unattached().is_empty(), "{}", v.graph.render());
        assert_eq!(v.graph.parent(2), Some(0));
        assert_eq!(v.graph.parent(3), Some(0));
    }

    #[test]
    fn no_location_yields_no_variants() {
        let g = graph();
        let (mut q, mut w2a) = setup();
        // Make the orphan's API unreachable from every non-orphan node.
        q.nodes.push(qnode(4, "mystery"));
        w2a.candidates = vec![
            vec![cand("STRING")], // "insert" now maps to STRING (leaf)
            vec![cand("STRING")],
            vec![],
            vec![],
            vec![cand("INSERT")],
        ];
        let variants = relocation_variants(&q, &[4], &w2a, &g, 8);
        assert!(variants.is_empty());
    }

    #[test]
    fn variants_capped() {
        let g = graph();
        let (mut q, mut w2a) = setup();
        // Two plausible governors for orphan "start": give node 1 an
        // INSERT candidate as well.
        w2a.candidates[1].push(cand("INSERT"));
        q.nodes.push(qnode(4, "pad"));
        w2a.candidates.push(vec![]);
        let variants = relocation_variants(&q, &[2, 3], &w2a, &g, 2);
        assert_eq!(variants.len(), 2);
        assert!(variants[0].dropped.is_empty());
    }

    #[test]
    fn deeper_governor_ranked_first() {
        let g = graph();
        let (mut q, mut w2a) = setup();
        // Node 1 ("string") also gets DELETE (ancestor of STRING — not of
        // START). Give it INSERT instead to make it a plausible governor
        // deeper than node 0.
        w2a.candidates[1] = vec![cand("INSERT")];
        q.edges[0].rel = nlquery_nlp::DepRel::Obj;
        let locs = locations_for(2, &[2], &q, &w2a, &g);
        assert_eq!(locs.first().map(|l| l.governor), Some(1));
    }
}
