//! The paper's search-space optimizations.
//!
//! * [`grammar_prune`] — grammar-based pruning (§V-A): combinations whose
//!   paths commit to conflicting "or" alternatives are grammatically
//!   impossible and never merged.
//! * [`size_prune`] — size-based pruning (§V-C): cheap min/max bounds on a
//!   combination's merged size rule out combinations that cannot beat the
//!   best known bound.
//! * [`orphan`] — orphan-node relocation (§V-B): dependency nodes whose
//!   governor has no grammar path to them are re-attached under their true
//!   governor using grammar ancestor/descendant knowledge.

pub mod grammar_prune;
pub mod orphan;
pub mod size_prune;
