//! Grammar-based pruning (§V-A).
//!
//! Given a set of "or" edges that share the same non-terminal as source,
//! only one may be selected in a valid CGT. Two candidate paths form a
//! *conflict paths pair* when merging them would select two different "or"
//! alternatives of the same non-terminal. Combinations containing any
//! conflict pair are pruned before the (expensive) merge.

use nlquery_grammar::{GrammarGraph, GrammarPath, NodeId};

/// The sorted list of "or" edges a path commits to — its conflict
/// signature.
pub fn or_signature(path: &GrammarPath, graph: &GrammarGraph) -> Vec<(NodeId, NodeId)> {
    let mut sig = path.or_edges(graph);
    sig.sort();
    sig.dedup();
    sig
}

/// Whether two signatures conflict: same non-terminal, different
/// derivation.
pub fn signatures_conflict(a: &[(NodeId, NodeId)], b: &[(NodeId, NodeId)]) -> bool {
    // Merge-join over sorted signatures.
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Same non-terminal: any differing derivation conflicts.
                let nt = a[i].0;
                let mut derivs_a = Vec::new();
                while i < a.len() && a[i].0 == nt {
                    derivs_a.push(a[i].1);
                    i += 1;
                }
                while j < b.len() && b[j].0 == nt {
                    if !derivs_a.contains(&b[j].1) {
                        return true;
                    }
                    j += 1;
                }
            }
        }
    }
    false
}

/// Whether a combination of paths (by signature index) contains a conflict
/// pair. `sigs` holds one signature per chosen path.
pub fn combination_conflicts(sigs: &[&Vec<(NodeId, NodeId)>]) -> bool {
    for i in 0..sigs.len() {
        for j in (i + 1)..sigs.len() {
            if signatures_conflict(sigs[i], sigs[j]) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlquery_grammar::SearchLimits;

    fn graph() -> GrammarGraph {
        GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg
            insert_arg ::= string pos
            string     ::= STRING
            pos        ::= POSITION | START
            "#,
        )
        .unwrap()
    }

    fn sig(g: &GrammarGraph, from: &str, to: &str) -> Vec<(NodeId, NodeId)> {
        let a = g.api_node(from).unwrap();
        let b = g.api_node(to).unwrap();
        let paths = g.paths_between(a, b, SearchLimits::default());
        or_signature(&paths[0], g)
    }

    #[test]
    fn alternative_positions_conflict() {
        let g = graph();
        let s1 = sig(&g, "INSERT", "START");
        let s2 = sig(&g, "INSERT", "POSITION");
        assert!(signatures_conflict(&s1, &s2));
        assert!(signatures_conflict(&s2, &s1));
    }

    #[test]
    fn compatible_paths_do_not_conflict() {
        let g = graph();
        let s1 = sig(&g, "INSERT", "START");
        let s2 = sig(&g, "INSERT", "STRING");
        assert!(!signatures_conflict(&s1, &s2));
    }

    #[test]
    fn self_is_never_conflicting() {
        let g = graph();
        let s = sig(&g, "INSERT", "START");
        assert!(!signatures_conflict(&s, &s));
    }

    #[test]
    fn combination_check_finds_any_pair() {
        let g = graph();
        let s1 = sig(&g, "INSERT", "STRING");
        let s2 = sig(&g, "INSERT", "START");
        let s3 = sig(&g, "INSERT", "POSITION");
        assert!(combination_conflicts(&[&s1, &s2, &s3]));
        assert!(!combination_conflicts(&[&s1, &s2]));
        assert!(!combination_conflicts(&[]));
    }

    #[test]
    fn empty_signatures_never_conflict() {
        assert!(!signatures_conflict(&[], &[]));
    }
}
