//! Target-domain definition: grammar + API documentation + literal policy.

use nlquery_grammar::GrammarGraph;
use nlquery_nlp::{ApiDoc, SemanticMatcher, SynonymLexicon};

use crate::SynthesisError;

/// A synthesis target domain.
///
/// Bundles the three inputs of an NLU-driven synthesizer (§II): the
/// context-free grammar (as a [`GrammarGraph`]), the API documentation (as
/// a [`SemanticMatcher`] built over [`ApiDoc`]s), and domain policies for
/// literals.
#[derive(Debug, Clone)]
pub struct Domain {
    name: String,
    graph: GrammarGraph,
    matcher: SemanticMatcher,
    literal_api: Option<String>,
    quote_literals: bool,
    intent_verbs: Vec<String>,
    stopwords: Vec<String>,
}

impl Domain {
    /// Starts building a domain.
    pub fn builder(name: &str) -> DomainBuilder {
        DomainBuilder {
            name: name.to_string(),
            graph: None,
            docs: Vec::new(),
            synonyms: None,
            literal_api: None,
            quote_literals: false,
            stopwords: Vec::new(),
            intent_verbs: vec![
                "find".to_string(),
                "search".to_string(),
                "list".to_string(),
                "show".to_string(),
                "locate".to_string(),
                "give".to_string(),
                "look".to_string(),
            ],
        }
    }

    /// The domain name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The grammar graph.
    pub fn graph(&self) -> &GrammarGraph {
        &self.graph
    }

    /// The word↔API semantic matcher.
    pub fn matcher(&self) -> &SemanticMatcher {
        &self.matcher
    }

    /// The API that quoted string literals map to (e.g. `STRING` in the
    /// text-editing DSL), if the domain treats literals as standalone
    /// entities. When `None`, literals are folded into their governor word
    /// as slot payloads (e.g. `hasName("PI")`).
    pub fn literal_api(&self) -> Option<&str> {
        self.literal_api.as_deref()
    }

    /// Whether rendered expressions put quotes around literal arguments
    /// (`hasName("PI")` vs `STRING(:)`).
    pub fn quote_literals(&self) -> bool {
        self.quote_literals
    }

    /// Generic intent verbs ("find", "search"…) that carry no API of their
    /// own and are dropped by query-graph pruning when they match nothing.
    pub fn intent_verbs(&self) -> &[String] {
        &self.intent_verbs
    }

    /// Domain stopwords: words that must never map to an API even when
    /// they textually hit one (e.g. "all" hitting `isCatchAll` in the
    /// matcher domain).
    pub fn stopwords(&self) -> &[String] {
        &self.stopwords
    }

    /// Number of APIs in the domain (as listed in the documentation).
    pub fn api_count(&self) -> usize {
        self.matcher.docs().len()
    }

    /// Pre-resolves the word↔API lexicon for a known vocabulary (see
    /// [`SemanticMatcher::preresolve`]): WordToAPI lookups for those words
    /// become table lookups with results identical to the live path.
    /// Used by ahead-of-time domain compilation with the corpus
    /// vocabulary.
    pub fn preresolve_lexicon(&mut self, vocabulary: impl IntoIterator<Item = String>) {
        self.matcher.preresolve(vocabulary);
    }
}

/// Builder for [`Domain`] (see [`Domain::builder`]).
#[derive(Debug)]
pub struct DomainBuilder {
    name: String,
    graph: Option<GrammarGraph>,
    docs: Vec<ApiDoc>,
    synonyms: Option<SynonymLexicon>,
    literal_api: Option<String>,
    quote_literals: bool,
    intent_verbs: Vec<String>,
    stopwords: Vec<String>,
}

impl DomainBuilder {
    /// Sets the grammar graph (required).
    pub fn graph(mut self, graph: GrammarGraph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// Sets the API documentation (required, non-empty).
    pub fn docs(mut self, docs: Vec<ApiDoc>) -> Self {
        self.docs = docs;
        self
    }

    /// Sets a custom synonym lexicon (defaults to the built-in one).
    pub fn synonyms(mut self, synonyms: SynonymLexicon) -> Self {
        self.synonyms = Some(synonyms);
        self
    }

    /// Maps quoted string literals to a standalone API.
    pub fn literal_api(mut self, api: &str) -> Self {
        self.literal_api = Some(api.to_string());
        self
    }

    /// Quotes literal arguments in rendered expressions.
    pub fn quote_literals(mut self, on: bool) -> Self {
        self.quote_literals = on;
        self
    }

    /// Replaces the intent-verb list.
    pub fn intent_verbs(mut self, verbs: &[&str]) -> Self {
        self.intent_verbs = verbs.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Sets the domain stopwords (never mapped to APIs).
    pub fn stopwords(mut self, words: &[&str]) -> Self {
        self.stopwords = words.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Builds the domain.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidDomain`] when the grammar or docs
    /// are missing, when a documented API does not appear in the grammar,
    /// or when `literal_api` names an unknown API.
    pub fn build(self) -> Result<Domain, SynthesisError> {
        let graph = self.graph.ok_or_else(|| SynthesisError::InvalidDomain {
            message: "grammar graph not set".to_string(),
        })?;
        if self.docs.is_empty() {
            return Err(SynthesisError::InvalidDomain {
                message: "API documentation is empty".to_string(),
            });
        }
        for doc in &self.docs {
            if graph.api_node(&doc.name).is_none() {
                return Err(SynthesisError::InvalidDomain {
                    message: format!(
                        "documented API `{}` does not appear in the grammar",
                        doc.name
                    ),
                });
            }
        }
        if let Some(api) = &self.literal_api {
            if graph.api_node(api).is_none() {
                return Err(SynthesisError::InvalidDomain {
                    message: format!("literal API `{api}` does not appear in the grammar"),
                });
            }
        }
        let matcher = SemanticMatcher::new(self.docs, self.synonyms.unwrap_or_default());
        Ok(Domain {
            name: self.name,
            graph,
            matcher,
            literal_api: self.literal_api,
            quote_literals: self.quote_literals,
            intent_verbs: self.intent_verbs,
            stopwords: self.stopwords,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlquery_grammar::GrammarGraph;

    fn graph() -> GrammarGraph {
        GrammarGraph::parse("cmd ::= INSERT string\nstring ::= STRING").unwrap()
    }

    #[test]
    fn builds_valid_domain() {
        let d = Domain::builder("t")
            .graph(graph())
            .docs(vec![
                ApiDoc::new("INSERT", &["insert"], "inserts", 0),
                ApiDoc::new("STRING", &["string"], "a string", 1),
            ])
            .literal_api("STRING")
            .build()
            .unwrap();
        assert_eq!(d.name(), "t");
        assert_eq!(d.api_count(), 2);
        assert_eq!(d.literal_api(), Some("STRING"));
    }

    #[test]
    fn rejects_missing_graph() {
        let err = Domain::builder("t")
            .docs(vec![ApiDoc::new("X", &[], "", 0)])
            .build()
            .unwrap_err();
        assert!(matches!(err, SynthesisError::InvalidDomain { .. }));
    }

    #[test]
    fn rejects_empty_docs() {
        let err = Domain::builder("t").graph(graph()).build().unwrap_err();
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn rejects_unknown_documented_api() {
        let err = Domain::builder("t")
            .graph(graph())
            .docs(vec![ApiDoc::new("MISSING", &["m"], "", 0)])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("MISSING"));
    }

    #[test]
    fn rejects_unknown_literal_api() {
        let err = Domain::builder("t")
            .graph(graph())
            .docs(vec![ApiDoc::new("INSERT", &["insert"], "", 0)])
            .literal_api("NOPE")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("NOPE"));
    }

    #[test]
    fn default_intent_verbs_include_find() {
        let d = Domain::builder("t")
            .graph(graph())
            .docs(vec![ApiDoc::new("INSERT", &["insert"], "", 0)])
            .build()
            .unwrap();
        assert!(d.intent_verbs().iter().any(|v| v == "find"));
    }
}
