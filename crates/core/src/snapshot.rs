//! Persistent warm-state snapshots: save/restore the cross-query caches.
//!
//! The 23× cold-start penalty of a fresh process is almost entirely cache
//! re-warming — the [`SharedPathCache`] (EdgeToPath results) and the
//! [`MergeMemo`] (PathMerging results) start empty and every query pays
//! the full search until the working set is resident. This module makes
//! warm state *survive restarts*: [`save`] serializes both caches to one
//! JSON file (written atomically: temp file + rename), and [`load`]
//! restores them into fresh caches at boot.
//!
//! # Validity, not freshness
//!
//! A snapshot is only usable against the exact domain + configuration it
//! was captured under: cache keys are hashes over candidate sets, grammar
//! paths and config knobs, so replaying them against a changed grammar
//! would serve *wrong answers*, not stale ones. The header therefore
//! binds the snapshot to
//!
//! - a magic string and format [`SNAPSHOT_VERSION`],
//! - the domain name,
//! - a [content hash](warm_content_hash) over the grammar structure
//!   ([`GrammarGraph::content_hash`]), the full API documentation, the
//!   domain's literal/stopword policy and every config knob that feeds a
//!   cache key — deliberately *over*-broad: a hash mismatch merely costs
//!   a cold boot, an undetected mismatch would cost correctness,
//! - a [hasher probe](hasher_probe): cache signatures use
//!   [`std::hash::DefaultHasher`], whose algorithm may change between
//!   Rust releases. The probe (the hash of a fixed string) detects a
//!   binary built with a different hasher and rejects the snapshot.
//!
//! **Any** validation or parse failure yields a typed [`SnapshotError`]
//! and restores *nothing* — parsing is all-or-nothing, so a truncated or
//! corrupt file can never seed a half-warm cache. Callers log the reason
//! and fall back to a cold boot; a snapshot problem is never an outage.
//!
//! Floats never touch the disk format: scores live in the caches as
//! milli-unit integers ([`PartialCgt::score_milli`]), node ids as `u32`
//! indices, and the kernel bitsets ([`PartialCgt::bits`]) are stored as a
//! presence flag and rebuilt from the restored tree via
//! [`Cgt::to_bits`] against the live grammar's layout.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nlquery_grammar::{GrammarGraph, GrammarPath, NodeId};

use crate::dggt::PartialCgt;
use crate::engine::BestCgt;
use crate::json::JsonValue;
use crate::memo::{MemoDirection, MemoKey, RawPath, SharedPathCache};
use crate::merge_memo::{MergeKey, MergeKind, MergeMemo, MergeValue, MergeWork};
use crate::{Cgt, Domain, SynthesisConfig};

/// First bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: &str = "nlquery-warm-state";

/// Format version; bumped on any change to the serialized shape.
pub const SNAPSHOT_VERSION: u64 = 1;

/// What [`save`] wrote or [`load`] restored.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotSummary {
    /// Path-cache entries written/restored.
    pub path_entries: usize,
    /// Merge-memo entries written/restored.
    pub merge_entries: usize,
    /// Size of the snapshot file in bytes.
    pub bytes: u64,
}

/// Why a snapshot could not be written or restored.
///
/// Every variant is a *cold-boot* signal, not a correctness hazard: on
/// [`load`] failure nothing has been inserted into either cache.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure (including a missing snapshot file).
    Io(std::io::Error),
    /// The file is not valid JSON or is missing/mistyping fields —
    /// truncation and bit rot land here.
    Corrupt(String),
    /// The file is JSON but not a snapshot.
    WrongMagic {
        /// What the magic field held instead.
        found: String,
    },
    /// The snapshot was written by a different format version.
    VersionMismatch {
        /// Version in the file.
        found: u64,
        /// Version this binary writes.
        expected: u64,
    },
    /// The snapshot was written by a binary whose `DefaultHasher`
    /// disagrees with this one — its signatures are meaningless here.
    HasherMismatch,
    /// The snapshot belongs to a different domain.
    DomainMismatch {
        /// Domain name in the file.
        found: String,
        /// Domain name expected.
        expected: String,
    },
    /// Domain or configuration content changed since the capture.
    ContentHashMismatch {
        /// Hash in the file.
        found: u64,
        /// Hash of the live domain + config.
        expected: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Corrupt(m) => write!(f, "snapshot corrupt: {m}"),
            SnapshotError::WrongMagic { found } => {
                write!(f, "not a snapshot file (magic `{found}`)")
            }
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found}, this binary writes {expected}")
            }
            SnapshotError::HasherMismatch => {
                write!(f, "snapshot written by a binary with a different hasher")
            }
            SnapshotError::DomainMismatch { found, expected } => {
                write!(f, "snapshot is for domain `{found}`, not `{expected}`")
            }
            SnapshotError::ContentHashMismatch { found, expected } => {
                write!(
                    f,
                    "snapshot content hash {found:#x} does not match live domain/config {expected:#x}"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// Hash of a fixed string under this binary's `DefaultHasher`. Snapshot
/// signatures (cache keys) are `DefaultHasher`-based; two binaries that
/// disagree on this probe disagree on every signature.
pub fn hasher_probe() -> u64 {
    use std::hash::{DefaultHasher, Hash, Hasher};
    let mut h = DefaultHasher::new();
    "nlquery-hasher-probe-v1".hash(&mut h);
    h.finish()
}

/// The snapshot-binding content hash: everything that feeds a cache key
/// or shapes a cached value. Grammar structure, full API documentation,
/// domain literal/word policy, and every config knob the pipeline reads.
/// Over-invalidation is free (one cold boot); under-invalidation is a
/// wrong answer — when in doubt a field is hashed.
pub fn warm_content_hash(domain: &Domain, config: &SynthesisConfig) -> u64 {
    use std::hash::{DefaultHasher, Hash, Hasher};
    let mut h = DefaultHasher::new();
    domain.name().hash(&mut h);
    domain.graph().content_hash().hash(&mut h);
    for doc in domain.matcher().docs() {
        doc.name.hash(&mut h);
        doc.keywords.hash(&mut h);
        doc.description.hash(&mut h);
        doc.literal_slots.hash(&mut h);
    }
    domain.literal_api().hash(&mut h);
    domain.quote_literals().hash(&mut h);
    domain.intent_verbs().hash(&mut h);
    domain.stopwords().hash(&mut h);
    (config.engine == crate::Engine::Dggt).hash(&mut h);
    config.grammar_pruning.hash(&mut h);
    config.size_pruning.hash(&mut h);
    config.orphan_relocation.hash(&mut h);
    config.max_candidates.hash(&mut h);
    config.min_score.to_bits().hash(&mut h);
    config.search_limits.max_paths.hash(&mut h);
    config.search_limits.max_depth.hash(&mut h);
    config.max_orphan_variants.hash(&mut h);
    config.dggt_beam.hash(&mut h);
    config.cgt_kernel.hash(&mut h);
    h.finish()
}

/// Captures both caches and writes them atomically to `path` (temp file
/// in the same directory, then rename) — a reader never observes a
/// half-written snapshot, and a crash mid-write leaves the previous
/// snapshot intact.
pub fn save(
    path: &Path,
    domain: &Domain,
    config: &SynthesisConfig,
    cache: &SharedPathCache,
    memo: &MergeMemo,
) -> Result<SnapshotSummary, SnapshotError> {
    let paths = cache.export();
    let merges = memo.export();
    let summary_counts = (paths.len(), merges.len());

    let json = JsonValue::obj([
        ("magic", JsonValue::from(SNAPSHOT_MAGIC)),
        ("version", JsonValue::from(SNAPSHOT_VERSION)),
        ("hasher_probe", JsonValue::from(hasher_probe())),
        ("domain", JsonValue::from(domain.name())),
        (
            "content_hash",
            JsonValue::from(warm_content_hash(domain, config)),
        ),
        (
            "paths",
            JsonValue::Array(
                paths
                    .iter()
                    .map(|(key, value)| path_entry_json(key, value))
                    .collect(),
            ),
        ),
        (
            "merges",
            JsonValue::Array(
                merges
                    .iter()
                    .map(|(key, value)| merge_entry_json(key, value))
                    .collect(),
            ),
        ),
    ]);

    let text = json.render();
    let tmp = tmp_path(path);
    fs::write(&tmp, &text)?;
    fs::rename(&tmp, path)?;
    Ok(SnapshotSummary {
        path_entries: summary_counts.0,
        merge_entries: summary_counts.1,
        bytes: text.len() as u64,
    })
}

/// Validates the snapshot at `path` against the live domain + config and
/// restores every entry into `cache` and `memo`. Entries are restored in
/// capture order (per-shard LRU order), so eviction behavior after a
/// restore matches the process that wrote the snapshot.
///
/// # Errors
///
/// Any validation or parse failure returns before anything is inserted —
/// the caches are untouched and the caller boots cold.
pub fn load(
    path: &Path,
    domain: &Domain,
    config: &SynthesisConfig,
    cache: &SharedPathCache,
    memo: &MergeMemo,
) -> Result<SnapshotSummary, SnapshotError> {
    let text = fs::read_to_string(path)?;
    let bytes = text.len() as u64;
    let root = JsonValue::parse(&text).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;

    let magic = get_str(&root, "magic")?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::WrongMagic {
            found: magic.to_string(),
        });
    }
    let version = get_u64(&root, "version")?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::VersionMismatch {
            found: version,
            expected: SNAPSHOT_VERSION,
        });
    }
    if get_u64(&root, "hasher_probe")? != hasher_probe() {
        return Err(SnapshotError::HasherMismatch);
    }
    let snap_domain = get_str(&root, "domain")?;
    if snap_domain != domain.name() {
        return Err(SnapshotError::DomainMismatch {
            found: snap_domain.to_string(),
            expected: domain.name().to_string(),
        });
    }
    let found_hash = get_u64(&root, "content_hash")?;
    let expected_hash = warm_content_hash(domain, config);
    if found_hash != expected_hash {
        return Err(SnapshotError::ContentHashMismatch {
            found: found_hash,
            expected: expected_hash,
        });
    }

    // Parse *everything* before touching either cache: a failure halfway
    // through a truncated file must leave the caches cold, not half-warm.
    let graph = domain.graph();
    let mut path_entries: Vec<(MemoKey, Vec<RawPath>)> = Vec::new();
    for entry in get_arr(&root, "paths")? {
        path_entries.push(path_entry_from(entry, graph)?);
    }
    let mut merge_entries: Vec<(MergeKey, MergeValue)> = Vec::new();
    for entry in get_arr(&root, "merges")? {
        merge_entries.push(merge_entry_from(entry, graph)?);
    }

    let summary = SnapshotSummary {
        path_entries: path_entries.len(),
        merge_entries: merge_entries.len(),
        bytes,
    };
    cache.restore(path_entries);
    memo.restore(merge_entries);
    Ok(summary)
}

/// The temp-file sibling used by [`save`]'s atomic write.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

// ---------------------------------------------------------------------
// Serialization (structs → JsonValue).
// ---------------------------------------------------------------------

fn nid(id: NodeId) -> JsonValue {
    JsonValue::from(id.index())
}

fn opt_nid(id: Option<NodeId>) -> JsonValue {
    match id {
        Some(id) => nid(id),
        None => JsonValue::Null,
    }
}

fn nid_pair((a, b): (NodeId, NodeId)) -> JsonValue {
    JsonValue::Array(vec![nid(a), nid(b)])
}

pub(crate) fn path_entry_json(key: &MemoKey, value: &Arc<Vec<RawPath>>) -> JsonValue {
    JsonValue::obj([
        ("gov", JsonValue::from(key.gov)),
        ("dep", JsonValue::from(key.dep)),
        (
            "dir",
            JsonValue::from(match key.direction {
                MemoDirection::FromRoot => "root",
                MemoDirection::Between => "between",
            }),
        ),
        (
            "paths",
            JsonValue::Array(value.iter().map(raw_path_json).collect()),
        ),
    ])
}

fn raw_path_json(raw: &RawPath) -> JsonValue {
    JsonValue::obj([
        ("gov_api", opt_nid(raw.gov_api)),
        ("dep_api", nid(raw.dep_api)),
        ("source", opt_nid(raw.path.source)),
        ("sink", nid(raw.path.sink)),
        (
            "chain",
            JsonValue::Array(raw.path.chain.iter().map(|&id| nid(id)).collect()),
        ),
    ])
}

fn work_json(work: &MergeWork) -> JsonValue {
    JsonValue::obj([
        ("sibling_combinations", work.sibling_combinations),
        ("pruned_grammar", work.pruned_grammar),
        ("pruned_size", work.pruned_size),
        ("merged_combinations", work.merged_combinations),
        ("enumerated_combinations", work.enumerated_combinations),
    ])
}

fn cgt_json(cgt: &Cgt) -> JsonValue {
    JsonValue::obj([
        (
            "nodes",
            JsonValue::Array(cgt.nodes.iter().map(|&id| nid(id)).collect()),
        ),
        (
            "edges",
            JsonValue::Array(cgt.edges.iter().map(|&e| nid_pair(e)).collect()),
        ),
    ])
}

fn claims_json(claims: &[(usize, (NodeId, NodeId))]) -> JsonValue {
    JsonValue::Array(
        claims
            .iter()
            .map(|&(qnode, occ)| JsonValue::Array(vec![JsonValue::from(qnode), nid_pair(occ)]))
            .collect(),
    )
}

fn assignment_json(assignment: &[(usize, NodeId)]) -> JsonValue {
    JsonValue::Array(
        assignment
            .iter()
            .map(|&(qnode, api)| JsonValue::Array(vec![JsonValue::from(qnode), nid(api)]))
            .collect(),
    )
}

fn partial_json(p: &PartialCgt) -> JsonValue {
    JsonValue::obj([
        ("cgt", cgt_json(&p.cgt)),
        // The kernel bitset is a pure function of the tree and the live
        // grammar's layout — store only its presence and rebuild on load.
        ("bits", JsonValue::from(p.bits.is_some())),
        ("size", JsonValue::from(p.size)),
        ("path_len", JsonValue::from(p.path_len)),
        ("score_milli", JsonValue::from(p.score_milli)),
        ("top", opt_nid(p.top)),
        (
            "claimed",
            JsonValue::Array(p.claimed.iter().map(|&e| nid_pair(e)).collect()),
        ),
        ("node_claims", claims_json(&p.node_claims)),
        ("assignment", assignment_json(&p.assignment)),
    ])
}

fn best_json(best: &BestCgt) -> JsonValue {
    JsonValue::obj([
        ("cgt", cgt_json(&best.cgt)),
        ("size", JsonValue::from(best.size)),
        ("assignment", assignment_json(&best.assignment)),
        ("node_claims", claims_json(&best.node_claims)),
    ])
}

fn merge_entry_json(key: &MergeKey, value: &Arc<MergeValue>) -> JsonValue {
    let mut obj = JsonValue::obj([
        ("sig", JsonValue::from(key.sig)),
        (
            "kind",
            JsonValue::from(match key.kind {
                MergeKind::NodeBeams => "beams",
                MergeKind::FinalJoin => "final_join",
                MergeKind::HisynFuse => "hisyn_fuse",
            }),
        ),
    ]);
    match &**value {
        MergeValue::Beams(beams, work) => {
            obj.push_field("work", work_json(work));
            obj.push_field(
                "beams",
                JsonValue::Array(
                    beams
                        .iter()
                        .map(|(node, partials)| {
                            JsonValue::obj([
                                ("node", nid(*node)),
                                (
                                    "partials",
                                    JsonValue::Array(partials.iter().map(partial_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            );
        }
        MergeValue::Best(best, work) => {
            obj.push_field("work", work_json(work));
            obj.push_field(
                "best",
                match best {
                    Some(b) => best_json(b),
                    None => JsonValue::Null,
                },
            );
        }
    }
    obj
}

// ---------------------------------------------------------------------
// Deserialization (JsonValue → structs), bounds-checked against the live
// grammar so a forged or mismatched file cannot index out of range.
// ---------------------------------------------------------------------

fn corrupt(message: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(message.into())
}

fn get<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, SnapshotError> {
    v.get(key)
        .ok_or_else(|| corrupt(format!("missing `{key}`")))
}

pub(crate) fn get_u64(v: &JsonValue, key: &str) -> Result<u64, SnapshotError> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| corrupt(format!("`{key}` is not an unsigned integer")))
}

fn get_usize(v: &JsonValue, key: &str) -> Result<usize, SnapshotError> {
    Ok(get_u64(v, key)? as usize)
}

pub(crate) fn get_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, SnapshotError> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| corrupt(format!("`{key}` is not a string")))
}

fn get_bool(v: &JsonValue, key: &str) -> Result<bool, SnapshotError> {
    get(v, key)?
        .as_bool()
        .ok_or_else(|| corrupt(format!("`{key}` is not a bool")))
}

pub(crate) fn get_arr<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], SnapshotError> {
    get(v, key)?
        .as_array()
        .ok_or_else(|| corrupt(format!("`{key}` is not an array")))
}

fn node_from(v: &JsonValue, graph: &GrammarGraph) -> Result<NodeId, SnapshotError> {
    let raw = v
        .as_u64()
        .ok_or_else(|| corrupt("node id is not an unsigned integer"))?;
    let index = raw as usize;
    if index >= graph.len() {
        return Err(corrupt(format!(
            "node id {index} out of range for grammar of {} nodes",
            graph.len()
        )));
    }
    Ok(NodeId::from_index(index))
}

fn opt_node_from(v: &JsonValue, graph: &GrammarGraph) -> Result<Option<NodeId>, SnapshotError> {
    if v.is_null() {
        Ok(None)
    } else {
        node_from(v, graph).map(Some)
    }
}

fn node_pair_from(v: &JsonValue, graph: &GrammarGraph) -> Result<(NodeId, NodeId), SnapshotError> {
    let pair = v.as_array().ok_or_else(|| corrupt("edge is not a pair"))?;
    if pair.len() != 2 {
        return Err(corrupt("edge is not a pair"));
    }
    Ok((node_from(&pair[0], graph)?, node_from(&pair[1], graph)?))
}

pub(crate) fn path_entry_from(
    v: &JsonValue,
    graph: &GrammarGraph,
) -> Result<(MemoKey, Vec<RawPath>), SnapshotError> {
    let direction = match get_str(v, "dir")? {
        "root" => MemoDirection::FromRoot,
        "between" => MemoDirection::Between,
        other => return Err(corrupt(format!("unknown direction `{other}`"))),
    };
    let key = MemoKey {
        gov: get_u64(v, "gov")?,
        dep: get_u64(v, "dep")?,
        direction,
    };
    let mut paths = Vec::new();
    for raw in get_arr(v, "paths")? {
        let mut chain = Vec::new();
        for id in get_arr(raw, "chain")? {
            chain.push(node_from(id, graph)?);
        }
        paths.push(RawPath {
            gov_api: opt_node_from(get(raw, "gov_api")?, graph)?,
            dep_api: node_from(get(raw, "dep_api")?, graph)?,
            path: GrammarPath {
                source: opt_node_from(get(raw, "source")?, graph)?,
                sink: node_from(get(raw, "sink")?, graph)?,
                chain,
            },
        });
    }
    Ok((key, paths))
}

fn work_from(v: &JsonValue) -> Result<MergeWork, SnapshotError> {
    let w = get(v, "work")?;
    Ok(MergeWork {
        sibling_combinations: get_u64(w, "sibling_combinations")?,
        pruned_grammar: get_u64(w, "pruned_grammar")?,
        pruned_size: get_u64(w, "pruned_size")?,
        merged_combinations: get_u64(w, "merged_combinations")?,
        enumerated_combinations: get_u64(w, "enumerated_combinations")?,
    })
}

fn cgt_from(v: &JsonValue, graph: &GrammarGraph) -> Result<Cgt, SnapshotError> {
    let mut cgt = Cgt::new();
    for node in get_arr(v, "nodes")? {
        cgt.nodes.insert(node_from(node, graph)?);
    }
    for edge in get_arr(v, "edges")? {
        cgt.edges.insert(node_pair_from(edge, graph)?);
    }
    Ok(cgt)
}

/// A merge-conflict claim as stored on disk: the claiming path's index
/// plus the contested grammar edge.
type PathClaim = (usize, (NodeId, NodeId));

fn claims_from(
    v: &JsonValue,
    key: &str,
    graph: &GrammarGraph,
) -> Result<Vec<PathClaim>, SnapshotError> {
    let mut claims = Vec::new();
    for item in get_arr(v, key)? {
        let pair = item
            .as_array()
            .ok_or_else(|| corrupt("claim is not a pair"))?;
        if pair.len() != 2 {
            return Err(corrupt("claim is not a pair"));
        }
        let qnode = pair[0]
            .as_u64()
            .ok_or_else(|| corrupt("claim query node is not an unsigned integer"))?;
        claims.push((qnode as usize, node_pair_from(&pair[1], graph)?));
    }
    Ok(claims)
}

fn assignment_from(
    v: &JsonValue,
    graph: &GrammarGraph,
) -> Result<Vec<(usize, NodeId)>, SnapshotError> {
    let mut assignment = Vec::new();
    for item in get_arr(v, "assignment")? {
        let pair = item
            .as_array()
            .ok_or_else(|| corrupt("assignment is not a pair"))?;
        if pair.len() != 2 {
            return Err(corrupt("assignment is not a pair"));
        }
        let qnode = pair[0]
            .as_u64()
            .ok_or_else(|| corrupt("assignment query node is not an unsigned integer"))?;
        assignment.push((qnode as usize, node_from(&pair[1], graph)?));
    }
    Ok(assignment)
}

fn partial_from(v: &JsonValue, graph: &GrammarGraph) -> Result<PartialCgt, SnapshotError> {
    let cgt = cgt_from(get(v, "cgt")?, graph)?;
    let bits = get_bool(v, "bits")?.then(|| cgt.to_bits(graph.cgt_layout()));
    let mut claimed = Vec::new();
    for edge in get_arr(v, "claimed")? {
        claimed.push(node_pair_from(edge, graph)?);
    }
    // The or-signature is a pure function of the CGT and grammar, so it is
    // not serialized — recompute it on load.
    let or_sig = cgt.or_edges(graph);
    Ok(PartialCgt {
        bits,
        size: get_usize(v, "size")?,
        path_len: get_usize(v, "path_len")?,
        score_milli: get_u64(v, "score_milli")?,
        top: opt_node_from(get(v, "top")?, graph)?,
        or_sig,
        claimed,
        node_claims: claims_from(v, "node_claims", graph)?,
        assignment: assignment_from(v, graph)?,
        cgt,
    })
}

fn best_from(v: &JsonValue, graph: &GrammarGraph) -> Result<BestCgt, SnapshotError> {
    Ok(BestCgt {
        cgt: cgt_from(get(v, "cgt")?, graph)?,
        size: get_usize(v, "size")?,
        assignment: assignment_from(v, graph)?,
        node_claims: claims_from(v, "node_claims", graph)?,
    })
}

fn merge_entry_from(
    v: &JsonValue,
    graph: &GrammarGraph,
) -> Result<(MergeKey, MergeValue), SnapshotError> {
    let kind = match get_str(v, "kind")? {
        "beams" => MergeKind::NodeBeams,
        "final_join" => MergeKind::FinalJoin,
        "hisyn_fuse" => MergeKind::HisynFuse,
        other => return Err(corrupt(format!("unknown merge kind `{other}`"))),
    };
    let key = MergeKey {
        sig: get_u64(v, "sig")?,
        kind,
    };
    let work = work_from(v)?;
    let value = if kind == MergeKind::NodeBeams {
        let mut beams = Vec::new();
        for beam in get_arr(v, "beams")? {
            let node = node_from(get(beam, "node")?, graph)?;
            let mut partials = Vec::new();
            for partial in get_arr(beam, "partials")? {
                partials.push(partial_from(partial, graph)?);
            }
            beams.push((node, partials));
        }
        MergeValue::Beams(beams, work)
    } else {
        let best = get(v, "best")?;
        let best = if best.is_null() {
            None
        } else {
            Some(best_from(best, graph)?)
        };
        MergeValue::Best(best, work)
    };
    Ok((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::Flight;
    use crate::merge_memo::MergeFlight;
    use nlquery_nlp::ApiDoc;

    fn domain() -> Domain {
        let graph = GrammarGraph::parse(
            "command ::= INSERT string pos\n\
             string  ::= STRING\n\
             pos     ::= START | END",
        )
        .unwrap();
        Domain::builder("snap-test")
            .graph(graph)
            .docs(vec![
                ApiDoc::new("INSERT", &["insert"], "inserts a string", 0),
                ApiDoc::new("STRING", &["string"], "a string constant", 1),
                ApiDoc::new("START", &["start"], "the start", 0),
                ApiDoc::new("END", &["end"], "the end", 0),
            ])
            .build()
            .unwrap()
    }

    fn sample_state(domain: &Domain) -> (SharedPathCache, MergeMemo) {
        let graph = domain.graph();
        let cache = SharedPathCache::new(64);
        let start = graph.api_node("START").unwrap();
        let insert = graph.api_node("INSERT").unwrap();
        let key = MemoKey::from_root(&[start], Default::default());
        let Flight::Miss(token) = cache.join(key) else {
            panic!("cold cache must lead");
        };
        token.complete(
            graph
                .paths_from_root(start, Default::default())
                .into_iter()
                .map(|path| RawPath {
                    gov_api: None,
                    dep_api: start,
                    path,
                })
                .collect(),
        );

        let memo = MergeMemo::new(64);
        let best_key = MergeKey {
            sig: 7,
            kind: MergeKind::FinalJoin,
        };
        let MergeFlight::Miss(token) = memo.join(best_key) else {
            panic!("cold memo must lead");
        };
        let mut cgt = Cgt::singleton(insert);
        cgt.absorb_path(&graph.paths_from_root(insert, Default::default())[0], graph);
        token.complete(MergeValue::Best(
            Some(BestCgt {
                size: cgt.api_count(graph),
                assignment: vec![(0, insert)],
                node_claims: vec![(0, (graph.node(insert).parents[0], insert))],
                cgt,
            }),
            MergeWork {
                sibling_combinations: 3,
                pruned_grammar: 1,
                pruned_size: 0,
                merged_combinations: 2,
                enumerated_combinations: 0,
            },
        ));

        let beam_key = MergeKey {
            sig: 9,
            kind: MergeKind::NodeBeams,
        };
        let MergeFlight::Miss(token) = memo.join(beam_key) else {
            panic!("cold memo must lead");
        };
        let pcgt = Cgt::singleton(start);
        token.complete(MergeValue::Beams(
            vec![(
                start,
                vec![PartialCgt {
                    bits: Some(pcgt.to_bits(graph.cgt_layout())),
                    size: 1,
                    path_len: 2,
                    score_milli: 950,
                    top: Some(start),
                    or_sig: vec![],
                    claimed: vec![(graph.node(start).parents[0], start)],
                    node_claims: vec![(1, (graph.node(start).parents[0], start))],
                    assignment: vec![(1, start)],
                    cgt: pcgt,
                }],
            )],
            MergeWork::default(),
        ));
        (cache, memo)
    }

    fn values_of(memo: &MergeMemo) -> Vec<(MergeKey, MergeValue)> {
        memo.export()
            .into_iter()
            .map(|(k, v)| (k, (*v).clone()))
            .collect()
    }

    #[test]
    fn save_load_round_trips_both_caches() {
        let d = domain();
        let cfg = SynthesisConfig::default();
        let (cache, memo) = sample_state(&d);
        let dir = std::env::temp_dir().join("nlquery-snap-roundtrip");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("warm.json");

        let saved = save(&file, &d, &cfg, &cache, &memo).unwrap();
        assert_eq!(saved.path_entries, 1);
        assert_eq!(saved.merge_entries, 2);
        assert!(saved.bytes > 0);

        let cache2 = SharedPathCache::new(64);
        let memo2 = MergeMemo::new(64);
        let loaded = load(&file, &d, &cfg, &cache2, &memo2).unwrap();
        assert_eq!(loaded, saved);

        // Path entries are byte-for-byte equal.
        let a = cache.export();
        let b = cache2.export();
        assert_eq!(a.len(), b.len());
        for ((ka, va), (kb, vb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            assert_eq!(&**va, &**vb);
        }
        // Merge values round-trip including the rebuilt kernel bitsets.
        let ma = values_of(&memo);
        let mb = values_of(&memo2);
        assert_eq!(ma.len(), mb.len());
        for ((ka, va), (kb, vb)) in ma.iter().zip(&mb) {
            assert_eq!(ka, kb);
            match (va, vb) {
                (MergeValue::Best(a, wa), MergeValue::Best(b, wb)) => {
                    assert_eq!(a, b);
                    assert_eq!(wa, wb);
                }
                (MergeValue::Beams(a, wa), MergeValue::Beams(b, wb)) => {
                    assert_eq!(wa, wb);
                    assert_eq!(a.len(), b.len());
                    for ((na, psa), (nb, psb)) in a.iter().zip(b) {
                        assert_eq!(na, nb);
                        assert_eq!(psa.len(), psb.len());
                        for (pa, pb) in psa.iter().zip(psb) {
                            assert_eq!(pa.cgt, pb.cgt);
                            assert_eq!(pa.bits.is_some(), pb.bits.is_some());
                            assert_eq!(
                                (pa.size, pa.path_len, pa.score_milli, pa.top),
                                (pb.size, pb.path_len, pb.score_milli, pb.top)
                            );
                            assert_eq!(pa.claimed, pb.claimed);
                            assert_eq!(pa.node_claims, pb.node_claims);
                            assert_eq!(pa.assignment, pb.assignment);
                        }
                    }
                }
                _ => panic!("value kinds diverged"),
            }
        }
        // Restores bump no hit/miss counters.
        let s = cache2.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
        fs::remove_file(&file).ok();
    }

    #[test]
    fn stale_or_damaged_snapshots_restore_nothing() {
        let d = domain();
        let cfg = SynthesisConfig::default();
        let (cache, memo) = sample_state(&d);
        let dir = std::env::temp_dir().join("nlquery-snap-reject");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("warm.json");
        save(&file, &d, &cfg, &cache, &memo).unwrap();
        let text = fs::read_to_string(&file).unwrap();

        let fresh = || (SharedPathCache::new(64), MergeMemo::new(64));
        let assert_cold =
            |err: SnapshotError, cache: &SharedPathCache, memo: &MergeMemo, what: &str| {
                assert_eq!(
                    cache.stats().entries,
                    0,
                    "{what}: path cache must stay cold"
                );
                assert_eq!(memo.stats().entries, 0, "{what}: merge memo must stay cold");
                // Every rejection renders a loggable reason.
                assert!(!err.to_string().is_empty(), "{what}");
            };

        // Truncation (mid-file) → corrupt, nothing restored.
        let truncated = dir.join("truncated.json");
        fs::write(&truncated, &text[..text.len() / 2]).unwrap();
        let (c, m) = fresh();
        let err = load(&truncated, &d, &cfg, &c, &m).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
        assert_cold(err, &c, &m, "truncated");

        // Garbage bytes → corrupt.
        let garbage = dir.join("garbage.json");
        fs::write(&garbage, "not json at all {{{").unwrap();
        let (c, m) = fresh();
        let err = load(&garbage, &d, &cfg, &c, &m).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
        assert_cold(err, &c, &m, "garbage");

        // Version bump → version mismatch.
        let versioned = dir.join("versioned.json");
        fs::write(&versioned, text.replace("\"version\":1", "\"version\":999")).unwrap();
        let (c, m) = fresh();
        let err = load(&versioned, &d, &cfg, &c, &m).unwrap_err();
        assert!(
            matches!(err, SnapshotError::VersionMismatch { found: 999, .. }),
            "{err}"
        );
        assert_cold(err, &c, &m, "version");

        // Different config → content-hash mismatch.
        let (c, m) = fresh();
        let other_cfg = SynthesisConfig::default().cgt_kernel(false);
        let err = load(&file, &d, &other_cfg, &c, &m).unwrap_err();
        assert!(
            matches!(err, SnapshotError::ContentHashMismatch { .. }),
            "{err}"
        );
        assert_cold(err, &c, &m, "config change");

        // Different domain name → domain mismatch.
        let graph = GrammarGraph::parse(
            "command ::= INSERT string pos\n\
             string  ::= STRING\n\
             pos     ::= START | END",
        )
        .unwrap();
        let other_domain = Domain::builder("other-domain")
            .graph(graph)
            .docs(vec![
                ApiDoc::new("INSERT", &["insert"], "inserts a string", 0),
                ApiDoc::new("STRING", &["string"], "a string constant", 1),
                ApiDoc::new("START", &["start"], "the start", 0),
                ApiDoc::new("END", &["end"], "the end", 0),
            ])
            .build()
            .unwrap();
        let (c, m) = fresh();
        let err = load(&file, &other_domain, &cfg, &c, &m).unwrap_err();
        assert!(matches!(err, SnapshotError::DomainMismatch { .. }), "{err}");
        assert_cold(err, &c, &m, "domain");

        // Missing file → io error.
        let (c, m) = fresh();
        let err = load(&dir.join("missing.json"), &d, &cfg, &c, &m).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "{err}");
        assert_cold(err, &c, &m, "missing");

        fs::remove_file(&file).ok();
        fs::remove_file(&truncated).ok();
        fs::remove_file(&garbage).ok();
        fs::remove_file(&versioned).ok();
    }

    #[test]
    fn content_hash_tracks_grammar_and_config() {
        let d = domain();
        let cfg = SynthesisConfig::default();
        let base = warm_content_hash(&d, &cfg);
        assert_eq!(base, warm_content_hash(&d, &cfg), "hash is deterministic");
        assert_ne!(
            base,
            warm_content_hash(&d, &SynthesisConfig::default().max_candidates(5)),
            "config knobs invalidate"
        );
        let regrown = GrammarGraph::parse(
            "command ::= INSERT string pos\n\
             string  ::= STRING\n\
             pos     ::= END | START",
        )
        .unwrap();
        let d2 = Domain::builder("snap-test")
            .graph(regrown)
            .docs(vec![
                ApiDoc::new("INSERT", &["insert"], "inserts a string", 0),
                ApiDoc::new("STRING", &["string"], "a string constant", 1),
                ApiDoc::new("START", &["start"], "the start", 0),
                ApiDoc::new("END", &["end"], "the end", 0),
            ])
            .build()
            .unwrap();
        assert_ne!(
            base,
            warm_content_hash(&d2, &cfg),
            "grammar reordering invalidates"
        );
    }

    #[test]
    fn atomic_write_leaves_no_temp_file() {
        let d = domain();
        let cfg = SynthesisConfig::default();
        let (cache, memo) = sample_state(&d);
        let dir = std::env::temp_dir().join("nlquery-snap-atomic");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("warm.json");
        save(&file, &d, &cfg, &cache, &memo).unwrap();
        assert!(file.exists());
        assert!(!tmp_path(&file).exists());
        fs::remove_file(&file).ok();
    }
}
