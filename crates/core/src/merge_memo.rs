//! Cross-query memoization of PathMerging results (the merge memo).
//!
//! After PR 3 cached EdgeToPath, the warm-pass profile flipped: ~95 % of
//! warm wall time was *merge* — DGGT beams and joins re-derived from
//! scratch for every structurally repeated query. The merge memo closes
//! that gap with the same machinery: a sharded single-flight LRU cache
//! ([`ShardedFlightCache`]) keyed by canonical **run signatures** — hashes
//! over everything the merge stage reads (domain, query shape, WordToAPI
//! candidates with scores, the full EdgeToPath candidate lists, and the
//! config knobs that steer the DP) — so two queries sharing the inputs of
//! a merge share its outcome bit-for-bit.
//!
//! Three result granularities are memoized, discriminated by
//! [`MergeKind`]:
//!
//! - [`MergeKind::FinalJoin`] — a whole DGGT run: the final
//!   [`BestCgt`]. A warm repeat of a query skips the entire DP.
//! - [`MergeKind::NodeBeams`] — one dynamic-grammar-graph node's beams
//!   (the per-`(query node, API)` [`PartialCgt`] lists produced by the
//!   sibling-combination enumeration and `join_children`). Keys hash the
//!   node's *subtree* recursively, so distinct queries sharing a subtree
//!   still skip its re-merging.
//! - [`MergeKind::HisynFuse`] — a whole HISyn exhaustive run.
//!
//! # Invalidation and correctness
//!
//! There is nothing to invalidate: the grammar is immutable per domain and
//! every mutable input is hashed into the key — a change in candidates,
//! paths, or config produces a *different* signature, and stale entries
//! age out of the LRU. Timeouts are never cached: the single-flight token
//! is held across the fallible computation and `?`-dropping it on
//! [`TimedOut`](crate::engine::TimedOut) abandons the flight (waiters are
//! promoted, nothing is published). The memo-off path
//! ([`SynthesisConfig::merge_memo`] `= false`) bypasses this module
//! entirely and is proven bitwise-identical by the differential suite.

use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::Arc;

use nlquery_grammar::NodeId;

use crate::dggt::PartialCgt;
use crate::engine::BestCgt;
use crate::memo::{
    CacheFlight, CacheFlightToken, CacheStats, MemoBytes, ShardHash, ShardedFlightCache,
};
use crate::{Domain, EdgeCandidates, EdgeToPath, QueryGraph, SynthesisConfig, WordToApi};

use crate::SynthesisStats;

/// Default entry capacity of a [`MergeMemo`]. Merge values are heavier
/// than path lists (beams carry whole partial CGTs), so the default is
/// smaller than the path cache's.
pub const DEFAULT_MERGE_CAPACITY: usize = 2048;

/// Which merge granularity a memo entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MergeKind {
    /// One DGGT node's beams, keyed by its subtree signature.
    NodeBeams,
    /// A whole DGGT run (final join result), keyed by the run signature.
    FinalJoin,
    /// A whole HISyn exhaustive run, keyed by the run signature.
    HisynFuse,
}

/// Cache key of one memoized merge result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MergeKey {
    /// Canonical signature over every input the computation reads.
    pub sig: u64,
    /// Result granularity (also keeps the key spaces disjoint).
    pub kind: MergeKind,
}

impl ShardHash for MergeKey {}

/// Merge-stage work counters accumulated while computing one memoized
/// value, captured as a delta over the leader's [`SynthesisStats`] and
/// **replayed on every hit** — so a memoized run reports the same
/// Table-III counters (`merged_combinations`, pruning tallies, …) as a
/// memo-less run. The memo stays invisible at the stats level, not just
/// the result level; the batch-determinism suite compares these counters
/// byte for byte against the sequential synthesizer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeWork {
    /// Sibling-level combinations considered.
    pub sibling_combinations: u64,
    /// Combinations removed by grammar-based pruning.
    pub pruned_grammar: u64,
    /// Combinations removed by size-based pruning.
    pub pruned_size: u64,
    /// Combinations merged into prefix trees.
    pub merged_combinations: u64,
    /// Combinations the HISyn enumeration visited.
    pub enumerated_combinations: u64,
}

impl MergeWork {
    /// Snapshot of the replayable counters of `stats` (taken before a
    /// leader starts computing).
    pub fn snapshot(stats: &SynthesisStats) -> MergeWork {
        MergeWork {
            sibling_combinations: stats.sibling_combinations,
            pruned_grammar: stats.pruned_grammar,
            pruned_size: stats.pruned_size,
            merged_combinations: stats.merged_combinations,
            enumerated_combinations: stats.enumerated_combinations,
        }
    }

    /// The work accumulated in `stats` since the `before` snapshot.
    /// Nested memo hits replay their own work into `stats` first, so the
    /// delta of an outer computation is the *full* cost of a memo-less
    /// recomputation — capture and replay compose across the
    /// FinalJoin-over-NodeBeams layering.
    pub fn since(stats: &SynthesisStats, before: &MergeWork) -> MergeWork {
        MergeWork {
            sibling_combinations: stats.sibling_combinations - before.sibling_combinations,
            pruned_grammar: stats.pruned_grammar - before.pruned_grammar,
            pruned_size: stats.pruned_size - before.pruned_size,
            merged_combinations: stats.merged_combinations - before.merged_combinations,
            enumerated_combinations: stats.enumerated_combinations - before.enumerated_combinations,
        }
    }

    /// Adds this work to `stats`, as if the memoized computation had run.
    pub fn replay(&self, stats: &mut SynthesisStats) {
        stats.sibling_combinations += self.sibling_combinations;
        stats.pruned_grammar += self.pruned_grammar;
        stats.pruned_size += self.pruned_size;
        stats.merged_combinations += self.merged_combinations;
        stats.enumerated_combinations += self.enumerated_combinations;
    }
}

/// One memoized merge result, paired with the [`MergeWork`] its
/// computation accumulated.
#[derive(Debug, Clone)]
pub enum MergeValue {
    /// Per-API beams of one dynamic-grammar-graph node.
    Beams(Vec<(NodeId, Vec<PartialCgt>)>, MergeWork),
    /// The best CGT of a whole run (`None` when the run proved there is no
    /// valid CGT — a negative result worth caching too).
    Best(Option<BestCgt>, MergeWork),
}

fn partial_bytes(p: &PartialCgt) -> usize {
    std::mem::size_of::<PartialCgt>()
        + (p.cgt.nodes.len() + 2 * p.cgt.edges.len()) * std::mem::size_of::<NodeId>()
        + p.claimed.len() * std::mem::size_of::<(NodeId, NodeId)>()
        + p.node_claims.len() * std::mem::size_of::<(usize, (NodeId, NodeId))>()
        + p.assignment.len() * std::mem::size_of::<(usize, NodeId)>()
}

impl MemoBytes for MergeValue {
    fn memo_bytes(&self) -> usize {
        match self {
            MergeValue::Beams(beams, _) => {
                beams
                    .iter()
                    .map(|(_, ps)| ps.iter().map(partial_bytes).sum::<usize>())
                    .sum::<usize>()
                    + beams.len() * std::mem::size_of::<(NodeId, Vec<PartialCgt>)>()
            }
            MergeValue::Best(best, _) => {
                std::mem::size_of::<Option<BestCgt>>()
                    + best
                        .as_ref()
                        .map(|b| {
                            (b.cgt.nodes.len() + 2 * b.cgt.edges.len())
                                * std::mem::size_of::<NodeId>()
                                + b.assignment.len() * std::mem::size_of::<(usize, NodeId)>()
                                + b.node_claims.len()
                                    * std::mem::size_of::<(usize, (NodeId, NodeId))>()
                        })
                        .unwrap_or(0)
            }
        }
    }
}

/// Outcome of a [`MergeMemo`] single-flight lookup.
pub type MergeFlight = CacheFlight<MergeKey, MergeValue>;

/// Leadership over one in-flight [`MergeMemo`] key.
pub type MergeFlightToken = CacheFlightToken<MergeKey, MergeValue>;

/// Thread-safe cross-query memo of PathMerging results, shared across the
/// workers and submissions of a [`ServiceEngine`](crate::ServiceEngine) —
/// the merge-stage sibling of [`SharedPathCache`](crate::SharedPathCache).
pub struct MergeMemo {
    inner: Arc<ShardedFlightCache<MergeKey, MergeValue>>,
}

impl std::fmt::Debug for MergeMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergeMemo")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for MergeMemo {
    fn default() -> Self {
        MergeMemo::new(DEFAULT_MERGE_CAPACITY)
    }
}

impl MergeMemo {
    /// Creates a memo holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> MergeMemo {
        MergeMemo {
            inner: Arc::new(ShardedFlightCache::new(capacity)),
        }
    }

    /// Creates a memo with an explicit shard count (clamped to
    /// `1..=capacity`).
    pub fn with_shards(capacity: usize, shards: usize) -> MergeMemo {
        MergeMemo {
            inner: Arc::new(ShardedFlightCache::with_shards(capacity, shards)),
        }
    }

    /// Single-flight lookup; see
    /// [`ShardedFlightCache::join`](crate::memo::ShardedFlightCache::join).
    pub fn join(&self, key: MergeKey) -> MergeFlight {
        self.inner.join(key)
    }

    /// Non-blocking lookup (no dedup wait).
    pub fn get(&self, key: MergeKey) -> Option<Arc<MergeValue>> {
        self.inner.get(key)
    }

    /// Direct insert (snapshot restore); see
    /// [`ShardedFlightCache::insert`](crate::memo::ShardedFlightCache::insert).
    pub fn insert(&self, key: MergeKey, value: MergeValue) -> Arc<MergeValue> {
        self.inner.insert(key, value)
    }

    /// Exports every ready entry in per-shard LRU order; see
    /// [`ShardedFlightCache::export`](crate::memo::ShardedFlightCache::export).
    pub fn export(&self) -> Vec<(MergeKey, Arc<MergeValue>)> {
        self.inner.export()
    }

    /// Bulk-seeds the memo (snapshot restore); see
    /// [`ShardedFlightCache::restore`](crate::memo::ShardedFlightCache::restore).
    pub fn restore(&self, entries: impl IntoIterator<Item = (MergeKey, MergeValue)>) -> usize {
        self.inner.restore(entries)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Drops every ready entry (counters are kept).
    pub fn clear(&self) {
        self.inner.clear()
    }

    /// Drops every ready entry **and** zeroes all counters.
    pub fn reset(&self) {
        self.inner.reset()
    }
}

/// Hashes the inputs shared by every merge computation of one run: the
/// domain (its grammar is immutable and named uniquely) and the config
/// knobs that steer enumeration, pruning and representation.
pub fn config_domain_hash(domain: &Domain, config: &SynthesisConfig) -> u64 {
    let mut h = DefaultHasher::new();
    domain.name().hash(&mut h);
    config.grammar_pruning.hash(&mut h);
    config.size_pruning.hash(&mut h);
    config.dggt_beam.hash(&mut h);
    config.cgt_kernel.hash(&mut h);
    h.finish()
}

/// Hashes one edge's full candidate list — everything the merge stage
/// reads from it (ids, endpoint APIs, affinity bonus, and the grammar
/// path itself).
pub fn edge_content_hash(edge: &EdgeCandidates) -> u64 {
    let mut h = DefaultHasher::new();
    edge.gov.hash(&mut h);
    edge.dep.hash(&mut h);
    edge.paths.len().hash(&mut h);
    for pc in &edge.paths {
        pc.id.edge.hash(&mut h);
        pc.id.path.hash(&mut h);
        pc.gov_api.hash(&mut h);
        pc.dep_api.hash(&mut h);
        pc.bonus_milli.hash(&mut h);
        pc.path.source.hash(&mut h);
        pc.path.sink.hash(&mut h);
        pc.path.chain.hash(&mut h);
    }
    h.finish()
}

/// Signature of one DGGT node's *subtree*: the node itself, its candidate
/// APIs with positional scores, and — per map-child in order — the child
/// edge's content hash and the child's own subtree signature. Two query
/// nodes (from any queries) with equal signatures produce identical beams.
pub fn node_signature(base: u64, node: usize, apis: &[(NodeId, u64)], kids: &[(u64, u64)]) -> u64 {
    let mut h = DefaultHasher::new();
    base.hash(&mut h);
    node.hash(&mut h);
    apis.hash(&mut h);
    kids.hash(&mut h);
    h.finish()
}

/// Signature of a whole merge run: [`config_domain_hash`] plus the query
/// shape (node count, root), the per-node WordToAPI candidate lists with
/// score bits, and the complete EdgeToPath content (edges *and* residual
/// orphans). Literal values are deliberately excluded — they only affect
/// TreeToExpression, which is not memoized.
pub fn run_signature(
    domain: &Domain,
    query: &QueryGraph,
    w2a: &WordToApi,
    map: &EdgeToPath,
    config: &SynthesisConfig,
) -> u64 {
    let mut h = DefaultHasher::new();
    config_domain_hash(domain, config).hash(&mut h);
    query.nodes.len().hash(&mut h);
    query.root.hash(&mut h);
    for node in 0..query.nodes.len() {
        let cands = w2a.of(node);
        cands.len().hash(&mut h);
        for c in cands {
            c.api.hash(&mut h);
            c.score.to_bits().hash(&mut h);
        }
    }
    map.edges.len().hash(&mut h);
    for edge in &map.edges {
        edge_content_hash(edge).hash(&mut h);
    }
    map.orphans.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlquery_grammar::GrammarGraph;
    use nlquery_nlp::ApiDoc;

    fn domain(name: &str) -> Domain {
        let graph = GrammarGraph::parse("command ::= API\n").unwrap();
        Domain::builder(name)
            .graph(graph)
            .docs(vec![ApiDoc::new("API", &["api"], "the api", 0)])
            .build()
            .unwrap()
    }

    #[test]
    fn signature_depends_on_domain_and_config() {
        let q = QueryGraph::default();
        let w2a = WordToApi::default();
        let map = EdgeToPath::default();
        let cfg = SynthesisConfig::default();
        let a = run_signature(&domain("a"), &q, &w2a, &map, &cfg);
        let b = run_signature(&domain("b"), &q, &w2a, &map, &cfg);
        assert_ne!(a, b, "domain name is part of the signature");
        let cfg_nokernel = SynthesisConfig::default().cgt_kernel(false);
        let c = run_signature(&domain("a"), &q, &w2a, &map, &cfg_nokernel);
        assert_ne!(a, c, "config knobs are part of the signature");
        let again = run_signature(&domain("a"), &q, &w2a, &map, &cfg);
        assert_eq!(a, again, "signatures are deterministic");
    }

    #[test]
    fn memo_single_flight_and_stats() {
        let memo = MergeMemo::new(16);
        let key = MergeKey {
            sig: 42,
            kind: MergeKind::FinalJoin,
        };
        let MergeFlight::Miss(token) = memo.join(key) else {
            panic!("cold memo must lead");
        };
        token.complete(MergeValue::Best(None, MergeWork::default()));
        match memo.join(key) {
            MergeFlight::Hit(v) => assert!(matches!(&*v, MergeValue::Best(None, _))),
            other => panic!("expected hit, got {other:?}"),
        }
        let s = memo.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        // Same signature, different kind: a distinct key space.
        let other = MergeKey {
            sig: 42,
            kind: MergeKind::HisynFuse,
        };
        assert!(matches!(memo.join(other), MergeFlight::Miss(_)));
    }

    #[test]
    fn abandoned_flight_is_not_cached() {
        // The timeout discipline: a leader that errors out drops its token,
        // abandoning the flight. Nothing is published and the next caller
        // leads again.
        let memo = MergeMemo::new(16);
        let key = MergeKey {
            sig: 7,
            kind: MergeKind::NodeBeams,
        };
        let MergeFlight::Miss(token) = memo.join(key) else {
            panic!("cold memo must lead");
        };
        drop(token);
        assert!(matches!(memo.join(key), MergeFlight::Miss(_)));
        assert_eq!(memo.stats().entries, 0);
    }
}
