//! Step 5, DGGT — dynamic grammar graph-based translation (§IV).
//!
//! DGGT replaces HISyn's global enumeration with dynamic programming over
//! the query dependency graph. Processing dependency nodes bottom-up, it
//! records for every (query node, candidate API) pair the *optimal partial
//! CGT* — the smallest code generation tree covering that node's subtree
//! when the node resolves to that API — in a [`DynamicGrammarGraph`]. A
//! node's entry is built by combining, per child, one candidate grammar
//! path with the child's recorded optimum; sibling combinations pass
//! through grammar-based pruning (§V-A) and size-based pruning (§V-C)
//! before the surviving few are merged into prefix trees. The final
//! answer joins the root's optimal partial CGT with a grammar-root path.
//!
//! Complexity drops from `O(Π_l p_l^{e_l})` to `O(Σ_l p_l^{e_l})`: each
//! sibling group is enumerated once instead of once per combination of all
//! the *other* levels.
//!
//! Each entry keeps a small beam of best partials (not just one) so the
//! final join can step past cross-level "or" conflicts, which the
//! per-level optimizations cannot see.

use std::collections::BTreeMap;

use nlquery_grammar::{BitCgt, CgtArena, CgtLayout, NodeId};

use crate::engine::{BestCgt, Deadline, TimedOut};
use crate::merge_memo::{
    config_domain_hash, edge_content_hash, node_signature, run_signature, MergeFlight, MergeKey,
    MergeKind, MergeMemo, MergeValue, MergeWork,
};
use crate::opt::grammar_prune::{combination_conflicts, or_signature};
use crate::{Cgt, Domain, EdgeToPath, QueryGraph, SynthesisConfig, SynthesisStats, WordToApi};

/// How often inner loops poll the deadline.
const DEADLINE_STRIDE: u64 = 256;

/// How often the final join polls it, counted in beam partials. Each
/// partial can trigger up to 64 orphan-absorb trial merges, so a
/// per-root-path check alone lets wide beams overshoot the budget.
const JOIN_DEADLINE_STRIDE: u64 = 64;

/// An optimal (or beam-kept) partial CGT recorded at a dynamic-grammar-graph
/// node.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialCgt {
    /// The partial tree: the subtree rooted at this entry's API covering
    /// the query node's dependants.
    pub cgt: Cgt,
    /// The same tree in kernel representation, populated when the bitset
    /// kernel is on so later merges skip the set → bitset conversion.
    pub bits: Option<BitCgt>,
    /// Its API count (`min_size` when this is the entry's first partial).
    pub size: usize,
    /// Sum of the chosen grammar-path sizes — the tie-breaker preferring
    /// less "semantic stretching" among equally small CGTs.
    pub path_len: usize,
    /// Accumulated WordToAPI match score (in milli-units) of the
    /// assignment — the second tie-breaker, preferring better matches.
    pub score_milli: u64,
    /// The partial tree's top grammar node — the occurrence context a
    /// parent path must share to merge connectedly. The beam keeps
    /// alternatives per distinct (top, or-signature) context.
    pub top: Option<NodeId>,
    /// The "or" choices made inside this partial (sorted non-terminal →
    /// derivation edges). Two same-top partials with different signatures
    /// are *not* interchangeable: a sibling's path through the same
    /// grammar region merges with one and conflicts with the other, so
    /// the beam must keep both to stay lossless.
    pub or_sig: Vec<(NodeId, NodeId)>,
    /// Grammar occurrences (derivation → API edges) *claimed* by query
    /// nodes in this partial, sorted. Two query words must not be
    /// explained by one occurrence — ':' and '-' cannot both be the same
    /// `STRING` slot — so merges require disjoint claims.
    pub claimed: Vec<(NodeId, NodeId)>,
    /// Which occurrence each query node claimed (unsorted, parallel to the
    /// assignment minus the subtree root, whose claim the parent makes).
    pub node_claims: Vec<(usize, (NodeId, NodeId))>,
    /// Query-node → API-node choices made inside this partial.
    pub assignment: Vec<(usize, NodeId)>,
}

/// Merges two sorted claim lists, or `None` on overlap.
fn merge_claims(a: &[(NodeId, NodeId)], b: &[(NodeId, NodeId)]) -> Option<Vec<(NodeId, NodeId)>> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => return None,
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    Some(out)
}

/// The occurrence a path's sink claims: its final derivation → API edge.
fn sink_claim(path: &nlquery_grammar::GrammarPath) -> (NodeId, NodeId) {
    let n = path.chain.len();
    debug_assert!(n >= 2, "paths have at least a derivation and a sink");
    (path.chain[n - 2], path.chain[n - 1])
}

impl PartialCgt {
    /// The lexicographic objective: smallest CGT first, then shortest
    /// paths, then highest match score.
    pub fn key(&self) -> (usize, usize, std::cmp::Reverse<u64>) {
        (
            self.size,
            self.path_len,
            std::cmp::Reverse(self.score_milli),
        )
    }
}

/// The dynamic grammar graph: `(query node, API node) → best partial CGTs`.
///
/// This is the memo table of §IV-B; the paper's `min_cgt`/`min_size` fields
/// are the first element of each entry's beam.
#[derive(Debug, Clone, Default)]
pub struct DynamicGrammarGraph {
    entries: BTreeMap<(usize, NodeId), Vec<PartialCgt>>,
}

impl DynamicGrammarGraph {
    /// The best partial CGT for `(query node, api)`, if recorded.
    pub fn best(&self, query_node: usize, api: NodeId) -> Option<&PartialCgt> {
        self.entries.get(&(query_node, api)).and_then(|v| v.first())
    }

    /// The beam of partials for `(query node, api)`.
    pub fn beam(&self, query_node: usize, api: NodeId) -> &[PartialCgt] {
        self.entries
            .get(&(query_node, api))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of `(query node, api)` nodes in the dynamic grammar graph.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many partials the beam keeps per distinct merge context — a
    /// (top node, or-signature) pair. Different tops are different grammar
    /// occurrence contexts, and same-top partials with different "or"
    /// choices conflict with different sibling paths; a parent can only
    /// merge with a compatible context, so diversity across contexts
    /// matters more than depth within one.
    const PER_CONTEXT: usize = 2;

    fn insert(&mut self, key: (usize, NodeId), partial: PartialCgt, beam: usize) {
        let slot = self.entries.entry(key).or_default();
        if slot.iter().any(|p| p.cgt == partial.cgt) {
            return;
        }
        let same_context = |p: &PartialCgt| p.top == partial.top && p.or_sig == partial.or_sig;
        if slot.iter().filter(|p| same_context(p)).count() >= Self::PER_CONTEXT {
            // Replace the worst same-context entry if the new one is better.
            let worst = slot
                .iter()
                .enumerate()
                .filter(|(_, p)| same_context(p))
                .max_by_key(|(_, p)| p.key())
                .map(|(i, _)| i)
                .expect("same_context > 0");
            if partial.key() < slot[worst].key() {
                slot.remove(worst);
            } else {
                return;
            }
        }
        let pos = slot
            .binary_search_by(|p| p.key().cmp(&partial.key()))
            .unwrap_or_else(|e| e);
        slot.insert(pos, partial);
        // Evict overall-worst entries, but never below one entry per
        // context — losing a context's only representative can lose the
        // only globally consistent tree.
        while slot.len() > beam {
            let mut removed = false;
            for i in (0..slot.len()).rev() {
                let (top, sig) = (slot[i].top, slot[i].or_sig.clone());
                if slot
                    .iter()
                    .filter(|p| p.top == top && p.or_sig == sig)
                    .count()
                    > 1
                {
                    slot.remove(i);
                    removed = true;
                    break;
                }
            }
            if !removed {
                break;
            }
        }
    }

    /// Collects `node`'s per-API beams in key order — the payload of a
    /// [`MergeKind::NodeBeams`] memo entry.
    fn node_entries(&self, node: usize) -> Vec<(NodeId, Vec<PartialCgt>)> {
        self.entries
            .range((node, NodeId::from_index(0))..(node + 1, NodeId::from_index(0)))
            .map(|(&(_, api), beam)| (api, beam.clone()))
            .collect()
    }

    /// Installs memoized beams for `node`, bypassing per-partial insertion
    /// (the cached lists already went through beam selection when first
    /// computed, so re-filtering them would be redundant work).
    fn adopt(&mut self, node: usize, beams: &[(NodeId, Vec<PartialCgt>)]) {
        for (api, beam) in beams {
            self.entries.insert((node, *api), beam.clone());
        }
    }
}

/// Runs DGGT, returning the smallest valid CGT.
///
/// The `map` must already have orphans resolved (relocated into
/// `query.edges`, or attached to the grammar root as extra `gov: None`
/// edges).
///
/// # Errors
///
/// Returns [`TimedOut`] when the deadline expires.
pub fn synthesize(
    domain: &Domain,
    query: &QueryGraph,
    w2a: &WordToApi,
    map: &EdgeToPath,
    config: &SynthesisConfig,
    deadline: &Deadline,
    stats: &mut SynthesisStats,
) -> Result<Option<BestCgt>, TimedOut> {
    let (dyng, best) = synthesize_with_graph(domain, query, w2a, map, config, deadline, stats)?;
    let _ = dyng;
    Ok(best)
}

/// Like [`synthesize`], consulting (and feeding) a cross-query
/// [`MergeMemo`] when one is supplied.
///
/// Two memo granularities apply: the whole run is keyed by
/// [`run_signature`] under [`MergeKind::FinalJoin`] — a repeat of a
/// structurally identical query returns the cached [`BestCgt`] without
/// touching the DP — and, on a run-level miss, every dynamic-grammar-graph
/// node is keyed by its subtree signature under [`MergeKind::NodeBeams`],
/// so queries that only *share a subtree* still skip its re-merging. Both
/// layers use single-flight tokens: a deadline error propagates with `?`
/// while a token is held, abandoning the flight, so timeouts are never
/// cached.
///
/// # Errors
///
/// Returns [`TimedOut`] when the deadline expires.
#[allow(clippy::too_many_arguments)]
pub fn synthesize_memo(
    domain: &Domain,
    query: &QueryGraph,
    w2a: &WordToApi,
    map: &EdgeToPath,
    config: &SynthesisConfig,
    deadline: &Deadline,
    stats: &mut SynthesisStats,
    memo: Option<&MergeMemo>,
) -> Result<Option<BestCgt>, TimedOut> {
    let Some(memo) = memo else {
        return synthesize(domain, query, w2a, map, config, deadline, stats);
    };
    let key = MergeKey {
        sig: run_signature(domain, query, w2a, map, config),
        kind: MergeKind::FinalJoin,
    };
    // One FinalJoin signature per run — the run-level contribution to the
    // merge-signature cardinality this query exposes to the memo.
    stats.merge_memo_unique_signatures += 1;
    match memo.join(key) {
        MergeFlight::Hit(v) => {
            stats.merge_memo_hits += 1;
            let MergeValue::Best(best, work) = &*v else {
                unreachable!("FinalJoin keys only store MergeValue::Best");
            };
            work.replay(stats);
            Ok(best.clone())
        }
        MergeFlight::Shared(v) => {
            stats.merge_memo_dedup_waits += 1;
            let MergeValue::Best(best, work) = &*v else {
                unreachable!("FinalJoin keys only store MergeValue::Best");
            };
            work.replay(stats);
            Ok(best.clone())
        }
        MergeFlight::Miss(token) => {
            stats.merge_memo_misses += 1;
            let before = MergeWork::snapshot(stats);
            let (_dyng, best) = synthesize_with_graph_memo(
                domain,
                query,
                w2a,
                map,
                config,
                deadline,
                stats,
                Some(memo),
            )?;
            token.complete(MergeValue::Best(
                best.clone(),
                MergeWork::since(stats, &before),
            ));
            Ok(best)
        }
    }
}

/// Like [`synthesize`], additionally returning the dynamic grammar graph
/// for inspection (tests, diagnostics, benchmarks).
///
/// # Errors
///
/// Returns [`TimedOut`] when the deadline expires.
pub fn synthesize_with_graph(
    domain: &Domain,
    query: &QueryGraph,
    w2a: &WordToApi,
    map: &EdgeToPath,
    config: &SynthesisConfig,
    deadline: &Deadline,
    stats: &mut SynthesisStats,
) -> Result<(DynamicGrammarGraph, Option<BestCgt>), TimedOut> {
    synthesize_with_graph_memo(domain, query, w2a, map, config, deadline, stats, None)
}

#[allow(clippy::too_many_arguments)]
fn synthesize_with_graph_memo(
    domain: &Domain,
    query: &QueryGraph,
    w2a: &WordToApi,
    map: &EdgeToPath,
    config: &SynthesisConfig,
    deadline: &Deadline,
    stats: &mut SynthesisStats,
    memo: Option<&MergeMemo>,
) -> Result<(DynamicGrammarGraph, Option<BestCgt>), TimedOut> {
    let graph = domain.graph();
    // With the kernel on, trial merges run on bitset words; `None` selects
    // the reference `BTreeSet` path. Enumeration order, claims, pruning and
    // stats are shared — only the merge/validity predicates differ.
    let kernel: Option<&CgtLayout> = config.cgt_kernel.then(|| graph.cgt_layout());
    let mut arena = CgtArena::new();
    let n = query.nodes.len();
    let Some(root) = query.root else {
        return Ok((DynamicGrammarGraph::default(), None));
    };

    // Children as recorded in the EdgeToPath map (gov = Some(n)).
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &map.edges {
        if let Some(gov) = e.gov {
            children[gov].push(e.dep);
        }
    }

    // Bottom-up processing order: a node is ready when all its map-children
    // are processed. Handles detached orphan subtrees uniformly.
    let order = bottom_up_order(n, &children);

    let mut dyng = DynamicGrammarGraph::default();
    let mut polls: u64 = 0;
    // Per-node subtree signatures (memo runs only), filled bottom-up so a
    // node's signature can fold in its children's.
    let base_sig = memo.map(|_| config_domain_hash(domain, config));
    let mut node_sigs: Vec<u64> = vec![0; n];
    // Distinct NodeBeams signatures consulted this run (repeated subtrees
    // within one query share a signature and count once).
    let mut seen_sigs: std::collections::HashSet<u64> = std::collections::HashSet::new();

    for &node in &order {
        deadline.check()?;
        let kids = &children[node];
        // Positional weighting: earlier query words bind their best
        // candidates first. Ties between mirrored assignments ("move the
        // first WORD to the end of the LINE") resolve toward giving the
        // earlier word its higher-scored API.
        let pos_weight = 1000.0 - 8.0 * node.min(100) as f64;
        let candidate_apis: Vec<(NodeId, u64)> = w2a
            .of(node)
            .iter()
            .filter_map(|c| {
                graph
                    .api_node(&c.api)
                    .map(|id| (id, (c.score * pos_weight) as u64))
            })
            .collect();

        if let (Some(memo), Some(base)) = (memo, base_sig) {
            // Subtree signature: the node's candidates plus, per map-child
            // in order, the connecting edge's content hash and the child's
            // own subtree signature.
            let kid_sigs: Vec<(u64, u64)> = kids
                .iter()
                .map(|&child| {
                    let edge_hash = map.edge_for(child).map(edge_content_hash).unwrap_or(0);
                    (edge_hash, node_sigs[child])
                })
                .collect();
            let sig = node_signature(base, node, &candidate_apis, &kid_sigs);
            node_sigs[node] = sig;
            if seen_sigs.insert(sig) {
                stats.merge_memo_unique_signatures += 1;
            }
            let key = MergeKey {
                sig,
                kind: MergeKind::NodeBeams,
            };
            match memo.join(key) {
                MergeFlight::Hit(v) => {
                    stats.merge_memo_hits += 1;
                    let MergeValue::Beams(beams, work) = &*v else {
                        unreachable!("NodeBeams keys only store MergeValue::Beams");
                    };
                    work.replay(stats);
                    dyng.adopt(node, beams);
                }
                MergeFlight::Shared(v) => {
                    stats.merge_memo_dedup_waits += 1;
                    let MergeValue::Beams(beams, work) = &*v else {
                        unreachable!("NodeBeams keys only store MergeValue::Beams");
                    };
                    work.replay(stats);
                    dyng.adopt(node, beams);
                }
                MergeFlight::Miss(token) => {
                    stats.merge_memo_misses += 1;
                    let before = MergeWork::snapshot(stats);
                    // `?` drops the token on timeout: the flight is
                    // abandoned (waiters promoted) and nothing is cached.
                    compute_node(
                        graph,
                        kernel,
                        &mut arena,
                        map,
                        &mut dyng,
                        node,
                        kids,
                        &candidate_apis,
                        config,
                        deadline,
                        stats,
                        &mut polls,
                    )?;
                    token.complete(MergeValue::Beams(
                        dyng.node_entries(node),
                        MergeWork::since(stats, &before),
                    ));
                }
            }
            continue;
        }

        compute_node(
            graph,
            kernel,
            &mut arena,
            map,
            &mut dyng,
            node,
            kids,
            &candidate_apis,
            config,
            deadline,
            stats,
            &mut polls,
        )?;
    }

    // Final join: grammar-root path + root entry (+ root-attached orphans).
    let best = match kernel {
        Some(layout) => final_join_kernel(graph, layout, &mut arena, map, &dyng, root, deadline)?,
        None => final_join(graph, map, &dyng, root, deadline)?,
    };
    Ok((dyng, best))
}

/// Fills one query node's dynamic-grammar-graph entries: the leaf rule, or
/// the per-API sibling-combination enumeration with pruning and child
/// joins. Extracted from the bottom-up loop so the NodeBeams memo can wrap
/// exactly one node's computation under a single-flight token.
#[allow(clippy::too_many_arguments)]
fn compute_node(
    graph: &nlquery_grammar::GrammarGraph,
    kernel: Option<&CgtLayout>,
    arena: &mut CgtArena,
    map: &EdgeToPath,
    dyng: &mut DynamicGrammarGraph,
    node: usize,
    kids: &[usize],
    candidate_apis: &[(NodeId, u64)],
    config: &SynthesisConfig,
    deadline: &Deadline,
    stats: &mut SynthesisStats,
    polls: &mut u64,
) -> Result<(), TimedOut> {
    if kids.is_empty() {
        // "For each leaf node … the algorithm generates API nodes."
        for &(api, score) in candidate_apis {
            let cgt = Cgt::singleton(api);
            dyng.insert(
                (node, api),
                PartialCgt {
                    bits: kernel.map(|l| cgt.to_bits(l)),
                    cgt,
                    size: 1,
                    path_len: 0,
                    score_milli: score,
                    top: Some(api),
                    or_sig: Vec::new(),
                    claimed: Vec::new(),
                    node_claims: Vec::new(),
                    assignment: vec![(node, api)],
                },
                config.dggt_beam,
            );
        }
        return Ok(());
    }

    for &(api, api_score) in candidate_apis {
        // Options per child: (prepared path, child dep-api).
        let mut options: Vec<Vec<Option_>> = Vec::with_capacity(kids.len());
        let mut feasible = true;
        for &child in kids {
            let Some(edge) = map.edge_for(child) else {
                feasible = false;
                break;
            };
            let mut opts = Vec::new();
            for pc in &edge.paths {
                if pc.gov_api != Some(api) {
                    continue;
                }
                let Some(child_best) = dyng.best(child, pc.dep_api) else {
                    continue;
                };
                let cgt = Cgt::from_path(&pc.path, graph);
                opts.push(Option_ {
                    child,
                    dep_api: pc.dep_api,
                    claim: sink_claim(&pc.path),
                    chain: pc.path.chain.clone(),
                    bits: kernel.map(|l| cgt.to_bits(l)),
                    cgt,
                    size_excl_sink: pc.path.size_excluding_sink(graph),
                    path_size: pc.path.size(graph),
                    bonus_milli: pc.bonus_milli,
                    sig: or_signature(&pc.path, graph),
                    child_best_size: child_best.size,
                });
            }
            if opts.is_empty() {
                feasible = false;
                break;
            }
            options.push(opts);
        }
        if !feasible {
            continue;
        }

        let product: u64 = options
            .iter()
            .map(|o| o.len() as u64)
            .try_fold(1u64, |acc, l| acc.checked_mul(l))
            .unwrap_or(u64::MAX);
        if kids.len() >= 2 {
            stats.sibling_combinations = stats.sibling_combinations.saturating_add(product);
        }

        // Streaming enumeration with grammar- and size-based pruning. The
        // running upper bound may only be tightened by combinations that
        // actually produced a joined partial: a combination that is cheap on
        // paper can still be or-inconsistent (or fail the child join), in
        // which case its upper bound is unachievable and pruning against it
        // would drop the only valid — larger — combination. Seeding from the
        // per-child independent minima has the same flaw (the argmin options
        // need not form a consistent combination), so the bound starts open.
        let mut running_min_upper = usize::MAX;
        let mut indices = vec![0usize; options.len()];
        // One reusable scratch list per sibling group instead of one Vec
        // allocation per combination.
        let mut chosen: Vec<&Option_> = Vec::with_capacity(options.len());
        'combos: loop {
            *polls += 1;
            if polls.is_multiple_of(DEADLINE_STRIDE) {
                deadline.check()?;
            }
            chosen.clear();
            chosen.extend(indices.iter().zip(&options).map(|(&i, opts)| &opts[i]));

            let mut skip = false;
            // Dominated-combination check first: it is the cheapest test,
            // and putting it before the chain/conflict scans means a pruned
            // combination costs a few adds.
            if config.size_pruning {
                let child_sum: usize = chosen.iter().map(|o| o.child_best_size).sum();
                let lower = chosen.iter().map(|o| o.size_excl_sink).max().unwrap_or(0) + child_sum;
                if lower > running_min_upper {
                    stats.pruned_size += 1;
                    skip = true;
                }
            }
            if !skip {
                // Two sibling dependents must not ride the *identical*
                // grammar path: a codelet mentions each of them separately
                // ("replace A with B" needs both string slots).
                for i in 0..chosen.len() {
                    for j in (i + 1)..chosen.len() {
                        if chosen[i].chain == chosen[j].chain {
                            skip = true;
                        }
                    }
                }
                if skip {
                    stats.pruned_grammar += 1;
                }
            }
            if !skip && config.grammar_pruning && chosen.len() >= 2 {
                let sigs: Vec<&Vec<(NodeId, NodeId)>> = chosen.iter().map(|o| &o.sig).collect();
                if combination_conflicts(&sigs) {
                    stats.pruned_grammar += 1;
                    skip = true;
                }
            }
            if !skip {
                stats.merged_combinations += 1;
                let mut produced = false;
                if let Some(layout) = kernel {
                    // Merge the prefix tree of the chosen paths; each
                    // path is individually or-consistent, so sequential
                    // incremental try-merges succeed exactly when the
                    // full union is or-consistent.
                    let mut prefix = arena.alloc(layout);
                    let consistent = chosen.iter().all(|o| {
                        let bits = o.bits.as_ref().expect("kernel options carry bits");
                        prefix.try_merge(bits, layout)
                    });
                    if consistent {
                        // Join with each child's best consistent partial.
                        if let Some(partial) = join_children_kernel(
                            graph, layout, arena, node, api, api_score, &prefix, &chosen, dyng,
                        ) {
                            dyng.insert((node, api), partial, config.dggt_beam);
                            produced = true;
                        }
                    }
                    arena.release(prefix);
                } else {
                    // Merge the prefix tree of the chosen paths.
                    let mut prefix = Cgt::new();
                    for o in &chosen {
                        prefix.merge(&o.cgt);
                    }
                    if prefix.is_or_consistent(graph) {
                        // Join with each child's best consistent partial.
                        if let Some(partial) =
                            join_children(graph, node, api, api_score, &prefix, &chosen, dyng)
                        {
                            dyng.insert((node, api), partial, config.dggt_beam);
                            produced = true;
                        }
                    }
                }
                // Tighten only on combinations that yielded a partial — their
                // upper bound is witnessed by an actual entry in the dynamic
                // grammar graph, so pruning against it is lossless.
                if produced && config.size_pruning {
                    let child_sum: usize = chosen.iter().map(|o| o.child_best_size).sum();
                    let sum: usize = chosen.iter().map(|o| o.size_excl_sink).sum();
                    let upper = sum - (chosen.len() - 1).min(sum) + child_sum;
                    running_min_upper = running_min_upper.min(upper);
                }
            }

            // Odometer.
            let mut pos = indices.len();
            loop {
                if pos == 0 {
                    break 'combos;
                }
                pos -= 1;
                indices[pos] += 1;
                if indices[pos] < options[pos].len() {
                    break;
                }
                indices[pos] = 0;
            }
        }
    }
    Ok(())
}

struct Option_ {
    child: usize,
    dep_api: NodeId,
    claim: (NodeId, NodeId),
    chain: Vec<NodeId>,
    bits: Option<BitCgt>,
    cgt: Cgt,
    size_excl_sink: usize,
    path_size: usize,
    bonus_milli: u64,
    sig: Vec<(NodeId, NodeId)>,
    child_best_size: usize,
}

/// Bottom-up (post-order) processing order over the dependency children
/// lists: every node appears after all its children. Nodes on dependency
/// cycles — and nodes depending on them — are omitted, as they can never
/// become ready. Any topological order yields the same dynamic grammar
/// graph, since an entry reads only its children's completed entries.
fn bottom_up_order(n: usize, children: &[Vec<usize>]) -> Vec<usize> {
    const UNSEEN: u8 = 0;
    const OPEN: u8 = 1;
    const DONE: u8 = 2;
    const DEAD: u8 = 3;
    let mut state = vec![UNSEEN; n];
    let mut order = Vec::with_capacity(n);
    // Iterative DFS: (node, next child index to visit).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if state[start] != UNSEEN {
            continue;
        }
        state[start] = OPEN;
        stack.push((start, 0));
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if let Some(&child) = children[node].get(*idx) {
                *idx += 1;
                if state[child] == UNSEEN {
                    state[child] = OPEN;
                    stack.push((child, 0));
                }
            } else {
                stack.pop();
                // A child still OPEN here is a back-edge (cycle); a DEAD
                // child poisons its ancestors.
                if children[node].iter().all(|&c| state[c] == DONE) {
                    state[node] = DONE;
                    order.push(node);
                } else {
                    state[node] = DEAD;
                }
            }
        }
    }
    order
}

/// Trial-merge budget for one sibling combination's joint beam search.
///
/// Picking each child's partial independently (first-fit in beam order)
/// is incomplete: one child's or-choice can foreclose a later sibling's
/// only consistent option, so the per-child choice must backtrack. The
/// search visits candidates in beam (key) order and returns the first
/// fully consistent assignment — identical to the old greedy walk
/// whenever greedy succeeds — and this cap bounds the worst case so an
/// adversarial grammar cannot make one combination exponential. The
/// default beams (12 entries, small fanout) stay far under it.
const JOIN_BACKTRACK_CAP: usize = 65_536;

/// A successful joint choice: the merged tree, the accumulated claims,
/// and the chosen partials in **reverse** child order (unwound from the
/// recursion).
type Joined<'a, T> = (T, Vec<(NodeId, NodeId)>, Vec<&'a PartialCgt>);

/// Depth-first joint choice of one beam partial per child: merges
/// candidates in beam order, backtracking when a later sibling has no
/// claim-disjoint or-consistent option.
fn join_search<'a>(
    graph: &nlquery_grammar::GrammarGraph,
    dyng: &'a DynamicGrammarGraph,
    chosen: &[&Option_],
    depth: usize,
    cgt: &Cgt,
    claimed: &[(NodeId, NodeId)],
    budget: &mut usize,
) -> Option<Joined<'a, Cgt>> {
    let Some(o) = chosen.get(depth) else {
        return Some((cgt.clone(), claimed.to_vec(), Vec::new()));
    };
    for partial in dyng.beam(o.child, o.dep_api).iter() {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        let Some(new_claims) = merge_claims(claimed, &partial.claimed) else {
            continue;
        };
        let mut trial = cgt.clone();
        trial.merge(&partial.cgt);
        // The child's partial must land in the same grammar occurrence
        // the prefix path chose; or-consistency alone cannot see a
        // dangling duplicate context (API nodes are shared).
        if trial.is_or_consistent(graph) && trial.is_connected(graph) {
            if let Some((out, out_claims, mut picks)) =
                join_search(graph, dyng, chosen, depth + 1, &trial, &new_claims, budget)
            {
                picks.push(partial);
                return Some((out, out_claims, picks));
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn join_children(
    graph: &nlquery_grammar::GrammarGraph,
    node: usize,
    api: NodeId,
    api_score: u64,
    prefix: &Cgt,
    chosen: &[&Option_],
    dyng: &DynamicGrammarGraph,
) -> Option<PartialCgt> {
    let mut assignment = vec![(node, api)];
    let mut node_claims: Vec<(usize, (NodeId, NodeId))> = Vec::new();
    let mut path_len = 0usize;
    let mut score_milli = api_score;
    // Claims of the chosen paths themselves: each child's sink occupies
    // one grammar occurrence.
    let mut claimed: Vec<(NodeId, NodeId)> = Vec::new();
    for o in chosen {
        match merge_claims(&claimed, &[o.claim]) {
            Some(c) => claimed = c,
            None => return None,
        }
    }
    let mut budget = JOIN_BACKTRACK_CAP;
    let (cgt, claimed, mut picks) =
        join_search(graph, dyng, chosen, 0, prefix, &claimed, &mut budget)?;
    picks.reverse();
    for (o, partial) in chosen.iter().zip(&picks) {
        path_len += o.path_size + partial.path_len;
        score_milli += o.bonus_milli + partial.score_milli;
        assignment.extend(partial.assignment.iter().copied());
        node_claims.push((o.child, o.claim));
        node_claims.extend(partial.node_claims.iter().copied());
    }
    let size = cgt.api_count(graph);
    let top = cgt.top(graph);
    let or_sig = cgt.or_edges(graph);
    Some(PartialCgt {
        cgt,
        bits: None,
        size,
        path_len,
        score_milli,
        top,
        or_sig,
        claimed,
        node_claims,
        assignment,
    })
}

/// Kernel counterpart of [`join_search`]: the same backtracking joint
/// choice with trial merges run as arena-backed bitset try-merges. The
/// returned tree is a fresh arena allocation; every intermediate trial
/// is released on unwind.
#[allow(clippy::too_many_arguments)]
fn join_search_kernel<'a>(
    layout: &CgtLayout,
    arena: &mut CgtArena,
    dyng: &'a DynamicGrammarGraph,
    chosen: &[&Option_],
    depth: usize,
    cgt: &BitCgt,
    claimed: &[(NodeId, NodeId)],
    budget: &mut usize,
) -> Option<Joined<'a, BitCgt>> {
    if chosen.get(depth).is_none() {
        let mut out = arena.alloc(layout);
        out.copy_from(cgt);
        return Some((out, claimed.to_vec(), Vec::new()));
    }
    let o = chosen[depth];
    for partial in dyng.beam(o.child, o.dep_api).iter() {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        let Some(new_claims) = merge_claims(claimed, &partial.claimed) else {
            continue;
        };
        let bits = partial
            .bits
            .as_ref()
            .expect("kernel beam entries carry bits");
        let mut trial = arena.alloc(layout);
        trial.copy_from(cgt);
        // The child's partial must land in the same grammar occurrence
        // the prefix path chose; or-consistency alone cannot see a
        // dangling duplicate context (API nodes are shared).
        if trial.try_merge(bits, layout) && arena.is_connected(&trial, layout) {
            if let Some((out, out_claims, mut picks)) = join_search_kernel(
                layout,
                arena,
                dyng,
                chosen,
                depth + 1,
                &trial,
                &new_claims,
                budget,
            ) {
                arena.release(trial);
                picks.push(partial);
                return Some((out, out_claims, picks));
            }
        }
        arena.release(trial);
    }
    None
}

/// Kernel counterpart of [`join_children`]: identical enumeration and
/// claim handling, with trial merges run as bitset try-merges plus the
/// arena connectivity check. The reference `Cgt` is materialized once, on
/// acceptance.
#[allow(clippy::too_many_arguments)]
fn join_children_kernel(
    graph: &nlquery_grammar::GrammarGraph,
    layout: &CgtLayout,
    arena: &mut CgtArena,
    node: usize,
    api: NodeId,
    api_score: u64,
    prefix: &BitCgt,
    chosen: &[&Option_],
    dyng: &DynamicGrammarGraph,
) -> Option<PartialCgt> {
    let mut assignment = vec![(node, api)];
    let mut node_claims: Vec<(usize, (NodeId, NodeId))> = Vec::new();
    let mut path_len = 0usize;
    let mut score_milli = api_score;
    // Claims of the chosen paths themselves: each child's sink occupies
    // one grammar occurrence.
    let mut claimed: Vec<(NodeId, NodeId)> = Vec::new();
    for o in chosen {
        match merge_claims(&claimed, &[o.claim]) {
            Some(c) => claimed = c,
            None => return None,
        }
    }
    let mut budget = JOIN_BACKTRACK_CAP;
    let (cgt, claimed, mut picks) = join_search_kernel(
        layout,
        arena,
        dyng,
        chosen,
        0,
        prefix,
        &claimed,
        &mut budget,
    )?;
    picks.reverse();
    for (o, partial) in chosen.iter().zip(&picks) {
        path_len += o.path_size + partial.path_len;
        score_milli += o.bonus_milli + partial.score_milli;
        assignment.extend(partial.assignment.iter().copied());
        node_claims.push((o.child, o.claim));
        node_claims.extend(partial.node_claims.iter().copied());
    }
    let size = cgt.api_count(layout);
    let top = cgt.top(layout);
    let reference = Cgt::from_bits(&cgt, layout);
    let or_sig = reference.or_edges(graph);
    Some(PartialCgt {
        cgt: reference,
        bits: Some(cgt),
        size,
        path_len,
        score_milli,
        top,
        or_sig,
        claimed,
        node_claims,
        assignment,
    })
}

fn final_join(
    graph: &nlquery_grammar::GrammarGraph,
    map: &EdgeToPath,
    dyng: &DynamicGrammarGraph,
    root: usize,
    deadline: &Deadline,
) -> Result<Option<BestCgt>, TimedOut> {
    let root_edge = map.edges.iter().find(|e| e.gov.is_none() && e.dep == root);
    let orphan_edges: Vec<_> = map
        .edges
        .iter()
        .filter(|e| e.gov.is_none() && e.dep != root)
        .collect();

    let mut best: Option<BestCgt> = None;
    let Some(root_edge) = root_edge else {
        return Ok(None);
    };

    let mut best_key: Option<(usize, usize, std::cmp::Reverse<u64>)> = None;
    let mut polls: u64 = 0;
    for pc in &root_edge.paths {
        deadline.check()?;
        for partial in dyng.beam(root, pc.dep_api) {
            polls += 1;
            if polls.is_multiple_of(JOIN_DEADLINE_STRIDE) {
                deadline.check()?;
            }
            let mut cgt = partial.cgt.clone();
            cgt.absorb_path(&pc.path, graph);
            if !cgt.is_or_consistent(graph) {
                continue;
            }
            let mut assignment = partial.assignment.clone();
            let mut node_claims = partial.node_claims.clone();
            node_claims.push((root, sink_claim(&pc.path)));
            let mut path_len = partial.path_len + pc.path.size(graph);
            let mut score_milli = partial.score_milli;
            let Some(mut claimed) = merge_claims(&partial.claimed, &[sink_claim(&pc.path)]) else {
                continue;
            };

            // Greedily absorb each root-attached orphan with its cheapest
            // consistent option.
            let mut ok = true;
            for oe in &orphan_edges {
                let mut options: Vec<(usize, &crate::PathCandidate, &PartialCgt)> = Vec::new();
                for opc in &oe.paths {
                    for op in dyng.beam(oe.dep, opc.dep_api) {
                        options.push((opc.path.size_excluding_sink(graph) + op.size, opc, op));
                    }
                }
                options.sort_by_key(|(cost, pc, _)| (*cost, pc.id));
                let mut absorbed = false;
                // Many root paths tie in cost but differ in which command
                // head they pass through; enough must be tried to find the
                // or-consistent one.
                for (_, opc, op) in options.into_iter().take(64) {
                    let Some(with_path) = merge_claims(&claimed, &[sink_claim(&opc.path)]) else {
                        continue;
                    };
                    let Some(new_claims) = merge_claims(&with_path, &op.claimed) else {
                        continue;
                    };
                    let mut trial = cgt.clone();
                    trial.absorb_path(&opc.path, graph);
                    trial.merge(&op.cgt);
                    if trial.is_or_consistent(graph) && trial.is_connected(graph) {
                        cgt = trial;
                        claimed = new_claims;
                        assignment.extend(op.assignment.iter().copied());
                        node_claims.push((oe.dep, sink_claim(&opc.path)));
                        node_claims.extend(op.node_claims.iter().copied());
                        path_len += opc.path.size(graph) + op.path_len;
                        score_milli += op.score_milli;
                        absorbed = true;
                        break;
                    }
                }
                if !absorbed {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }

            if cgt.is_valid(graph) {
                let size = cgt.api_count(graph);
                let key = (size, path_len, std::cmp::Reverse(score_milli));
                if best_key.is_none_or(|bk| key < bk) {
                    best_key = Some(key);
                    best = Some(BestCgt {
                        cgt,
                        size,
                        assignment,
                        node_claims,
                    });
                }
            }
        }
    }
    Ok(best)
}

/// Kernel counterpart of [`final_join`]: same candidate enumeration,
/// claim handling and best-key selection, with the per-candidate absorb /
/// or-check / connectivity trials run on arena-backed bitsets. Path CGTs
/// are converted to bits once per path instead of re-absorbed per trial;
/// the winning tree is materialized as a reference `Cgt` only when it
/// improves the best key.
fn final_join_kernel(
    graph: &nlquery_grammar::GrammarGraph,
    layout: &CgtLayout,
    arena: &mut CgtArena,
    map: &EdgeToPath,
    dyng: &DynamicGrammarGraph,
    root: usize,
    deadline: &Deadline,
) -> Result<Option<BestCgt>, TimedOut> {
    let root_edge = map.edges.iter().find(|e| e.gov.is_none() && e.dep == root);
    let orphan_edges: Vec<_> = map
        .edges
        .iter()
        .filter(|e| e.gov.is_none() && e.dep != root)
        .collect();

    let mut best: Option<BestCgt> = None;
    let Some(root_edge) = root_edge else {
        return Ok(None);
    };

    // Bit form of every orphan path, aligned with `orphan_edges[i].paths`.
    let orphan_bits: Vec<Vec<BitCgt>> = orphan_edges
        .iter()
        .map(|oe| {
            oe.paths
                .iter()
                .map(|opc| Cgt::from_path(&opc.path, graph).to_bits(layout))
                .collect()
        })
        .collect();

    let mut best_key: Option<(usize, usize, std::cmp::Reverse<u64>)> = None;
    let mut polls: u64 = 0;
    for pc in &root_edge.paths {
        deadline.check()?;
        let path_bits = Cgt::from_path(&pc.path, graph).to_bits(layout);
        for partial in dyng.beam(root, pc.dep_api) {
            polls += 1;
            if polls.is_multiple_of(JOIN_DEADLINE_STRIDE) {
                deadline.check()?;
            }
            let bits = partial
                .bits
                .as_ref()
                .expect("kernel beam entries carry bits");
            let mut cgt = arena.alloc(layout);
            cgt.copy_from(bits);
            if !cgt.try_merge(&path_bits, layout) {
                arena.release(cgt);
                continue;
            }
            let mut assignment = partial.assignment.clone();
            let mut node_claims = partial.node_claims.clone();
            node_claims.push((root, sink_claim(&pc.path)));
            let mut path_len = partial.path_len + pc.path.size(graph);
            let mut score_milli = partial.score_milli;
            let Some(mut claimed) = merge_claims(&partial.claimed, &[sink_claim(&pc.path)]) else {
                arena.release(cgt);
                continue;
            };

            // Greedily absorb each root-attached orphan with its cheapest
            // consistent option.
            let mut ok = true;
            for (oe, oe_bits) in orphan_edges.iter().zip(&orphan_bits) {
                let mut options: Vec<(usize, usize, &crate::PathCandidate, &PartialCgt)> =
                    Vec::new();
                for (pi, opc) in oe.paths.iter().enumerate() {
                    for op in dyng.beam(oe.dep, opc.dep_api) {
                        options.push((opc.path.size_excluding_sink(graph) + op.size, pi, opc, op));
                    }
                }
                options.sort_by_key(|(cost, _, pc, _)| (*cost, pc.id));
                let mut absorbed = false;
                // Many root paths tie in cost but differ in which command
                // head they pass through; enough must be tried to find the
                // or-consistent one.
                for (_, pi, opc, op) in options.into_iter().take(64) {
                    let Some(with_path) = merge_claims(&claimed, &[sink_claim(&opc.path)]) else {
                        continue;
                    };
                    let Some(new_claims) = merge_claims(&with_path, &op.claimed) else {
                        continue;
                    };
                    let op_bits = op.bits.as_ref().expect("kernel beam entries carry bits");
                    let mut trial = arena.alloc(layout);
                    trial.copy_from(&cgt);
                    if trial.try_merge(&oe_bits[pi], layout)
                        && trial.try_merge(op_bits, layout)
                        && arena.is_connected(&trial, layout)
                    {
                        arena.release(std::mem::replace(&mut cgt, trial));
                        claimed = new_claims;
                        assignment.extend(op.assignment.iter().copied());
                        node_claims.push((oe.dep, sink_claim(&opc.path)));
                        node_claims.extend(op.node_claims.iter().copied());
                        path_len += opc.path.size(graph) + op.path_len;
                        score_milli += op.score_milli;
                        absorbed = true;
                        break;
                    }
                    arena.release(trial);
                }
                if !absorbed {
                    ok = false;
                    break;
                }
            }
            if !ok {
                arena.release(cgt);
                continue;
            }

            if arena.is_valid(&cgt, layout) {
                let size = cgt.api_count(layout);
                let key = (size, path_len, std::cmp::Reverse(score_milli));
                if best_key.is_none_or(|bk| key < bk) {
                    best_key = Some(key);
                    best = Some(BestCgt {
                        cgt: Cgt::from_bits(&cgt, layout),
                        size,
                        assignment,
                        node_claims,
                    });
                }
            }
            arena.release(cgt);
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge2path;
    use crate::{QueryEdge, QueryNode};
    use nlquery_grammar::{GrammarGraph, SearchLimits};
    use nlquery_nlp::{ApiCandidate, ApiDoc, DepRel, Pos};
    use std::time::Duration;

    fn domain() -> Domain {
        let graph = GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg
            insert_arg ::= string pos iter
            string     ::= STRING
            pos        ::= POSITION | START | pos_arg
            pos_arg    ::= AFTER string | STARTFROM string
            iter       ::= ITERATIONSCOPE iter_arg | LINESCOPE
            iter_arg   ::= scope cond
            scope      ::= LINESCOPE | DOCSCOPE
            cond       ::= CONTAINS entity | ALL
            entity     ::= NUMBERTOKEN | STRING
            "#,
        )
        .unwrap();
        Domain::builder("t")
            .graph(graph)
            .docs(vec![
                ApiDoc::new("INSERT", &["insert"], "inserts a string", 0),
                ApiDoc::new("STRING", &["string"], "a string", 1),
                ApiDoc::new("POSITION", &["position"], "a position", 1),
                ApiDoc::new("START", &["start"], "the start", 0),
                ApiDoc::new("AFTER", &["after"], "after a string", 0),
                ApiDoc::new("STARTFROM", &["start", "from"], "counted from the start", 0),
                ApiDoc::new("ITERATIONSCOPE", &["iteration", "scope"], "iterate", 0),
                ApiDoc::new("LINESCOPE", &["line"], "lines", 0),
                ApiDoc::new("DOCSCOPE", &["document"], "document", 0),
                ApiDoc::new("CONTAINS", &["contain"], "contains", 0),
                ApiDoc::new("ALL", &["all", "every"], "all", 0),
                ApiDoc::new("NUMBERTOKEN", &["number"], "numbers", 0),
            ])
            .literal_api("STRING")
            .build()
            .unwrap()
    }

    fn qnode(id: usize, word: &str) -> QueryNode {
        QueryNode {
            id,
            words: vec![word.to_string()],
            pos: Pos::Noun,
            literal: None,
        }
    }

    fn cand(api: &str) -> ApiCandidate {
        ApiCandidate {
            api: api.to_string(),
            score: 1.0,
        }
    }

    /// The paper's Figure 3/4/5 query structure:
    /// insert -> {string, start, line}; line as a leaf under start? No —
    /// insert -> string(obj), start(at), line nested under start(of).
    fn paper_setup() -> (QueryGraph, WordToApi) {
        let q = QueryGraph {
            nodes: vec![
                qnode(0, "insert"),
                qnode(1, "string"),
                qnode(2, "start"),
                qnode(3, "line"),
            ],
            edges: vec![
                QueryEdge {
                    gov: 0,
                    dep: 1,
                    rel: DepRel::Obj,
                },
                QueryEdge {
                    gov: 0,
                    dep: 2,
                    rel: DepRel::Nmod("at".into()),
                },
                QueryEdge {
                    gov: 0,
                    dep: 3,
                    rel: DepRel::Nmod("in".into()),
                },
            ],
            root: Some(0),
        };
        let w2a = WordToApi {
            candidates: vec![
                vec![cand("INSERT")],
                vec![cand("STRING")],
                vec![cand("START"), cand("STARTFROM")],
                vec![cand("LINESCOPE")],
            ],
        };
        (q, w2a)
    }

    fn run(
        d: &Domain,
        q: &QueryGraph,
        w2a: &WordToApi,
        cfg: &SynthesisConfig,
    ) -> (DynamicGrammarGraph, Option<BestCgt>, SynthesisStats) {
        let map = edge2path::compute(q, w2a, d, SearchLimits::default());
        let deadline = Deadline::new(Duration::from_secs(10));
        let mut stats = SynthesisStats::default();
        let (g, b) = synthesize_with_graph(d, q, w2a, &map, cfg, &deadline, &mut stats).unwrap();
        (g, b, stats)
    }

    #[test]
    fn solves_paper_example() {
        let d = domain();
        let (q, w2a) = paper_setup();
        let cfg = SynthesisConfig::default();
        let (dyng, best, stats) = run(&d, &q, &w2a, &cfg);
        let best = best.expect("solution exists");
        assert!(best.cgt.is_valid(d.graph()), "{:?}", best.cgt);
        // Optimal: INSERT, STRING, START, LINESCOPE = 4 APIs.
        assert_eq!(best.size, 4);
        // The dynamic grammar graph recorded entries for all nodes.
        assert!(dyng.len() >= 4);
        assert!(stats.sibling_combinations >= 2);
    }

    #[test]
    fn matches_hisyn_minimum() {
        // Losslessness: DGGT finds a CGT of the same minimal size as the
        // exhaustive baseline.
        let d = domain();
        let (q, w2a) = paper_setup();
        let map = edge2path::compute(&q, &w2a, &d, SearchLimits::default());
        let deadline = Deadline::new(Duration::from_secs(10));

        let mut hs = SynthesisStats::default();
        let h = crate::hisyn::synthesize(
            &d,
            &q,
            &w2a,
            &map,
            &SynthesisConfig::hisyn_baseline(),
            &deadline,
            &mut hs,
        )
        .unwrap()
        .expect("baseline finds solution");

        let cfg = SynthesisConfig::default();
        let (_, best, _) = run(&d, &q, &w2a, &cfg);
        assert_eq!(best.unwrap().size, h.size);
    }

    #[test]
    fn grammar_pruning_counts() {
        let d = domain();
        let (q, mut w2a) = paper_setup();
        // Make "start" more ambiguous to create conflicting or-choices.
        w2a.candidates[2].push(cand("POSITION"));
        let cfg = SynthesisConfig::default();
        let (_, best, stats) = run(&d, &q, &w2a, &cfg);
        assert!(best.is_some());
        assert!(
            stats.pruned_grammar > 0 || stats.pruned_size > 0,
            "expected some pruning: {stats:?}"
        );
    }

    #[test]
    fn pruning_does_not_change_result() {
        let d = domain();
        let (q, mut w2a) = paper_setup();
        w2a.candidates[2].push(cand("POSITION"));
        let with = SynthesisConfig::default();
        let without = SynthesisConfig::default()
            .grammar_pruning(false)
            .size_pruning(false);
        let (_, a, _) = run(&d, &q, &w2a, &with);
        let (_, b, _) = run(&d, &q, &w2a, &without);
        assert_eq!(a.unwrap().size, b.unwrap().size);
    }

    #[test]
    fn single_node_query() {
        let d = domain();
        let q = QueryGraph {
            nodes: vec![qnode(0, "insert")],
            edges: vec![],
            root: Some(0),
        };
        let w2a = WordToApi {
            candidates: vec![vec![cand("INSERT")]],
        };
        let cfg = SynthesisConfig::default();
        let (_, best, _) = run(&d, &q, &w2a, &cfg);
        assert_eq!(best.unwrap().size, 1);
    }

    #[test]
    fn rootless_query_returns_none() {
        let d = domain();
        let q = QueryGraph::default();
        let w2a = WordToApi::default();
        let cfg = SynthesisConfig::default();
        let (dyng, best, _) = run(&d, &q, &w2a, &cfg);
        assert!(best.is_none());
        assert!(dyng.is_empty());
    }

    #[test]
    fn timeout_propagates() {
        let d = domain();
        let (q, w2a) = paper_setup();
        let map = edge2path::compute(&q, &w2a, &d, SearchLimits::default());
        let deadline = Deadline::new(Duration::ZERO);
        let mut stats = SynthesisStats::default();
        let r = synthesize(
            &d,
            &q,
            &w2a,
            &map,
            &SynthesisConfig::default(),
            &deadline,
            &mut stats,
        );
        assert_eq!(r, Err(TimedOut));
    }

    #[test]
    fn beam_keeps_two_best_per_top() {
        let mut dyng = DynamicGrammarGraph::default();
        let api = NodeId::from_index(0);
        for size in [5usize, 3, 4, 2, 7] {
            let mut cgt = Cgt::new();
            // Unique node sets so dedup does not collapse them.
            for i in 0..size {
                cgt.nodes.insert(NodeId::from_index(100 + size * 10 + i));
            }
            dyng.insert(
                (0, api),
                PartialCgt {
                    cgt,
                    bits: None,
                    size,
                    path_len: 0,
                    score_milli: 0,
                    top: None,
                    or_sig: vec![],
                    claimed: vec![],
                    node_claims: vec![],
                    assignment: vec![],
                },
                3,
            );
        }
        // All entries share top=None: the per-top cap keeps the best two.
        let beam = dyng.beam(0, api);
        assert_eq!(beam.iter().map(|p| p.size).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(dyng.best(0, api).unwrap().size, 2);
    }

    #[test]
    fn beam_keeps_contexts_with_distinct_tops() {
        let mut dyng = DynamicGrammarGraph::default();
        let api = NodeId::from_index(0);
        for (size, top) in [(2usize, 10usize), (3, 10), (4, 20), (9, 30)] {
            let mut cgt = Cgt::new();
            for i in 0..size {
                cgt.nodes.insert(NodeId::from_index(100 + size * 10 + i));
            }
            dyng.insert(
                (0, api),
                PartialCgt {
                    cgt,
                    bits: None,
                    size,
                    path_len: 0,
                    score_milli: 0,
                    top: Some(NodeId::from_index(top)),
                    or_sig: vec![],
                    claimed: vec![],
                    node_claims: vec![],
                    assignment: vec![],
                },
                3,
            );
        }
        // Even with beam 3 exceeded, the worst entry of a multi-entry top
        // is evicted before any top loses its only representative.
        let beam = dyng.beam(0, api);
        let tops: Vec<usize> = beam
            .iter()
            .filter_map(|p| p.top.map(|t| t.index()))
            .collect();
        assert!(
            tops.contains(&10) && tops.contains(&20) && tops.contains(&30),
            "{tops:?}"
        );
        assert_eq!(beam.len(), 3);
    }
}
