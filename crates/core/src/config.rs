//! Synthesis configuration.

use std::time::Duration;

use nlquery_grammar::SearchLimits;

/// Which step-5 algorithm runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The exhaustive HISyn baseline: enumerate every combination of
    /// candidate grammar paths and merge each into a candidate CGT.
    HiSyn,
    /// Dynamic grammar graph-based translation (the paper's contribution).
    #[default]
    Dggt,
}

/// Configuration of a [`crate::Synthesizer`].
///
/// The defaults reproduce the paper's setup: DGGT with all three
/// optimizations on and a 20-second per-query deadline (scale it down for
/// quick runs).
///
/// # Example
///
/// ```rust
/// use std::time::Duration;
/// use nlquery_core::{Engine, SynthesisConfig};
///
/// let cfg = SynthesisConfig::default()
///     .engine(Engine::HiSyn)
///     .deadline(Duration::from_secs(2))
///     .grammar_pruning(false);
/// assert_eq!(cfg.engine, Engine::HiSyn);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisConfig {
    /// The step-5 algorithm.
    pub engine: Engine,
    /// Wall-clock budget per query. Exceeding it ends the run with
    /// [`crate::Outcome::Timeout`] and
    /// [`crate::SynthesisError::DeadlineExceeded`]; the check is threaded
    /// from the pipeline's stage boundaries down into every hot loop
    /// (EdgeToPath edge boundaries, combination enumeration, merge loops),
    /// so an exploding query returns within roughly one poll stride — or
    /// one bounded path search — of the budget instead of hogging its
    /// worker. Searches a query has already started run to completion and
    /// are memoized, keeping the shared cache warm for the rest of a batch
    /// even when the query itself times out.
    pub deadline: Duration,
    /// Grammar-based pruning of conflicting-"or" combinations (§V-A).
    pub grammar_pruning: bool,
    /// Size-based pruning of oversized combinations (§V-C).
    pub size_pruning: bool,
    /// Orphan-node relocation (§V-B). When off, orphans are attached to the
    /// grammar root as in HISyn.
    pub orphan_relocation: bool,
    /// Maximum candidate APIs kept per query word (WordToAPI map width).
    pub max_candidates: usize,
    /// Minimum semantic-match score for a candidate API.
    pub min_score: f64,
    /// Limits applied to the reversed all-path search.
    pub search_limits: SearchLimits,
    /// Maximum number of relocated-graph variants tried per query when
    /// orphan relocation proposes several governors.
    pub max_orphan_variants: usize,
    /// How many best partial CGTs each dynamic-grammar-graph node keeps
    /// for conflict-repairing backtracks.
    pub dggt_beam: usize,
    /// Run trial merges on the bitset CGT kernel (word-wise OR plus
    /// incremental or-conflict checks) instead of the `BTreeSet`-backed
    /// reference representation. Purely a representation switch: results
    /// are bit-identical either way.
    pub cgt_kernel: bool,
    /// Consult the cross-query [`MergeMemo`](crate::MergeMemo) when one is
    /// attached (resident service / batch paths). Purely a caching switch:
    /// memoized results are bit-identical to recomputed ones. Off, the
    /// merge stage always recomputes — the ablation / differential-test
    /// path.
    pub merge_memo: bool,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            engine: Engine::Dggt,
            deadline: Duration::from_secs(20),
            grammar_pruning: true,
            size_pruning: true,
            orphan_relocation: true,
            max_candidates: 6,
            min_score: 0.3,
            search_limits: SearchLimits::default(),
            max_orphan_variants: 8,
            dggt_beam: 12,
            cgt_kernel: true,
            merge_memo: true,
        }
    }
}

impl SynthesisConfig {
    /// A configuration reproducing the HISyn baseline: exhaustive
    /// enumeration, no grammar-based pruning, no orphan relocation (orphans
    /// attach to the grammar root).
    pub fn hisyn_baseline() -> SynthesisConfig {
        SynthesisConfig {
            engine: Engine::HiSyn,
            grammar_pruning: false,
            size_pruning: false,
            orphan_relocation: false,
            ..SynthesisConfig::default()
        }
    }

    /// Sets the engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the per-query deadline (wall-clock budget).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Alias of [`SynthesisConfig::deadline`], kept because the paper's
    /// evaluation vocabulary calls the exceeded budget a "timeout".
    pub fn timeout(self, timeout: Duration) -> Self {
        self.deadline(timeout)
    }

    /// Toggles grammar-based pruning.
    pub fn grammar_pruning(mut self, on: bool) -> Self {
        self.grammar_pruning = on;
        self
    }

    /// Toggles size-based pruning.
    pub fn size_pruning(mut self, on: bool) -> Self {
        self.size_pruning = on;
        self
    }

    /// Toggles orphan-node relocation.
    pub fn orphan_relocation(mut self, on: bool) -> Self {
        self.orphan_relocation = on;
        self
    }

    /// Sets the WordToAPI candidate cap.
    pub fn max_candidates(mut self, k: usize) -> Self {
        self.max_candidates = k;
        self
    }

    /// Sets the minimum semantic-match score.
    pub fn min_score(mut self, s: f64) -> Self {
        self.min_score = s;
        self
    }

    /// Sets the path-search limits.
    pub fn search_limits(mut self, limits: SearchLimits) -> Self {
        self.search_limits = limits;
        self
    }

    /// Toggles the bitset CGT merge kernel.
    pub fn cgt_kernel(mut self, on: bool) -> Self {
        self.cgt_kernel = on;
        self
    }

    /// Toggles cross-query merge memoization (no effect unless a
    /// [`MergeMemo`](crate::MergeMemo) is attached by the caller).
    pub fn merge_memo(mut self, on: bool) -> Self {
        self.merge_memo = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_dggt() {
        let cfg = SynthesisConfig::default();
        assert_eq!(cfg.engine, Engine::Dggt);
        assert!(cfg.grammar_pruning && cfg.size_pruning && cfg.orphan_relocation);
        assert_eq!(cfg.deadline, Duration::from_secs(20));
    }

    #[test]
    fn hisyn_baseline_disables_new_optimizations() {
        let cfg = SynthesisConfig::hisyn_baseline();
        assert_eq!(cfg.engine, Engine::HiSyn);
        assert!(!cfg.grammar_pruning);
        assert!(!cfg.orphan_relocation);
    }

    #[test]
    fn builder_chains() {
        let cfg = SynthesisConfig::default()
            .max_candidates(2)
            .min_score(0.5)
            .timeout(Duration::from_millis(100));
        assert_eq!(cfg.max_candidates, 2);
        assert_eq!(cfg.deadline, Duration::from_millis(100));
    }

    #[test]
    fn deadline_and_timeout_builders_agree() {
        let a = SynthesisConfig::default().deadline(Duration::from_millis(7));
        let b = SynthesisConfig::default().timeout(Duration::from_millis(7));
        assert_eq!(a, b);
    }
}
