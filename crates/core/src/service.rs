//! A resident synthesis engine: a long-lived worker pool serving
//! submissions for one domain.
//!
//! [`ServiceEngine`] is the serving-layer refactor of the original
//! per-call batch pool: workers are spawned **once**, at construction, and
//! persist across submissions together with the shared
//! [`SharedPathCache`] — the shape a resident query service needs, where
//! requests arrive continuously instead of as one offline slice.
//! [`crate::BatchEngine`] is reimplemented on top of it: a batch is one
//! [`ServiceEngine::submit`] call followed by a blocking wait.
//!
//! # Scheduling
//!
//! Each worker owns a resident deque. A submission is *planned* onto the
//! deques exactly like the original batch engine planned its per-call
//! deques: queries whose pruned graphs request the same EdgeToPath memo
//! keys are co-scheduled onto one worker (LPT over signature groups), so a
//! cold cache is populated once per key group while other workers make
//! progress on disjoint groups. Workers pop their own deque from the
//! front and steal from the back of a neighbour's when idle; with no work
//! anywhere they block on a condvar instead of spinning.
//!
//! A submission of `n` jobs on a pool of `w` workers is clamped to
//! `min(w, n)` *eligible* workers — the same clamp the per-call pool
//! applied by spawning fewer threads — so per-submission worker statistics
//! keep their historical shape and a one-query submission never fans out.
//!
//! # Fault isolation
//!
//! Every job runs under [`std::panic::catch_unwind`]; a panic becomes an
//! [`Outcome::Panicked`](crate::Outcome::Panicked) result for that job
//! only, and the **worker thread survives** — a resident pool must never
//! leak threads to bad queries. Completion callbacks (see
//! [`ServiceEngine::submit_with`]) are guarded the same way.
//!
//! # Observability
//!
//! The engine keeps **monotonic** cumulative counters
//! ([`ServiceEngine::stats`]): jobs submitted/completed, per-outcome
//! tallies, and the shared cache's own cumulative [`CacheStats`]. They are
//! never reset, so a Prometheus scraper can export them directly;
//! [`ServiceStats::delta_since`] derives per-window deltas from two
//! snapshots, exactly like [`CacheStats::delta_since`] does per batch.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::batch::BatchOptions;
use crate::memo::{CacheStats, SharedPathCache};
use crate::merge_memo::MergeMemo;
use crate::pipeline::{Outcome, Synthesis, Synthesizer};
use crate::{Domain, SynthesisConfig};

/// A fault injected into one job, either directly via
/// [`JobSpec::fault`] or by a hook registered with
/// [`crate::BatchEngine::set_fault_hook`]. Exists so the pool's isolation
/// machinery can be exercised deterministically (fault-injection tests,
/// chaos harnesses) without planting bugs in the pipeline.
#[derive(Debug, Clone)]
pub enum Fault {
    /// Panic with this message in place of synthesizing the query.
    Panic(String),
    /// Synthesize the query under this configuration instead of the
    /// engine's — e.g. a zero [`SynthesisConfig::deadline`] to force a
    /// deterministic `DeadlineExceeded`.
    Config(SynthesisConfig),
}

/// Per-worker utilization counters of one submission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Queries this worker synthesized.
    pub queries: usize,
    /// Queries it stole from other workers' deques.
    pub stolen: usize,
    /// Time it spent synthesizing (as opposed to idling on empty deques).
    pub busy: Duration,
}

/// One query to synthesize, as handed to [`ServiceEngine::submit`].
#[derive(Debug, Clone, Default)]
pub struct JobSpec {
    /// The natural-language query.
    pub query: String,
    /// Per-job configuration override (e.g. a request-scoped
    /// [`SynthesisConfig::deadline`]). `None` runs under the engine's
    /// configuration — the common, clone-free path.
    pub config: Option<SynthesisConfig>,
    /// Injected fault, for isolation tests. Production jobs leave this
    /// `None`.
    pub fault: Option<Fault>,
}

impl JobSpec {
    /// A plain job: engine configuration, no fault.
    pub fn new(query: impl Into<String>) -> JobSpec {
        JobSpec {
            query: query.into(),
            config: None,
            fault: None,
        }
    }
}

/// Completion callback: `(job index within the submission, result)`.
/// Runs on the worker thread that finished the job; panics are caught and
/// ignored so a bad callback cannot kill a resident worker.
type NotifyFn = Box<dyn Fn(usize, &Synthesis) + Send + Sync>;

/// Locks a mutex, recovering from poisoning. Every critical section in
/// this module leaves its data consistent before any fallible step, so a
/// lock poisoned by a dying thread still guards sound state.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// `&str` or formatted `String` covers practically all of std and ours).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One queued unit of work.
struct Job {
    submission: Arc<Submission>,
    index: usize,
    query: String,
    config: Option<SynthesisConfig>,
    fault: Option<Fault>,
}

/// Shared state of one submission: result slots, per-worker stats, and
/// the completion latch.
struct Submission {
    results: Mutex<Vec<Option<Synthesis>>>,
    worker_stats: Mutex<Vec<WorkerStats>>,
    /// Jobs not yet recorded.
    remaining: AtomicUsize,
    /// Workers this submission may run on (`0..eligible`): the pool
    /// clamped to the submission size, preserving the per-call engine's
    /// "pool clamps to batch size" semantics and stats shape.
    eligible: usize,
    started: Instant,
    /// Wall-clock from submit to the last recorded job.
    wall: Mutex<Option<Duration>>,
    done: Mutex<bool>,
    finished: Condvar,
    notify: Option<NotifyFn>,
}

impl Submission {
    /// Records one finished job; the last record flips the latch.
    ///
    /// Ordering: the engine's cumulative counters are bumped **before**
    /// the completion callback runs, so anything a callback makes
    /// observable (e.g. an HTTP response delivered by the serving layer)
    /// is already covered by the counters; the result is written
    /// **before** the remaining-count decrement, so `wait()` returning
    /// implies every result of this submission is visible.
    fn record(
        &self,
        shared: &PoolShared,
        worker: usize,
        index: usize,
        synthesis: Synthesis,
        stolen: bool,
        busy: Duration,
    ) {
        {
            let mut stats = lock(&self.worker_stats);
            let slot = &mut stats[worker];
            slot.queries += 1;
            slot.stolen += usize::from(stolen);
            slot.busy += busy;
        }
        shared.tally_outcome(&synthesis);
        shared.completed.fetch_add(1, Ordering::Release);
        if let Some(notify) = &self.notify {
            // A panicking callback must not kill the resident worker (or
            // leave the submission latch unflipped).
            let _ = catch_unwind(AssertUnwindSafe(|| notify(index, &synthesis)));
        }
        lock(&self.results)[index] = Some(synthesis);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *lock(&self.wall) = Some(self.started.elapsed());
            let mut done = lock(&self.done);
            *done = true;
            self.finished.notify_all();
        }
    }
}

/// The finished view of one submission.
#[derive(Debug)]
pub struct SubmissionReport {
    /// One [`Synthesis`] per job, in submission order — identical to
    /// sequential [`Synthesizer::synthesize`] output for un-faulted jobs.
    pub results: Vec<Synthesis>,
    /// Per-worker utilization, indexed by worker id over the submission's
    /// eligible workers.
    pub workers: Vec<WorkerStats>,
    /// Wall-clock from submit to the last completed job.
    pub wall: Duration,
}

/// Handle to an in-flight submission. Results are collected with
/// [`SubmissionHandle::wait`]; dropping the handle instead is fine — the
/// jobs keep the submission alive and completion callbacks still fire.
#[derive(Debug)]
pub struct SubmissionHandle {
    submission: Arc<Submission>,
}

impl std::fmt::Debug for Submission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Submission")
            .field("remaining", &self.remaining.load(Ordering::Relaxed))
            .field("eligible", &self.eligible)
            .finish()
    }
}

impl SubmissionHandle {
    /// Blocks until every job of the submission has completed and returns
    /// the collected results.
    pub fn wait(self) -> SubmissionReport {
        {
            let mut done = lock(&self.submission.done);
            while !*done {
                done = self
                    .submission
                    .finished
                    .wait(done)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        let results: Vec<Synthesis> = lock(&self.submission.results)
            .iter_mut()
            .map(|slot| {
                slot.take().unwrap_or_else(|| {
                    // Unreachable with resident workers (the latch only
                    // flips after every slot is written); kept as a
                    // belt-and-braces placeholder rather than a panic.
                    Synthesis::panicked(
                        "worker died before reporting this query".to_string(),
                        Duration::ZERO,
                    )
                })
            })
            .collect();
        let workers = lock(&self.submission.worker_stats).clone();
        let wall = lock(&self.submission.wall).unwrap_or_else(|| self.submission.started.elapsed());
        SubmissionReport {
            results,
            workers,
            wall,
        }
    }
}

/// Monotonic cumulative counters of a [`ServiceEngine`], plus two queue
/// gauges. Counters are **never reset** — a Prometheus scraper exports
/// them as-is, and [`ServiceStats::delta_since`] derives per-window
/// activity from two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs ever submitted.
    pub submitted: u64,
    /// Jobs ever completed (recorded into their submission).
    pub completed: u64,
    /// Completed jobs that produced an expression.
    pub successes: u64,
    /// Completed jobs that hit their deadline.
    pub timeouts: u64,
    /// Completed jobs with no usable dependency structure.
    pub no_parse: u64,
    /// Completed jobs that finished without a valid tree.
    pub no_result: u64,
    /// Completed jobs whose synthesis panicked (caught and isolated).
    pub panics: u64,
    /// Jobs currently queued, not yet claimed by a worker (gauge).
    pub queued: usize,
    /// Jobs currently being synthesized (gauge).
    pub running: usize,
    /// The shared memo cache's cumulative counters.
    pub cache: CacheStats,
    /// The cross-query merge memo's cumulative counters.
    pub merge: CacheStats,
}

impl ServiceStats {
    /// Counter difference `self - earlier` (monotonic counters only; the
    /// `queued` / `running` gauges and the cache gauges keep `self`'s
    /// values). The per-window analogue of [`CacheStats::delta_since`].
    pub fn delta_since(&self, earlier: &ServiceStats) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.saturating_sub(earlier.submitted),
            completed: self.completed.saturating_sub(earlier.completed),
            successes: self.successes.saturating_sub(earlier.successes),
            timeouts: self.timeouts.saturating_sub(earlier.timeouts),
            no_parse: self.no_parse.saturating_sub(earlier.no_parse),
            no_result: self.no_result.saturating_sub(earlier.no_result),
            panics: self.panics.saturating_sub(earlier.panics),
            queued: self.queued,
            running: self.running,
            cache: self.cache.delta_since(&earlier.cache),
            merge: self.merge.delta_since(&earlier.merge),
        }
    }

    /// Jobs submitted but not yet completed (queued + running + being
    /// recorded). Derived from the monotonic counters, so it never
    /// transiently undercounts.
    pub fn outstanding(&self) -> u64 {
        self.submitted.saturating_sub(self.completed)
    }
}

/// Resident pool state: one deque per worker plus the shutdown flag, under
/// one mutex (claims and plants are microseconds; synthesis — the
/// expensive part — runs outside the lock).
struct PoolState {
    deques: Vec<VecDeque<Job>>,
    shutdown: bool,
}

/// State shared between the engine handle and its worker threads.
struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when work is planted or shutdown begins.
    work: Condvar,
    synthesizer: Synthesizer,
    cache: Arc<SharedPathCache>,
    merge_memo: Arc<MergeMemo>,
    co_schedule: bool,
    workers: usize,
    queued: AtomicUsize,
    running: AtomicUsize,
    submitted: AtomicU64,
    completed: AtomicU64,
    successes: AtomicU64,
    timeouts: AtomicU64,
    no_parse: AtomicU64,
    no_result: AtomicU64,
    panics: AtomicU64,
}

impl PoolShared {
    fn tally_outcome(&self, synthesis: &Synthesis) {
        let counter = match synthesis.outcome {
            Outcome::Success => &self.successes,
            Outcome::Timeout => &self.timeouts,
            Outcome::NoParse => &self.no_parse,
            Outcome::NoResult => &self.no_result,
            Outcome::Panicked => &self.panics,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A resident, concurrent synthesis engine for one domain.
///
/// Workers and the shared [`SharedPathCache`] persist across
/// [`ServiceEngine::submit`] calls, so a long-lived process (a batch
/// driver, the `nlquery-serve` HTTP service) pays thread spawn and cache
/// warm-up once, not per call. Dropping the engine drains the queue,
/// stops the workers and joins them.
///
/// ```rust
/// use nlquery_core::{Domain, JobSpec, ServiceEngine, SynthesisConfig};
/// use nlquery_grammar::GrammarGraph;
/// use nlquery_nlp::ApiDoc;
///
/// let graph = GrammarGraph::parse("command ::= DELETE entity\nentity ::= WORD")?;
/// let domain = Domain::builder("mini")
///     .graph(graph)
///     .docs(vec![
///         ApiDoc::new("DELETE", &["delete"], "deletes an entity", 0),
///         ApiDoc::new("WORD", &["word"], "a word", 0),
///     ])
///     .build()?;
/// let engine = ServiceEngine::new(domain, SynthesisConfig::default());
/// let report = engine
///     .submit(vec![JobSpec::new("delete the word")])
///     .wait();
/// assert_eq!(report.results.len(), 1);
/// assert_eq!(engine.stats().completed, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ServiceEngine {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServiceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceEngine")
            .field("workers", &self.shared.workers)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ServiceEngine {
    /// Creates an engine with default [`BatchOptions`].
    pub fn new(domain: Domain, config: SynthesisConfig) -> ServiceEngine {
        ServiceEngine::with_options(domain, config, BatchOptions::default())
    }

    /// Creates an engine with explicit worker count and cache shape, and
    /// spawns the resident workers.
    pub fn with_options(
        domain: Domain,
        config: SynthesisConfig,
        options: BatchOptions,
    ) -> ServiceEngine {
        let workers = if options.workers == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            options.workers
        };
        let shards = if options.cache_shards == 0 {
            crate::memo::DEFAULT_SHARDS
        } else {
            options.cache_shards
        };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                deques: (0..workers).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            work: Condvar::new(),
            synthesizer: Synthesizer::new(domain, config),
            cache: Arc::new(SharedPathCache::with_shards(options.cache_capacity, shards)),
            merge_memo: Arc::new(MergeMemo::with_shards(options.cache_capacity, shards)),
            co_schedule: options.co_schedule,
            workers,
            queued: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            successes: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            no_parse: AtomicU64::new(0),
            no_result: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("nlquery-worker-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("spawn resident worker")
            })
            .collect();
        ServiceEngine { shared, handles }
    }

    /// The underlying sequential synthesizer.
    pub fn synthesizer(&self) -> &Synthesizer {
        &self.shared.synthesizer
    }

    /// The cross-query memo cache (shared across submissions and workers).
    pub fn cache(&self) -> &Arc<SharedPathCache> {
        &self.shared.cache
    }

    /// The cross-query merge memo (shared across submissions and workers).
    pub fn merge_memo(&self) -> &Arc<MergeMemo> {
        &self.shared.merge_memo
    }

    /// The resident worker count.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Jobs queued but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.queued.load(Ordering::Relaxed)
    }

    /// Jobs submitted but not yet completed. Zero means the engine is
    /// fully drained.
    pub fn outstanding(&self) -> u64 {
        self.stats().outstanding()
    }

    /// Monotonic cumulative counters (never reset — safe to export to
    /// Prometheus) plus queue gauges.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.shared;
        // `completed` is read before `submitted` so a concurrent submit
        // can only make `outstanding` over-, never under-estimate.
        let completed = s.completed.load(Ordering::Acquire);
        ServiceStats {
            submitted: s.submitted.load(Ordering::Acquire),
            completed,
            successes: s.successes.load(Ordering::Relaxed),
            timeouts: s.timeouts.load(Ordering::Relaxed),
            no_parse: s.no_parse.load(Ordering::Relaxed),
            no_result: s.no_result.load(Ordering::Relaxed),
            panics: s.panics.load(Ordering::Relaxed),
            queued: s.queued.load(Ordering::Relaxed),
            running: s.running.load(Ordering::Relaxed),
            cache: s.cache.stats(),
            merge: s.merge_memo.stats(),
        }
    }

    /// Submits a set of jobs for concurrent synthesis; returns a handle to
    /// wait on. Results (in [`SubmissionReport::results`]) come back in
    /// job order and are identical to sequential
    /// [`Synthesizer::synthesize`] output for un-faulted jobs.
    pub fn submit(&self, jobs: Vec<JobSpec>) -> SubmissionHandle {
        self.submit_inner(jobs, None)
    }

    /// [`ServiceEngine::submit`] with a completion callback, invoked on
    /// the worker thread as each job finishes — the serving layer uses
    /// this to stream results back to waiting connections without holding
    /// a thread per submission. The callback must be cheap and
    /// non-blocking; panics in it are caught and ignored.
    pub fn submit_with<F>(&self, jobs: Vec<JobSpec>, notify: F) -> SubmissionHandle
    where
        F: Fn(usize, &Synthesis) + Send + Sync + 'static,
    {
        self.submit_inner(jobs, Some(Box::new(notify)))
    }

    fn submit_inner(&self, jobs: Vec<JobSpec>, notify: Option<NotifyFn>) -> SubmissionHandle {
        let n = jobs.len();
        let eligible = self.shared.workers.min(n).max(1);
        let mut results = Vec::new();
        results.resize_with(n, || None);
        let submission = Arc::new(Submission {
            results: Mutex::new(results),
            worker_stats: Mutex::new(vec![WorkerStats::default(); eligible]),
            remaining: AtomicUsize::new(n),
            eligible,
            started: Instant::now(),
            wall: Mutex::new(if n == 0 { Some(Duration::ZERO) } else { None }),
            done: Mutex::new(n == 0),
            finished: Condvar::new(),
            notify,
        });
        if n == 0 {
            return SubmissionHandle { submission };
        }
        let assignment = self.plan(&jobs, eligible);
        self.shared.submitted.fetch_add(n as u64, Ordering::Release);
        self.shared.queued.fetch_add(n, Ordering::Relaxed);
        {
            let mut state = lock(&self.shared.state);
            for (index, (spec, worker)) in jobs.into_iter().zip(assignment).enumerate() {
                state.deques[worker].push_back(Job {
                    submission: Arc::clone(&submission),
                    index,
                    query: spec.query,
                    config: spec.config,
                    fault: spec.fault,
                });
            }
        }
        self.shared.work.notify_all();
        SubmissionHandle { submission }
    }

    /// Plans the worker assignment of a submission over its eligible
    /// workers — the same policy the per-call batch pool used for its
    /// deques.
    ///
    /// With co-scheduling on (and a real pool to schedule over), jobs are
    /// first grouped by the memo-key *signature* of their pruned query
    /// graph — the exact cache keys their EdgeToPath step will request,
    /// derived from the cheap steps 1–3. Each group lands on one worker
    /// (largest groups first, dealt to the least-loaded worker), so on a
    /// cold cache the group's first query computes the searches and the
    /// rest hit locally, while *other* workers make progress on disjoint
    /// key groups instead of blocking on the same in-flight slots.
    /// Otherwise the distribution is contiguous chunks in job order.
    fn plan(&self, jobs: &[JobSpec], eligible: usize) -> Vec<usize> {
        if eligible > 1 && self.shared.co_schedule && jobs.len() > eligible {
            use std::collections::HashMap;
            use std::hash::{DefaultHasher, Hash, Hasher};
            let mut groups: Vec<Vec<usize>> = Vec::new();
            let mut by_signature: HashMap<u64, usize> = HashMap::new();
            for (index, job) in jobs.iter().enumerate() {
                let keys = self.shared.synthesizer.edge_memo_keys(&job.query);
                let mut h = DefaultHasher::new();
                keys.hash(&mut h);
                let group = *by_signature.entry(h.finish()).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[group].push(index);
            }
            // Largest-first deal to the least-loaded worker (LPT): balances
            // load while keeping each group on one worker. Ties break on
            // group discovery order / lowest worker id — deterministic.
            let mut order: Vec<usize> = (0..groups.len()).collect();
            order.sort_by_key(|&g| (std::cmp::Reverse(groups[g].len()), g));
            let mut loads = vec![0usize; eligible];
            let mut assignment = vec![0usize; jobs.len()];
            for g in order {
                let w = (0..eligible).min_by_key(|&w| (loads[w], w)).expect(">=1");
                loads[w] += groups[g].len();
                for &index in &groups[g] {
                    assignment[index] = w;
                }
            }
            assignment
        } else {
            let chunk = jobs.len().div_ceil(eligible);
            (0..jobs.len()).map(|index| index / chunk).collect()
        }
    }
}

impl Drop for ServiceEngine {
    /// Graceful pool shutdown: queued jobs are drained (workers only exit
    /// on an *empty* queue), then the workers are joined.
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Claims the next job for worker `w`: own deque first (front), then a
/// steal (back) from the nearest neighbour holding a job this worker is
/// eligible for. Returns the job and whether it was stolen.
fn claim(state: &mut PoolState, w: usize) -> Option<(Job, bool)> {
    if let Some(job) = state.deques[w].pop_front() {
        return Some((job, false));
    }
    let n = state.deques.len();
    for i in 1..n {
        let v = (w + i) % n;
        // A submission clamped to fewer workers than the pool restricts
        // execution (and its stats vector) to workers `0..eligible`; a
        // higher-id worker skips those jobs when stealing.
        if let Some(pos) = state.deques[v]
            .iter()
            .rposition(|job| job.submission.eligible > w)
        {
            let job = state.deques[v].remove(pos).expect("position just found");
            return Some((job, true));
        }
    }
    None
}

/// Runs one job under the engine's, the job's, or a fault's configuration.
fn execute(shared: &PoolShared, job: &Job) -> Synthesis {
    let alt_config = match &job.fault {
        Some(Fault::Panic(message)) => panic!("{message}"),
        Some(Fault::Config(config)) => Some(config),
        None => job.config.as_ref(),
    };
    match alt_config {
        Some(config) => {
            let mut alt = shared.synthesizer.clone();
            alt.set_config(config.clone());
            alt.synthesize_memoized(&job.query, &shared.cache, &shared.merge_memo)
        }
        None => {
            shared
                .synthesizer
                .synthesize_memoized(&job.query, &shared.cache, &shared.merge_memo)
        }
    }
}

/// The resident worker body: claim, synthesize under a panic guard,
/// record, repeat; park on the condvar when idle; exit only when shutdown
/// is flagged **and** no claimable work remains (drain-on-drop).
fn worker_loop(shared: Arc<PoolShared>, w: usize) {
    loop {
        let claimed = {
            let mut state = lock(&shared.state);
            loop {
                if let Some(c) = claim(&mut state, w) {
                    break Some(c);
                }
                if state.shutdown {
                    break None;
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some((job, stolen)) = claimed else { return };
        shared.running.fetch_add(1, Ordering::Relaxed);
        shared.queued.fetch_sub(1, Ordering::Relaxed);
        let t = Instant::now();
        let run = catch_unwind(AssertUnwindSafe(|| execute(&shared, &job)));
        let synthesis = match run {
            Ok(synthesis) => synthesis,
            Err(payload) => Synthesis::panicked(panic_message(&*payload), t.elapsed()),
        };
        let busy = t.elapsed();
        job.submission
            .record(&shared, w, job.index, synthesis, stolen, busy);
        shared.running.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlquery_grammar::GrammarGraph;
    use nlquery_nlp::ApiDoc;

    fn domain() -> Domain {
        let graph = GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg | DELETE delete_arg
            insert_arg ::= string pos
            delete_arg ::= entity
            string     ::= STRING
            entity     ::= STRING | WORDTOKEN
            pos        ::= START | END
            "#,
        )
        .unwrap();
        Domain::builder("service-mini")
            .graph(graph)
            .docs(vec![
                ApiDoc::new("INSERT", &["insert"], "inserts a string at a position", 0),
                ApiDoc::new("DELETE", &["delete"], "deletes an entity", 0),
                ApiDoc::new("STRING", &["string"], "a string constant", 1),
                ApiDoc::new("WORDTOKEN", &["word"], "a word token", 0),
                ApiDoc::new("START", &["start"], "the start", 0),
                ApiDoc::new("END", &["end"], "the end", 0),
            ])
            .literal_api("STRING")
            .build()
            .unwrap()
    }

    const QUERIES: [&str; 4] = [
        "insert \":\" at the start",
        "delete the word",
        "insert \"-\" at the end",
        "delete every word",
    ];

    fn specs() -> Vec<JobSpec> {
        QUERIES.iter().map(|q| JobSpec::new(*q)).collect()
    }

    #[test]
    fn resident_pool_survives_many_submissions() {
        let engine = ServiceEngine::with_options(
            domain(),
            SynthesisConfig::default(),
            BatchOptions {
                workers: 2,
                cache_capacity: 64,
                ..BatchOptions::default()
            },
        );
        let sequential = Synthesizer::new(domain(), SynthesisConfig::default());
        let expected: Vec<_> = QUERIES.iter().map(|q| sequential.synthesize(q)).collect();
        for round in 0..3 {
            let report = engine.submit(specs()).wait();
            assert_eq!(report.results.len(), QUERIES.len());
            for (got, want) in report.results.iter().zip(&expected) {
                assert_eq!(got.outcome, want.outcome, "round={round}");
                assert_eq!(got.expression, want.expression, "round={round}");
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.submitted, 3 * QUERIES.len() as u64);
        assert_eq!(stats.completed, stats.submitted);
        assert_eq!(stats.outstanding(), 0);
        // Counters are cumulative and monotonic: the second snapshot can
        // only grow.
        let later = engine.stats();
        assert!(later.submitted >= stats.submitted);
        assert!(later.cache.lookups() >= stats.cache.lookups());
    }

    #[test]
    fn delta_since_isolates_a_window() {
        let engine = ServiceEngine::new(domain(), SynthesisConfig::default());
        engine.submit(specs()).wait();
        let before = engine.stats();
        engine.submit(specs()).wait();
        let delta = engine.stats().delta_since(&before);
        assert_eq!(delta.submitted, QUERIES.len() as u64);
        assert_eq!(delta.completed, QUERIES.len() as u64);
        // The second window runs warm: no cache misses inside it.
        assert_eq!(delta.cache.misses, 0, "{:?}", delta.cache);
        assert!(delta.cache.hits > 0);
    }

    #[test]
    fn submit_with_streams_results_in_any_order() {
        use std::sync::mpsc;
        let engine = ServiceEngine::with_options(
            domain(),
            SynthesisConfig::default(),
            BatchOptions {
                workers: 2,
                cache_capacity: 64,
                ..BatchOptions::default()
            },
        );
        let (tx, rx) = mpsc::channel::<(usize, Option<String>)>();
        let handle = engine.submit_with(specs(), move |index, synthesis| {
            let _ = tx.send((index, synthesis.expression.clone()));
        });
        let report = handle.wait();
        let mut streamed: Vec<(usize, Option<String>)> = rx.try_iter().collect();
        streamed.sort_by_key(|(i, _)| *i);
        assert_eq!(streamed.len(), QUERIES.len());
        for (index, expression) in streamed {
            assert_eq!(expression, report.results[index].expression);
        }
    }

    #[test]
    fn panicking_notify_does_not_kill_workers() {
        let engine = ServiceEngine::with_options(
            domain(),
            SynthesisConfig::default(),
            BatchOptions {
                workers: 1,
                cache_capacity: 64,
                ..BatchOptions::default()
            },
        );
        let report = engine
            .submit_with(specs(), |_, _| panic!("bad callback"))
            .wait();
        assert_eq!(report.results.len(), QUERIES.len());
        // The single worker survived the panicking callbacks and still
        // serves further submissions.
        let again = engine.submit(specs()).wait();
        assert_eq!(again.results.len(), QUERIES.len());
    }

    #[test]
    fn per_job_config_override() {
        let engine = ServiceEngine::new(domain(), SynthesisConfig::default());
        let mut jobs = specs();
        jobs[0].config = Some(SynthesisConfig::default().deadline(Duration::ZERO));
        let report = engine.submit(jobs).wait();
        assert_eq!(report.results[0].outcome, Outcome::Timeout);
        assert_eq!(
            report.results[0].error,
            Some(crate::SynthesisError::DeadlineExceeded)
        );
        assert_eq!(report.results[1].outcome, Outcome::Success);
    }

    #[test]
    fn empty_submission_completes_immediately() {
        let engine = ServiceEngine::new(domain(), SynthesisConfig::default());
        let report = engine.submit(Vec::new()).wait();
        assert!(report.results.is_empty());
        assert_eq!(report.workers.len(), 1);
        assert_eq!(engine.stats().submitted, 0);
    }

    #[test]
    fn small_submission_stays_on_eligible_workers() {
        let engine = ServiceEngine::with_options(
            domain(),
            SynthesisConfig::default(),
            BatchOptions {
                workers: 8,
                cache_capacity: 64,
                ..BatchOptions::default()
            },
        );
        let report = engine.submit(vec![JobSpec::new("delete the word")]).wait();
        assert_eq!(report.workers.len(), 1, "clamped to submission size");
        assert_eq!(report.workers[0].queries, 1);
    }

    #[test]
    fn concurrent_submissions_interleave_correctly() {
        let engine = Arc::new(ServiceEngine::with_options(
            domain(),
            SynthesisConfig::default(),
            BatchOptions {
                workers: 4,
                cache_capacity: 64,
                ..BatchOptions::default()
            },
        ));
        let sequential = Synthesizer::new(domain(), SynthesisConfig::default());
        let expected: Vec<_> = QUERIES.iter().map(|q| sequential.synthesize(q)).collect();
        let mut joins = Vec::new();
        for _ in 0..4 {
            let engine = Arc::clone(&engine);
            joins.push(thread::spawn(move || engine.submit(specs()).wait()));
        }
        for join in joins {
            let report = join.join().expect("submitter survives");
            for (got, want) in report.results.iter().zip(&expected) {
                assert_eq!(got.outcome, want.outcome);
                assert_eq!(got.expression, want.expression);
            }
        }
        assert_eq!(engine.stats().completed, 4 * QUERIES.len() as u64);
    }
}
