//! Ahead-of-time domain compilation: a [`CompiledDomain`] artifact built
//! once per domain at load time so the *first* query pays lookup cost,
//! not construction cost.
//!
//! Compilation runs the full synthesis pipeline over the domain's corpus
//! queries against a private [`SharedPathCache`] and keeps three
//! artifacts:
//!
//! 1. **The seeded path table** — every EdgeToPath search any corpus
//!    query (including its orphan-relocation variants) performs, exported
//!    as `(key, paths)` entries. [`CompiledDomain::seed`] inserts them
//!    into a fresh engine's cache, so a cold boot starts with the corpus
//!    working set resident. Merge results are deliberately *not* part of
//!    the artifact — warm merge state belongs to the
//!    [snapshot](crate::snapshot) tier, which captures real traffic.
//! 2. **A pre-resolved lexicon** — the corpus vocabulary's WordToAPI
//!    candidate lists, installed into the domain's matcher
//!    ([`Domain::preresolve_lexicon`]); lookups are provably identical to
//!    the live path.
//! 3. **A corpus-pruned grammar graph** ([`PrunedGraph`]) — the grammar
//!    packed to the region reachable from the corpus's API candidates.
//!    Runtime queries stay on the full graph (the reversed all-path
//!    search only ever visits nodes that reach its live sink, so masking
//!    buys nothing and a packed graph would re-key every cache); the
//!    artifact quantifies how much of the grammar the corpus can touch
//!    and is differentially validated against the full graph.
//!
//! The path table can be cached to disk ([`CompiledDomain::save_cache`] /
//! [`CompiledDomain::load_or_compile`]) with the same validated header as
//! warm-state snapshots — magic, version, domain, content hash, hasher
//! probe — so a stale cache recompiles instead of mis-seeding. The
//! lexicon and pruned graph are always recomputed at load: they are cheap
//! and contain floats that must never round-trip through a file.

use std::path::Path;
use std::sync::Arc;

use nlquery_grammar::{NodeId, PrunedGraph};
use nlquery_nlp::DepParser;

use crate::json::JsonValue;
use crate::memo::{MemoKey, RawPath, SharedPathCache};
use crate::snapshot::{self, hasher_probe, warm_content_hash, SnapshotError, SNAPSHOT_VERSION};
use crate::{Domain, SynthesisConfig, Synthesizer};

/// First bytes of an AOT path-table cache file (distinct from warm-state
/// snapshots — the two artifacts are not interchangeable).
pub const AOT_CACHE_MAGIC: &str = "nlquery-aot-cache";

/// Capacity of the private cache compilation fills. Generous on purpose:
/// an eviction during compilation would silently shrink the artifact.
const COMPILE_CACHE_CAPACITY: usize = 65_536;

/// A domain compiled ahead of time against its corpus. Build one with
/// [`CompiledDomain::compile`] (or [`CompiledDomain::load_or_compile`]),
/// then construct engines from [`CompiledDomain::domain`] and warm their
/// caches with [`CompiledDomain::seed`].
#[derive(Debug, Clone)]
pub struct CompiledDomain {
    domain: Domain,
    pruned: PrunedGraph,
    paths: Vec<(MemoKey, Vec<RawPath>)>,
    corpus_queries: usize,
    vocabulary_words: usize,
    from_cache: bool,
}

impl CompiledDomain {
    /// Compiles `domain` against `corpus` under `config`: collects the
    /// corpus vocabulary, pre-resolves the lexicon, prunes the grammar to
    /// the corpus-live region, and runs the full pipeline per corpus
    /// query to capture every EdgeToPath search in the path table.
    pub fn compile(domain: &Domain, corpus: &[&str], config: &SynthesisConfig) -> CompiledDomain {
        let (compiled_domain, pruned, vocabulary_words) = prepare(domain, corpus);

        // Full-pipeline warm-up into a private cache. The pipeline itself
        // decides which searches matter — including the searches of every
        // orphan-relocation variant it explores — so the export is exactly
        // the set a cold run of the corpus would compute.
        let cache = Arc::new(SharedPathCache::new(COMPILE_CACHE_CAPACITY));
        let synthesizer = Synthesizer::new(compiled_domain.clone(), config.clone());
        for query in corpus {
            let _ = synthesizer.synthesize_shared(query, &cache);
        }
        let paths: Vec<(MemoKey, Vec<RawPath>)> = cache
            .export()
            .into_iter()
            .map(|(key, value)| (key, (*value).clone()))
            .collect();

        CompiledDomain {
            domain: compiled_domain,
            pruned,
            paths,
            corpus_queries: corpus.len(),
            vocabulary_words,
            from_cache: false,
        }
    }

    /// The domain with the pre-resolved lexicon installed — build
    /// [`Synthesizer`]s and engines from this one, not the original.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The corpus-pruned grammar artifact.
    pub fn pruned(&self) -> &PrunedGraph {
        &self.pruned
    }

    /// Number of path-table entries in the artifact.
    pub fn path_entries(&self) -> usize {
        self.paths.len()
    }

    /// Number of corpus queries compilation ran.
    pub fn corpus_queries(&self) -> usize {
        self.corpus_queries
    }

    /// Number of vocabulary words with a pre-resolved candidate list.
    pub fn vocabulary_words(&self) -> usize {
        self.vocabulary_words
    }

    /// Whether this artifact was loaded from a disk cache rather than
    /// compiled in-process.
    pub fn from_cache(&self) -> bool {
        self.from_cache
    }

    /// Seeds a fresh engine's shared path cache with the compiled path
    /// table; returns the number of entries inserted. Seeding bumps no
    /// hit/miss counters — the first real query reports ordinary hits.
    pub fn seed(&self, cache: &SharedPathCache) -> usize {
        cache.restore(self.paths.iter().cloned())
    }

    /// Writes the path table to `path` (atomic temp-file + rename) under
    /// the same validated header scheme as warm-state snapshots.
    pub fn save_cache(&self, path: &Path, config: &SynthesisConfig) -> Result<u64, SnapshotError> {
        let arcs: Vec<(MemoKey, Arc<Vec<RawPath>>)> = self
            .paths
            .iter()
            .map(|(key, value)| (*key, Arc::new(value.clone())))
            .collect();
        let json = JsonValue::obj([
            ("magic", JsonValue::from(AOT_CACHE_MAGIC)),
            ("version", JsonValue::from(SNAPSHOT_VERSION)),
            ("hasher_probe", JsonValue::from(hasher_probe())),
            ("domain", JsonValue::from(self.domain.name())),
            (
                "content_hash",
                JsonValue::from(warm_content_hash(&self.domain, config)),
            ),
            (
                "paths",
                JsonValue::Array(
                    arcs.iter()
                        .map(|(key, value)| snapshot::path_entry_json(key, value))
                        .collect(),
                ),
            ),
        ]);
        let text = json.render();
        let tmp = snapshot::tmp_path(path);
        std::fs::write(&tmp, &text)?;
        std::fs::rename(&tmp, path)?;
        Ok(text.len() as u64)
    }

    /// Loads the path table from a disk cache written by
    /// [`CompiledDomain::save_cache`], recomputing the lexicon and pruned
    /// graph in-process. Fails (→ recompile) on any header or parse
    /// mismatch, exactly like snapshot restore.
    pub fn load_cache(
        path: &Path,
        domain: &Domain,
        corpus: &[&str],
        config: &SynthesisConfig,
    ) -> Result<CompiledDomain, SnapshotError> {
        let text = std::fs::read_to_string(path)?;
        let root = JsonValue::parse(&text).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        let magic = snapshot::get_str(&root, "magic")?;
        if magic != AOT_CACHE_MAGIC {
            return Err(SnapshotError::WrongMagic {
                found: magic.to_string(),
            });
        }
        let version = snapshot::get_u64(&root, "version")?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        if snapshot::get_u64(&root, "hasher_probe")? != hasher_probe() {
            return Err(SnapshotError::HasherMismatch);
        }
        let snap_domain = snapshot::get_str(&root, "domain")?;
        if snap_domain != domain.name() {
            return Err(SnapshotError::DomainMismatch {
                found: snap_domain.to_string(),
                expected: domain.name().to_string(),
            });
        }
        // Hash against the *pre-resolved* domain: preresolution changes no
        // matcher inputs, so this equals the hash of the original domain,
        // and it is the domain engines will actually run with.
        let (compiled_domain, pruned, vocabulary_words) = prepare(domain, corpus);
        let found_hash = snapshot::get_u64(&root, "content_hash")?;
        let expected_hash = warm_content_hash(&compiled_domain, config);
        if found_hash != expected_hash {
            return Err(SnapshotError::ContentHashMismatch {
                found: found_hash,
                expected: expected_hash,
            });
        }
        let mut paths = Vec::new();
        for entry in snapshot::get_arr(&root, "paths")? {
            paths.push(snapshot::path_entry_from(entry, compiled_domain.graph())?);
        }
        Ok(CompiledDomain {
            domain: compiled_domain,
            pruned,
            corpus_queries: corpus.len(),
            vocabulary_words,
            paths,
            from_cache: true,
        })
    }

    /// [`CompiledDomain::load_cache`] with compile-and-save fallback: a
    /// valid cache loads in milliseconds; a missing or stale one triggers
    /// a fresh compile whose result is written back to `path` (best
    /// effort — a failed write still returns the compiled artifact).
    /// Returns the artifact and the load error that forced a recompile,
    /// if any.
    pub fn load_or_compile(
        path: &Path,
        domain: &Domain,
        corpus: &[&str],
        config: &SynthesisConfig,
    ) -> (CompiledDomain, Option<SnapshotError>) {
        match CompiledDomain::load_cache(path, domain, corpus, config) {
            Ok(compiled) => (compiled, None),
            Err(err) => {
                let compiled = CompiledDomain::compile(domain, corpus, config);
                let _ = compiled.save_cache(path, config);
                (compiled, Some(err))
            }
        }
    }
}

/// The deterministic, cheap part of compilation: corpus vocabulary →
/// pre-resolved domain clone + corpus-pruned grammar.
fn prepare(domain: &Domain, corpus: &[&str]) -> (Domain, PrunedGraph, usize) {
    let parser = DepParser::new();
    let mut vocabulary: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for query in corpus {
        for node in parser.parse(query).nodes() {
            vocabulary.insert(node.lemma.clone());
        }
    }

    // Corpus-live APIs: every API any vocabulary word can reach at any
    // score (phrase merging averages per-word scores, so the union of the
    // unfiltered per-word lists is a superset of every phrase candidate),
    // plus the literal API when the domain routes literals standalone.
    let graph = domain.graph();
    let mut live: Vec<NodeId> = vocabulary
        .iter()
        .flat_map(|word| domain.matcher().candidates(word, usize::MAX, 0.0))
        .filter_map(|c| graph.api_node(&c.api))
        .collect();
    if let Some(api) = domain.literal_api() {
        live.extend(graph.api_node(api));
    }
    live.sort_unstable();
    live.dedup();
    let pruned = graph.prune_to_corpus(&live);

    let mut compiled_domain = domain.clone();
    let words = vocabulary.len();
    compiled_domain.preresolve_lexicon(vocabulary);
    (compiled_domain, pruned, words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Outcome;
    use nlquery_grammar::GrammarGraph;
    use nlquery_nlp::ApiDoc;

    fn domain() -> Domain {
        let graph = GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg | DELETE delete_arg | MOVE move_arg
            insert_arg ::= string pos
            delete_arg ::= string
            move_arg   ::= string pos
            string     ::= STRING
            pos        ::= START | END
            "#,
        )
        .unwrap();
        Domain::builder("aot-test")
            .graph(graph)
            .docs(vec![
                ApiDoc::new("INSERT", &["insert"], "inserts a string at a position", 0),
                ApiDoc::new("DELETE", &["delete"], "deletes a string", 0),
                ApiDoc::new("MOVE", &["move"], "moves a string to a position", 0),
                ApiDoc::new("STRING", &["string"], "a string constant", 1),
                ApiDoc::new("START", &["start"], "the start", 0),
                ApiDoc::new("END", &["end"], "the end", 0),
            ])
            .literal_api("STRING")
            .build()
            .unwrap()
    }

    const CORPUS: &[&str] = &[
        "insert \":\" at the start",
        "delete \"x\"",
        "insert \"-\" at the end",
    ];

    #[test]
    fn compile_builds_all_three_artifacts() {
        let d = domain();
        let cfg = SynthesisConfig::default();
        let compiled = CompiledDomain::compile(&d, CORPUS, &cfg);
        assert_eq!(compiled.corpus_queries(), CORPUS.len());
        assert!(compiled.vocabulary_words() > 0);
        assert!(compiled.path_entries() > 0, "corpus must seed searches");
        assert!(!compiled.from_cache());
        // "move" never appears in the corpus: MOVE and its private
        // derivation chain are pruned (synonyms may or may not reach it —
        // just require *some* pruning signal to exist when it is dead).
        assert!(compiled.pruned().graph().len() <= d.graph().len());
        assert!(compiled.pruned().exact());
    }

    #[test]
    fn seeded_engine_answers_corpus_queries_identically_without_misses() {
        let d = domain();
        let cfg = SynthesisConfig::default();
        let compiled = CompiledDomain::compile(&d, CORPUS, &cfg);

        // Cold reference run.
        let plain = Synthesizer::new(d.clone(), cfg.clone());
        // Seeded run: fresh cache, seeded, then the corpus again.
        let seeded_cache = Arc::new(SharedPathCache::new(1024));
        let inserted = compiled.seed(&seeded_cache);
        assert_eq!(inserted, compiled.path_entries());
        let warm = Synthesizer::new(compiled.domain().clone(), cfg.clone());
        for query in CORPUS {
            let a = plain.synthesize(query);
            let b = warm.synthesize_shared(query, &seeded_cache);
            assert_eq!(a.outcome, b.outcome, "{query}");
            assert_eq!(a.expression, b.expression, "{query}");
            assert_eq!(a.cgt, b.cgt, "{query}");
            assert_eq!(a.outcome, Outcome::Success, "{query}");
        }
        // Every search the corpus performs was pre-seeded.
        let stats = seeded_cache.stats();
        assert_eq!(stats.misses, 0, "seeded cache must absorb all searches");
        assert!(stats.hits > 0);
    }

    #[test]
    fn disk_cache_round_trips_and_rejects_staleness() {
        let d = domain();
        let cfg = SynthesisConfig::default();
        let compiled = CompiledDomain::compile(&d, CORPUS, &cfg);
        let dir = std::env::temp_dir().join("nlquery-aot-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("aot.json");

        let bytes = compiled.save_cache(&file, &cfg).unwrap();
        assert!(bytes > 0);
        let loaded = CompiledDomain::load_cache(&file, &d, CORPUS, &cfg).unwrap();
        assert!(loaded.from_cache());
        assert_eq!(loaded.path_entries(), compiled.path_entries());
        assert_eq!(loaded.paths, compiled.paths);

        // A config change invalidates the cache and forces a recompile.
        let other = SynthesisConfig::default().max_candidates(3);
        let err = CompiledDomain::load_cache(&file, &d, CORPUS, &other).unwrap_err();
        assert!(matches!(err, SnapshotError::ContentHashMismatch { .. }));
        let (recompiled, reason) = CompiledDomain::load_or_compile(&file, &d, CORPUS, &other);
        assert!(!recompiled.from_cache());
        assert!(reason.is_some());
        // The fallback wrote the new artifact back.
        let reloaded = CompiledDomain::load_cache(&file, &d, CORPUS, &other).unwrap();
        assert!(reloaded.from_cache());
        std::fs::remove_file(&file).ok();
    }
}
