//! Minimal std-only JSON: a value tree, a renderer, a parser, and the
//! canonical JSON projections of this crate's statistics types.
//!
//! The workspace is offline-green (no registry dependencies), so the
//! bench binaries used to hand-assemble their JSON summaries with string
//! pushes. This module centralizes that: benches, the `nlquery-serve`
//! HTTP responses, and the load generator all build [`JsonValue`] trees
//! and render them, and stats serialization ([`batch_stats_json`],
//! [`cache_stats_json`], [`synthesis_json`]) lives in exactly one place.
//!
//! The parser is for the small, trusted-shape request bodies the serve
//! layer accepts (`{"query": "...", "deadline_ms": 100}`): full JSON
//! grammar, string escapes, `\uXXXX` (including surrogate pairs), with a
//! nesting-depth cap so hostile input cannot overflow the stack.

use std::fmt::Write as _;

use crate::batch::BatchStats;
use crate::memo::CacheStats;
use crate::pipeline::{Outcome, Synthesis};
use crate::stats::SynthesisStats;
use crate::SynthesisError;

/// Maximum container nesting the parser accepts.
const MAX_DEPTH: usize = 64;

/// A JSON document as a value tree. Objects preserve insertion order
/// (they render deterministically), and integers are kept apart from
/// floats so counters render without a decimal point.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (counters).
    UInt(u64),
    /// A float; non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object: ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> JsonValue {
        JsonValue::Bool(v)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> JsonValue {
        JsonValue::Int(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> JsonValue {
        JsonValue::UInt(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> JsonValue {
        JsonValue::UInt(v as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> JsonValue {
        JsonValue::Float(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> JsonValue {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> JsonValue {
        JsonValue::Str(v)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> JsonValue {
        JsonValue::Array(v)
    }
}
impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> JsonValue {
        v.map(Into::into).unwrap_or(JsonValue::Null)
    }
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, V: Into<JsonValue>>(
        pairs: impl IntoIterator<Item = (K, V)>,
    ) -> JsonValue {
        JsonValue::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Appends a field to an object (no-op with a debug assertion on
    /// non-objects).
    pub fn push_field(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) {
        if let JsonValue::Object(fields) = self {
            fields.push((key.into(), value.into()));
        } else {
            debug_assert!(false, "push_field on a non-object");
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integral payload, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(v) => u64::try_from(*v).ok(),
            JsonValue::UInt(v) => Some(*v),
            JsonValue::Float(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Renders compactly (no whitespace) — the wire format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation and a trailing newline — the
    /// on-disk format of the `BENCH_*.json` artifacts.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest representation that
                    // round-trips; integral floats get an explicit `.0`.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                write_container(out, indent, level, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, level + 1);
                });
            }
            JsonValue::Object(fields) => {
                write_container(out, indent, level, '{', '}', fields.len(), |out, i| {
                    let (key, value) = &fields[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                });
            }
        }
    }

    /// Parses a JSON document (must consume the full input).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing data after document"));
        }
        Ok(value)
    }
}

fn write_container(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(escape) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("unescaped control character")),
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| (b & 0xC0) == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let Some(byte) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = (byte as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pair?
        if (0xD800..0xDC00).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(combined).ok_or_else(|| self.err("invalid code point"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid code point"))
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(byte) = self.peek() {
            match byte {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number characters");
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

// ---------------------------------------------------------------------
// Canonical JSON projections of the crate's statistics types: benches,
// server responses, and the load generator all serialize through these.
// ---------------------------------------------------------------------

/// The stable lowercase label of an [`Outcome`] (used in JSON payloads
/// and Prometheus label values).
pub fn outcome_label(outcome: Outcome) -> &'static str {
    match outcome {
        Outcome::Success => "success",
        Outcome::Timeout => "timeout",
        Outcome::NoParse => "no_parse",
        Outcome::NoResult => "no_result",
        Outcome::Panicked => "panicked",
    }
}

/// A structured error object: `{"kind": "...", "message": "..."}`.
pub fn error_json(error: &SynthesisError) -> JsonValue {
    let kind = match error {
        SynthesisError::InvalidDomain { .. } => "InvalidDomain",
        SynthesisError::NoParse => "NoParse",
        SynthesisError::NoApiCandidates => "NoApiCandidates",
        SynthesisError::NoGrammarPath => "NoGrammarPath",
        SynthesisError::DeadlineExceeded => "DeadlineExceeded",
        SynthesisError::Panicked { .. } => "Panicked",
    };
    JsonValue::obj([
        ("kind", JsonValue::from(kind)),
        ("message", JsonValue::from(error.to_string())),
    ])
}

/// Per-stage timings of one run, in seconds.
pub fn stage_secs_json(stats: &SynthesisStats) -> JsonValue {
    JsonValue::obj([
        ("parse", stats.t_parse.as_secs_f64()),
        ("prune", stats.t_prune.as_secs_f64()),
        ("word2api", stats.t_word2api.as_secs_f64()),
        ("edge2path", stats.t_edge2path.as_secs_f64()),
        ("merge", stats.t_merge.as_secs_f64()),
        ("print", stats.t_print.as_secs_f64()),
    ])
}

/// The full wire form of one synthesis result: outcome, expression,
/// structured error, wall-clock, per-stage timings, memo counters.
pub fn synthesis_json(synthesis: &Synthesis) -> JsonValue {
    JsonValue::obj([
        ("outcome", JsonValue::from(outcome_label(synthesis.outcome))),
        ("expression", JsonValue::from(synthesis.expression.clone())),
        (
            "error",
            synthesis
                .error
                .as_ref()
                .map(error_json)
                .unwrap_or(JsonValue::Null),
        ),
        (
            "elapsed_secs",
            JsonValue::from(synthesis.elapsed.as_secs_f64()),
        ),
        ("stage_secs", stage_secs_json(&synthesis.stats)),
        (
            "memo",
            JsonValue::obj([
                ("hits", JsonValue::from(synthesis.stats.memo_hits)),
                ("misses", JsonValue::from(synthesis.stats.memo_misses)),
                (
                    "dedup_waits",
                    JsonValue::from(synthesis.stats.memo_dedup_waits),
                ),
            ]),
        ),
    ])
}

/// The counters of a [`CacheStats`] snapshot.
pub fn cache_stats_json(stats: &CacheStats) -> JsonValue {
    JsonValue::obj([
        ("hits", JsonValue::from(stats.hits)),
        ("misses", JsonValue::from(stats.misses)),
        ("dedup_waits", JsonValue::from(stats.dedup_waits)),
        ("evictions", JsonValue::from(stats.evictions)),
        (
            "unique_signatures",
            JsonValue::from(stats.unique_signatures),
        ),
        ("hit_rate", JsonValue::from(stats.hit_rate())),
        ("entries", JsonValue::from(stats.entries)),
        ("bytes", JsonValue::from(stats.bytes)),
        ("capacity", JsonValue::from(stats.capacity)),
        ("shards", JsonValue::from(stats.shards)),
    ])
}

/// One batch's aggregate counters — the row body of
/// `BENCH_throughput.json` (the bench prepends its own `workers`/`pass`
/// discriminators).
pub fn batch_stats_json(stats: &BatchStats) -> JsonValue {
    JsonValue::obj([
        ("queries", JsonValue::from(stats.total)),
        ("wall_secs", JsonValue::from(stats.wall.as_secs_f64())),
        ("queries_per_sec", JsonValue::from(stats.queries_per_sec())),
        (
            "worker_utilization",
            JsonValue::from(stats.worker_utilization()),
        ),
        ("successes", JsonValue::from(stats.successes)),
        ("timeouts", JsonValue::from(stats.timeouts)),
        ("no_parse", JsonValue::from(stats.no_parse)),
        ("no_result", JsonValue::from(stats.no_result)),
        ("panics", JsonValue::from(stats.panics)),
        ("cache_hits", JsonValue::from(stats.cache.hits)),
        ("cache_misses", JsonValue::from(stats.cache.misses)),
        (
            "cache_dedup_waits",
            JsonValue::from(stats.cache.dedup_waits),
        ),
        ("cache_hit_rate", JsonValue::from(stats.cache.hit_rate())),
        ("shards", JsonValue::from(stats.cache.shards)),
        ("merge_memo_hits", JsonValue::from(stats.merge.hits)),
        ("merge_memo_misses", JsonValue::from(stats.merge.misses)),
        (
            "merge_memo_dedup_waits",
            JsonValue::from(stats.merge.dedup_waits),
        ),
        (
            "merge_memo_hit_rate",
            JsonValue::from(stats.merge.hit_rate()),
        ),
        ("merge_memo_bytes", JsonValue::from(stats.merge.bytes)),
        (
            "merge_memo_unique_signatures",
            JsonValue::from(stats.merge.unique_signatures),
        ),
        (
            "stage_secs",
            JsonValue::obj([
                ("parse", stats.t_parse.as_secs_f64()),
                ("prune", stats.t_prune.as_secs_f64()),
                ("word2api", stats.t_word2api.as_secs_f64()),
                ("edge2path", stats.t_edge2path.as_secs_f64()),
                ("merge", stats.t_merge.as_secs_f64()),
                ("print", stats.t_print.as_secs_f64()),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_roundtrips_through_parse() {
        let doc = JsonValue::obj([
            ("name", JsonValue::from("batch \"cold\"\n")),
            ("count", JsonValue::from(42u64)),
            ("ratio", JsonValue::from(0.125)),
            ("negative", JsonValue::Int(-7)),
            ("ok", JsonValue::from(true)),
            ("missing", JsonValue::Null),
            (
                "rows",
                JsonValue::Array(vec![JsonValue::from(1u64), JsonValue::from("two")]),
            ),
        ]);
        for rendered in [doc.render(), doc.render_pretty()] {
            let parsed = JsonValue::parse(&rendered).expect("own output parses");
            assert_eq!(parsed, doc, "{rendered}");
        }
    }

    #[test]
    fn parse_accepts_standard_documents() {
        let doc = JsonValue::parse(
            r#" {"query": "delete the word", "deadline_ms": 250, "nested": {"a": [1, 2.5, -3]}, "esc": "a\u0041\n\u00e9"} "#,
        )
        .unwrap();
        assert_eq!(
            doc.get("query").and_then(JsonValue::as_str),
            Some("delete the word")
        );
        assert_eq!(
            doc.get("deadline_ms").and_then(JsonValue::as_u64),
            Some(250)
        );
        let nested = doc.get("nested").and_then(|n| n.get("a")).unwrap();
        assert_eq!(nested.as_array().unwrap().len(), 3);
        assert_eq!(doc.get("esc").and_then(JsonValue::as_str), Some("aA\né"));
    }

    #[test]
    fn parse_surrogate_pair() {
        let doc = JsonValue::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str(), Some("😀"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1,]",
            "tru",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "\"\\ud800\"",
            "01a",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_depth_is_bounded() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(JsonValue::parse(&deep).is_err(), "hostile nesting rejected");
    }

    #[test]
    fn numbers_keep_their_kind() {
        let doc = JsonValue::parse("[18446744073709551615, -9, 1.5, 1e3]").unwrap();
        let items = doc.as_array().unwrap();
        assert_eq!(items[0], JsonValue::UInt(u64::MAX));
        assert_eq!(items[1], JsonValue::Int(-9));
        assert_eq!(items[2], JsonValue::Float(1.5));
        assert_eq!(items[3], JsonValue::Float(1000.0));
    }

    #[test]
    fn floats_render_finitely() {
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::Float(2.0).render(), "2.0");
        assert_eq!(JsonValue::UInt(2).render(), "2");
    }

    #[test]
    fn control_characters_escape() {
        let s = JsonValue::from("\u{01}\t");
        let rendered = s.render();
        assert_eq!(rendered, "\"\\u0001\\t\"");
        assert_eq!(JsonValue::parse(&rendered).unwrap(), s);
    }

    #[test]
    fn outcome_labels_are_distinct() {
        let labels = [
            outcome_label(Outcome::Success),
            outcome_label(Outcome::Timeout),
            outcome_label(Outcome::NoParse),
            outcome_label(Outcome::NoResult),
            outcome_label(Outcome::Panicked),
        ];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn error_json_carries_kind_and_message() {
        let e = error_json(&SynthesisError::DeadlineExceeded);
        assert_eq!(
            e.get("kind").and_then(JsonValue::as_str),
            Some("DeadlineExceeded")
        );
        assert!(e.get("message").and_then(JsonValue::as_str).is_some());
    }

    #[test]
    fn batch_stats_json_has_the_bench_schema() {
        let stats = BatchStats::default();
        let row = batch_stats_json(&stats);
        for key in [
            "queries",
            "wall_secs",
            "queries_per_sec",
            "worker_utilization",
            "successes",
            "cache_hits",
            "merge_memo_hits",
            "merge_memo_bytes",
            "merge_memo_unique_signatures",
            "stage_secs",
        ] {
            assert!(row.get(key).is_some(), "missing {key}");
        }
    }
}
