//! Cross-query memoization: the sharded single-flight cache core and the
//! EdgeToPath path cache built on it.
//!
//! The grammar graph is immutable per domain, so the set of grammar paths
//! connecting one candidate-API set to another never changes between
//! queries — yet the seed pipeline re-ran the reversed all-path search for
//! every query. [`SharedPathCache`] memoizes finalized per-edge path lists
//! across queries (and across the threads of a
//! [`BatchEngine`](crate::BatchEngine)), keyed by
//! `(governor candidate-set hash, dependent candidate-set hash, direction)`
//! with an LRU bound and hit/miss/eviction counters.
//!
//! The same recurrence holds one stage later: PathMerging re-derives the
//! same beams and joins for structurally repeated queries. The caching
//! machinery is therefore generic — [`ShardedFlightCache`] is the reusable
//! core, instantiated here for edge path lists and by
//! [`merge_memo`](crate::merge_memo) for merge results.
//!
//! # Sharding and single-flight
//!
//! The cache is **sharded**: keys hash to one of N independent
//! mutex-protected shards, so concurrent workers touching different keys
//! never contend on one lock. Each shard is additionally a **single-flight**
//! domain: a miss installs an *in-flight* slot before the caller goes off to
//! run the expensive computation, and every other worker that requests
//! the same key while it runs *blocks on the one computation*
//! instead of racing to duplicate it. The blocked lookups resolve to the
//! leader's value and are counted as `dedup_waits` — a third lookup outcome
//! next to `hits` and `misses`, so that
//! `hits + misses + dedup_waits == total lookups` and **every unique key is
//! computed exactly once** while it stays resident.
//!
//! The single-flight entry point is [`ShardedFlightCache::join`]: it
//! returns a [`CacheFlight`] telling the caller whether the value was ready
//! ([`CacheFlight::Hit`]), was computed by another worker while this one
//! waited ([`CacheFlight::Shared`]), or must be computed by this caller
//! ([`CacheFlight::Miss`] carrying a [`CacheFlightToken`] to publish the
//! result through). Dropping the token without completing it (e.g. on a
//! panic or a timeout in the computation) wakes all waiters; one of them is
//! promoted to the new leader, so abandonment never wedges the cache — and
//! a timed-out computation is never published.
//!
//! Cached path values are *raw* candidates: sorted, truncated to the search
//! limits, but without relation-affinity bonuses or path ids — both depend
//! on the specific dependency edge, so they are applied at retrieval time
//! by [`edge2path`](crate::edge2path).

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use nlquery_grammar::{GrammarPath, NodeId, SearchLimits};

/// Locks a shard mutex, recovering from poisoning. Every critical section
/// in this module restores the shard invariants (`ready` matches the map's
/// Ready slots) before any fallible step, so state guarded by a lock that a
/// dying worker left poisoned is still consistent — recovery keeps the
/// cache serving the surviving workers instead of cascading the panic.
fn lock_shard<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Default shard count of a [`ShardedFlightCache`] (clamped down when the
/// capacity is smaller, so tiny caches keep their exact entry bound).
pub const DEFAULT_SHARDS: usize = 16;

/// Cap on the number of distinct keys tracked for the
/// [`CacheStats::unique_signatures`] counter, summed across shards. Past
/// the cap new keys stop being recorded and the counter saturates into an
/// undercount — the gauge exists to size workloads (e.g. "the cold pass
/// touches 282 distinct merge signatures"), not to be an exact census of
/// an unbounded key stream.
pub const UNIQUE_TRACK_CAP: usize = 65_536;

/// Approximate heap footprint of a memoized value, for the `bytes` gauge
/// in [`CacheStats`]. An estimate is enough — the gauge exists so capacity
/// tuning and `/metrics` dashboards can see *relative* residency, not for
/// allocator-exact accounting.
pub trait MemoBytes {
    /// Approximate bytes this value holds (excluding the `Arc` header).
    fn memo_bytes(&self) -> usize;
}

impl MemoBytes for Vec<RawPath> {
    fn memo_bytes(&self) -> usize {
        std::mem::size_of::<RawPath>() * self.len()
            + self
                .iter()
                .map(|rp| rp.path.chain.len() * std::mem::size_of::<NodeId>())
                .sum::<usize>()
    }
}

/// The 64-bit value a key spreads over lock shards with (fed to one
/// multiply-shift in the cache). The default runs the key's standard
/// hash; keys whose fields are already well-mixed hashes can return a
/// cheap xor-fold instead and skip the SipHash pass.
pub trait ShardHash: Hash {
    /// A well-mixed value determining the key's shard.
    fn shard_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Which kind of path search a memo entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemoDirection {
    /// `paths_from_root` searches (root pseudo-edge, orphan attachment).
    FromRoot,
    /// `paths_between` searches (real dependency edges).
    Between,
}

/// Cache key for one edge-level search.
///
/// The hashes cover the sorted, deduplicated candidate-API sets of the
/// governor and dependent sides plus the active [`SearchLimits`]; two
/// dependency edges with the same candidate sets share an entry no matter
/// which queries they came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemoKey {
    /// Hash of the governor-side candidate set (0 for root searches).
    pub gov: u64,
    /// Hash of the dependent-side candidate set.
    pub dep: u64,
    /// Search direction.
    pub direction: MemoDirection,
}

impl ShardHash for MemoKey {
    /// Key fields are already well-mixed candidate-set hashes; one
    /// xor-rotate spreads them without a SipHash pass.
    fn shard_hash(&self) -> u64 {
        let dir = match self.direction {
            MemoDirection::FromRoot => 0x9E37_79B9_7F4A_7C15u64,
            MemoDirection::Between => 0xC2B2_AE3D_27D4_EB4Fu64,
        };
        self.gov ^ self.dep.rotate_left(32) ^ dir
    }
}

/// One memoized candidate path: finalized order, no per-edge metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct RawPath {
    /// Governor-side API (`None` for root searches).
    pub gov_api: Option<NodeId>,
    /// Dependent-side API (the path's sink).
    pub dep_api: NodeId,
    /// The grammar path.
    pub path: GrammarPath,
}

/// Snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a ready entry.
    pub hits: u64,
    /// Lookups that missed and became the computing leader for their key.
    pub misses: u64,
    /// Lookups that found their key *in flight* and blocked on the leader's
    /// computation instead of duplicating it.
    pub dedup_waits: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Distinct keys ever published into the cache (survives eviction and
    /// [`ShardedFlightCache::clear`]; zeroed by
    /// [`ShardedFlightCache::reset`]). Tracking is capped at
    /// [`UNIQUE_TRACK_CAP`] keys, past which the counter undercounts.
    pub unique_signatures: u64,
    /// Entries currently held (ready entries across all shards).
    pub entries: usize,
    /// Approximate bytes held by ready entries across all shards.
    pub bytes: u64,
    /// Maximum entries held.
    pub capacity: usize,
    /// Number of independent lock shards.
    pub shards: usize,
}

impl CacheStats {
    /// Total lookups: `hits + misses + dedup_waits`.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.dedup_waits
    }

    /// Fraction of lookups served from the cache — immediately (`hits`) or
    /// by waiting on an in-flight computation (`dedup_waits`). 0 when no
    /// lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            (self.hits + self.dedup_waits) as f64 / total as f64
        }
    }

    /// Counter difference `self - earlier` (monotonic counters only; the
    /// gauges `entries` / `bytes` / `capacity` / `shards` keep `self`'s
    /// values). Used to report per-batch cache activity from cumulative
    /// engine counters.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            dedup_waits: self.dedup_waits.saturating_sub(earlier.dedup_waits),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            unique_signatures: self
                .unique_signatures
                .saturating_sub(earlier.unique_signatures),
            entries: self.entries,
            bytes: self.bytes,
            capacity: self.capacity,
            shards: self.shards,
        }
    }
}

fn hash_apis(apis: &[NodeId], limits: SearchLimits) -> u64 {
    let mut h = DefaultHasher::new();
    limits.max_paths.hash(&mut h);
    limits.max_depth.hash(&mut h);
    for api in apis {
        api.hash(&mut h);
    }
    h.finish()
}

impl MemoKey {
    /// Key for a `paths_between` search over two candidate sets. Callers
    /// must pass sorted, deduplicated sets so that equal sets hash equally.
    pub fn between(gov_apis: &[NodeId], dep_apis: &[NodeId], limits: SearchLimits) -> MemoKey {
        MemoKey {
            gov: hash_apis(gov_apis, limits),
            dep: hash_apis(dep_apis, limits),
            direction: MemoDirection::Between,
        }
    }

    /// Key for a `paths_from_root` search over a candidate set.
    pub fn from_root(dep_apis: &[NodeId], limits: SearchLimits) -> MemoKey {
        MemoKey {
            gov: 0,
            dep: hash_apis(dep_apis, limits),
            direction: MemoDirection::FromRoot,
        }
    }
}

struct Entry<V> {
    value: Arc<V>,
    stamp: u64,
    bytes: usize,
}

enum Slot<V> {
    /// A finished computation.
    Ready(Entry<V>),
    /// A leader is computing this key; waiters block on the shard condvar.
    InFlight,
}

struct ShardState<K, V> {
    map: HashMap<K, Slot<V>>,
    /// Ready entries in `map` (in-flight slots don't count toward the LRU
    /// bound — they hold no value yet).
    ready: usize,
    /// Approximate bytes across ready entries.
    bytes: u64,
    stamp: u64,
    /// Keys ever published into this shard, for the
    /// [`CacheStats::unique_signatures`] counter. Survives eviction and
    /// `clear`; capped (see [`UNIQUE_TRACK_CAP`]).
    seen: std::collections::HashSet<K>,
}

struct Shard<K, V> {
    state: Mutex<ShardState<K, V>>,
    /// Signalled whenever an in-flight slot resolves (or is abandoned).
    resolved: Condvar,
}

impl<K, V> Shard<K, V> {
    fn new() -> Shard<K, V> {
        Shard {
            state: Mutex::new(ShardState {
                map: HashMap::new(),
                ready: 0,
                bytes: 0,
                stamp: 0,
                seen: std::collections::HashSet::new(),
            }),
            resolved: Condvar::new(),
        }
    }
}

/// Outcome of a single-flight lookup ([`ShardedFlightCache::join`]).
#[derive(Debug)]
pub enum CacheFlight<K: Copy + Eq + Hash + ShardHash, V: MemoBytes> {
    /// The value was ready; counted as a hit.
    Hit(Arc<V>),
    /// Another worker was computing the key; this lookup blocked until the
    /// leader published and shares its value. Counted as a `dedup_wait`.
    Shared(Arc<V>),
    /// This lookup is the computing leader; counted as a miss. Run the
    /// computation and publish it with [`CacheFlightToken::complete`].
    Miss(CacheFlightToken<K, V>),
}

/// Outcome of a [`SharedPathCache`] single-flight lookup.
pub type Flight = CacheFlight<MemoKey, Vec<RawPath>>;

/// Leadership over one in-flight cache key.
///
/// Obtained from [`CacheFlight::Miss`]; the holder is the only worker
/// computing the key. [`CacheFlightToken::complete`] publishes the value
/// and wakes every waiter. Dropping the token without completing it
/// (panic, timeout, early return) removes the in-flight slot and wakes the
/// waiters so one of them can take over — single-flight never deadlocks on
/// an abandoned leader, and an aborted computation is never published.
#[derive(Debug)]
pub struct CacheFlightToken<K: Copy + Eq + Hash + ShardHash, V: MemoBytes> {
    cache: Arc<ShardedFlightCache<K, V>>,
    shard: usize,
    key: K,
    completed: bool,
}

/// Leadership over one in-flight [`SharedPathCache`] key.
pub type FlightToken = CacheFlightToken<MemoKey, Vec<RawPath>>;

impl<K: Copy + Eq + Hash + ShardHash, V: MemoBytes> CacheFlightToken<K, V> {
    /// The key this token leads.
    pub fn key(&self) -> K {
        self.key
    }

    /// Publishes the computed value, waking all waiters. Returns the shared
    /// handle (the already-stored value in the unusual case that a direct
    /// [`ShardedFlightCache::insert`] raced this flight and won).
    pub fn complete(mut self, value: V) -> Arc<V> {
        self.completed = true;
        let shard = &self.cache.shards[self.shard];
        let mut state = lock_shard(&shard.state);
        state.stamp += 1;
        let stamp = state.stamp;
        if let Some(Slot::Ready(existing)) = state.map.get_mut(&self.key) {
            existing.stamp = stamp;
            let value = Arc::clone(&existing.value);
            drop(state);
            shard.resolved.notify_all();
            return value;
        }
        self.cache.evict_to_fit(&mut state);
        let bytes = value.memo_bytes();
        let value = Arc::new(value);
        let previous = state.map.insert(
            self.key,
            Slot::Ready(Entry {
                value: Arc::clone(&value),
                stamp,
                bytes,
            }),
        );
        // The slot was InFlight (the normal case) or removed by `clear`;
        // either way a Ready entry was added.
        debug_assert!(!matches!(previous, Some(Slot::Ready(_))));
        state.ready += 1;
        state.bytes += bytes as u64;
        self.cache.note_unique(&mut state, self.key);
        drop(state);
        shard.resolved.notify_all();
        value
    }
}

impl<K: Copy + Eq + Hash + ShardHash, V: MemoBytes> Drop for CacheFlightToken<K, V> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        let shard = &self.cache.shards[self.shard];
        let mut state = lock_shard(&shard.state);
        if matches!(state.map.get(&self.key), Some(Slot::InFlight)) {
            state.map.remove(&self.key);
        }
        drop(state);
        // Waiters re-check the slot; the first to run is the new leader.
        shard.resolved.notify_all();
    }
}

/// Thread-safe, sharded, LRU-bounded single-flight memo cache: the generic
/// core behind [`SharedPathCache`] (EdgeToPath results) and
/// [`MergeMemo`](crate::merge_memo::MergeMemo) (PathMerging results).
///
/// Keys hash to one of [`CacheStats::shards`] independent lock domains, so
/// workers on disjoint keys never contend; within a shard, concurrent
/// lookups of one missing key resolve to **one** computation via
/// [`ShardedFlightCache::join`] (single-flight).
pub struct ShardedFlightCache<K: Copy + Eq + Hash + ShardHash, V: MemoBytes> {
    shards: Vec<Shard<K, V>>,
    /// Per-shard ready-entry bound (`capacity` split across shards).
    shard_capacity: usize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    dedup_waits: AtomicU64,
    evictions: AtomicU64,
    unique: AtomicU64,
    /// Per-shard cap on the `seen` tracking set ([`UNIQUE_TRACK_CAP`]
    /// split across shards).
    seen_capacity: usize,
}

impl<K: Copy + Eq + Hash + ShardHash, V: MemoBytes> std::fmt::Debug for ShardedFlightCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFlightCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl<K: Copy + Eq + Hash + ShardHash, V: MemoBytes> ShardedFlightCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (minimum 1),
    /// sharded over [`DEFAULT_SHARDS`] lock domains (fewer when `capacity`
    /// is smaller, so the entry bound stays exact).
    pub fn new(capacity: usize) -> ShardedFlightCache<K, V> {
        ShardedFlightCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// Creates a cache with an explicit shard count (clamped to
    /// `1..=capacity`). One shard reproduces a single global LRU domain —
    /// useful for deterministic eviction-order tests.
    pub fn with_shards(capacity: usize, shards: usize) -> ShardedFlightCache<K, V> {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        ShardedFlightCache {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            shard_capacity: capacity.div_ceil(shards),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            dedup_waits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            unique: AtomicU64::new(0),
            seen_capacity: UNIQUE_TRACK_CAP.div_ceil(shards),
        }
    }

    /// Records a key's first-ever publication into its shard, bumping the
    /// `unique_signatures` counter. Caller holds the shard lock. Past the
    /// per-shard tracking cap new keys are silently skipped (the counter
    /// saturates into an undercount rather than growing memory unboundedly).
    fn note_unique(&self, state: &mut ShardState<K, V>, key: K) {
        if state.seen.len() >= self.seen_capacity && !state.seen.contains(&key) {
            return;
        }
        if state.seen.insert(key) {
            self.unique.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The shard a key belongs to: the key's [`ShardHash`] spread by one
    /// multiply-shift.
    fn shard_of(&self, key: &K) -> usize {
        let mixed = key.shard_hash().wrapping_mul(0x2545_F491_4F6C_DD1D);
        ((mixed >> 32) as usize) % self.shards.len()
    }

    /// Evicts least-recently-used ready entries until the shard has room
    /// for one more. Caller holds the shard lock.
    fn evict_to_fit(&self, state: &mut ShardState<K, V>) {
        while state.ready >= self.shard_capacity {
            let oldest = state
                .map
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready(e) => Some((*k, e.stamp, e.bytes)),
                    Slot::InFlight => None,
                })
                .min_by_key(|&(_, stamp, _)| stamp)
                .map(|(k, _, bytes)| (k, bytes));
            let Some((oldest, bytes)) = oldest else { break };
            state.map.remove(&oldest);
            state.ready -= 1;
            state.bytes = state.bytes.saturating_sub(bytes as u64);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Single-flight lookup: returns the value if ready
    /// ([`CacheFlight::Hit`]), blocks on a concurrent computation of the
    /// same key and shares its result ([`CacheFlight::Shared`]), or makes
    /// this caller the computing leader ([`CacheFlight::Miss`]).
    ///
    /// Every call resolves to exactly one of the three outcomes and
    /// increments exactly one of the `hits` / `dedup_waits` / `misses`
    /// counters, so their sum equals the number of `join` (plus `get`)
    /// calls.
    pub fn join(self: &Arc<Self>, key: K) -> CacheFlight<K, V> {
        let shard_index = self.shard_of(&key);
        let shard = &self.shards[shard_index];
        let mut state = lock_shard(&shard.state);
        let mut waited = false;
        loop {
            state.stamp += 1;
            let stamp = state.stamp;
            enum Decision<V> {
                Ready(Arc<V>),
                Wait,
                Lead,
            }
            let decision = match state.map.get_mut(&key) {
                Some(Slot::Ready(entry)) => {
                    entry.stamp = stamp;
                    Decision::Ready(Arc::clone(&entry.value))
                }
                Some(Slot::InFlight) => Decision::Wait,
                None => Decision::Lead,
            };
            match decision {
                Decision::Ready(value) => {
                    drop(state);
                    return if waited {
                        self.dedup_waits.fetch_add(1, Ordering::Relaxed);
                        CacheFlight::Shared(value)
                    } else {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        CacheFlight::Hit(value)
                    };
                }
                Decision::Wait => {
                    waited = true;
                    // Recover a lock poisoned by a dying leader: the loop
                    // re-checks the slot, so a waiter woken this way is
                    // promoted to the new leader instead of panicking.
                    state = shard
                        .resolved
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Decision::Lead => {
                    state.map.insert(key, Slot::InFlight);
                    drop(state);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return CacheFlight::Miss(CacheFlightToken {
                        cache: Arc::clone(self),
                        shard: shard_index,
                        key,
                        completed: false,
                    });
                }
            }
        }
    }

    /// Non-blocking lookup, refreshing the entry's LRU stamp. Counts a hit,
    /// or a miss when the key is absent *or still in flight* (this call
    /// never waits; use [`ShardedFlightCache::join`] for deduplication).
    pub fn get(&self, key: K) -> Option<Arc<V>> {
        let shard = &self.shards[self.shard_of(&key)];
        let mut state = lock_shard(&shard.state);
        state.stamp += 1;
        let stamp = state.stamp;
        match state.map.get_mut(&key) {
            Some(Slot::Ready(entry)) => {
                entry.stamp = stamp;
                let value = Arc::clone(&entry.value);
                drop(state);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            _ => {
                drop(state);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a result directly, evicting the least-recently-used entry
    /// of the key's shard when full. Returns the shared handle (the stored
    /// value if another thread raced this insert and won). If the key is in
    /// flight, the value resolves the flight and wakes waiters.
    pub fn insert(&self, key: K, value: V) -> Arc<V> {
        let shard = &self.shards[self.shard_of(&key)];
        let mut state = lock_shard(&shard.state);
        state.stamp += 1;
        let stamp = state.stamp;
        match state.map.get_mut(&key) {
            Some(Slot::Ready(existing)) => {
                // A concurrent worker stored the same entry first; keep it
                // so every holder shares one allocation.
                existing.stamp = stamp;
                return Arc::clone(&existing.value);
            }
            Some(Slot::InFlight) => {
                self.evict_to_fit(&mut state);
                let bytes = value.memo_bytes();
                let value = Arc::new(value);
                state.map.insert(
                    key,
                    Slot::Ready(Entry {
                        value: Arc::clone(&value),
                        stamp,
                        bytes,
                    }),
                );
                state.ready += 1;
                state.bytes += bytes as u64;
                self.note_unique(&mut state, key);
                drop(state);
                shard.resolved.notify_all();
                return value;
            }
            None => {}
        }
        self.evict_to_fit(&mut state);
        let bytes = value.memo_bytes();
        let value = Arc::new(value);
        state.map.insert(
            key,
            Slot::Ready(Entry {
                value: Arc::clone(&value),
                stamp,
                bytes,
            }),
        );
        state.ready += 1;
        state.bytes += bytes as u64;
        self.note_unique(&mut state, key);
        value
    }

    /// Exports every ready entry, ordered least- to most-recently-used
    /// within each shard (in-flight slots are skipped — they hold no value
    /// yet). Re-inserting the entries in the returned order into an empty
    /// cache reproduces each shard's LRU recency, which is what
    /// [`ShardedFlightCache::restore`] does — the snapshot/warm-boot path.
    pub fn export(&self) -> Vec<(K, Arc<V>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut entries: Vec<(u64, K, Arc<V>)> = {
                let state = lock_shard(&shard.state);
                state
                    .map
                    .iter()
                    .filter_map(|(k, slot)| match slot {
                        Slot::Ready(e) => Some((e.stamp, *k, Arc::clone(&e.value))),
                        Slot::InFlight => None,
                    })
                    .collect()
            };
            entries.sort_by_key(|&(stamp, _, _)| stamp);
            out.extend(entries.into_iter().map(|(_, k, v)| (k, v)));
        }
        out
    }

    /// Bulk-seeds the cache with pre-computed entries (a disk snapshot, an
    /// AOT compilation artifact). Entries are inserted in iteration order —
    /// pair with [`ShardedFlightCache::export`]'s LRU ordering to restore
    /// recency — and, like [`ShardedFlightCache::insert`], bump **no**
    /// hit/miss counters, so a warm boot starts with clean lookup stats.
    /// Returns the number of entries inserted.
    pub fn restore(&self, entries: impl IntoIterator<Item = (K, V)>) -> usize {
        let mut n = 0usize;
        for (key, value) in entries {
            self.insert(key, value);
            n += 1;
        }
        n
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let (mut entries, mut bytes) = (0usize, 0u64);
        for s in &self.shards {
            let state = lock_shard(&s.state);
            entries += state.ready;
            bytes += state.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            dedup_waits: self.dedup_waits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            unique_signatures: self.unique.load(Ordering::Relaxed),
            entries,
            bytes,
            capacity: self.capacity,
            shards: self.shards.len(),
        }
    }

    /// Drops every ready entry (counters are kept; in-flight slots stay —
    /// their leaders republish on completion).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut state = lock_shard(&shard.state);
            state.map.retain(|_, slot| matches!(slot, Slot::InFlight));
            state.ready = 0;
            state.bytes = 0;
        }
    }

    /// Drops every ready entry **and** zeroes all counters — a factory-new
    /// cache, used by benchmarks to measure passes in isolation. Only call
    /// while no batch is running.
    pub fn reset(&self) {
        self.clear();
        for shard in &self.shards {
            lock_shard(&shard.state).seen.clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.dedup_waits.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.unique.store(0, Ordering::Relaxed);
    }
}

/// Thread-safe, sharded, LRU-bounded single-flight memo cache for
/// EdgeToPath search results, shared across queries (and across batch
/// workers) of one domain — a thin wrapper over [`ShardedFlightCache`]
/// keyed by [`MemoKey`].
///
/// ```rust
/// use std::sync::Arc;
/// use nlquery_core::memo::{Flight, MemoKey, SharedPathCache};
/// use nlquery_grammar::SearchLimits;
///
/// let cache = Arc::new(SharedPathCache::new(128));
/// let key = MemoKey::from_root(&[], SearchLimits::default());
/// // First join leads the computation…
/// let Flight::Miss(token) = cache.join(key) else { panic!("cold cache") };
/// token.complete(Vec::new());
/// // …subsequent joins hit.
/// assert!(matches!(cache.join(key), Flight::Hit(_)));
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
pub struct SharedPathCache {
    inner: Arc<ShardedFlightCache<MemoKey, Vec<RawPath>>>,
}

impl std::fmt::Debug for SharedPathCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPathCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl SharedPathCache {
    /// Creates a cache holding at most `capacity` entries (minimum 1),
    /// sharded over [`DEFAULT_SHARDS`] lock domains.
    pub fn new(capacity: usize) -> SharedPathCache {
        SharedPathCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// Creates a cache with an explicit shard count (clamped to
    /// `1..=capacity`).
    pub fn with_shards(capacity: usize, shards: usize) -> SharedPathCache {
        SharedPathCache {
            inner: Arc::new(ShardedFlightCache::with_shards(capacity, shards)),
        }
    }

    /// Single-flight lookup; see [`ShardedFlightCache::join`].
    pub fn join(&self, key: MemoKey) -> Flight {
        self.inner.join(key)
    }

    /// Non-blocking lookup; see [`ShardedFlightCache::get`].
    pub fn get(&self, key: MemoKey) -> Option<Arc<Vec<RawPath>>> {
        self.inner.get(key)
    }

    /// Direct insert; see [`ShardedFlightCache::insert`].
    pub fn insert(&self, key: MemoKey, value: Vec<RawPath>) -> Arc<Vec<RawPath>> {
        self.inner.insert(key, value)
    }

    /// Exports every ready entry in per-shard LRU order; see
    /// [`ShardedFlightCache::export`].
    pub fn export(&self) -> Vec<(MemoKey, Arc<Vec<RawPath>>)> {
        self.inner.export()
    }

    /// Bulk-seeds the cache (snapshot restore, AOT warm-up); see
    /// [`ShardedFlightCache::restore`].
    pub fn restore(&self, entries: impl IntoIterator<Item = (MemoKey, Vec<RawPath>)>) -> usize {
        self.inner.restore(entries)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Drops every ready entry (counters are kept).
    pub fn clear(&self) {
        self.inner.clear()
    }

    /// Drops every ready entry **and** zeroes all counters.
    pub fn reset(&self) {
        self.inner.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::atomic::AtomicUsize;
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    use nlquery_grammar::GrammarGraph;

    fn key(n: u64) -> MemoKey {
        MemoKey {
            gov: n,
            dep: n,
            direction: MemoDirection::Between,
        }
    }

    /// A NodeId to build non-empty RawPath values from (values are
    /// distinguished by list length in these tests).
    fn some_api() -> NodeId {
        let graph = GrammarGraph::parse("command ::= API\n").unwrap();
        graph.api_node("API").expect("API node exists")
    }

    fn value_of(len: usize, api: NodeId) -> Vec<RawPath> {
        std::iter::repeat_with(|| RawPath {
            gov_api: None,
            dep_api: api,
            path: GrammarPath {
                source: None,
                sink: api,
                chain: Vec::new(),
            },
        })
        .take(len)
        .collect()
    }

    #[test]
    fn miss_then_hit() {
        let cache = SharedPathCache::new(8);
        assert!(cache.get(key(1)).is_none());
        cache.insert(key(1), Vec::new());
        assert!(cache.get(key(1)).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One shard = one global LRU domain, so eviction order is exact.
        let cache = SharedPathCache::with_shards(2, 1);
        cache.insert(key(1), Vec::new());
        cache.insert(key(2), Vec::new());
        // Touch 1 so that 2 is the LRU entry.
        assert!(cache.get(key(1)).is_some());
        cache.insert(key(3), Vec::new());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(key(1)).is_some(), "recently used entry survives");
        assert!(cache.get(key(2)).is_none(), "LRU entry was evicted");
        assert!(cache.get(key(3)).is_some());
    }

    #[test]
    fn capacity_is_bounded() {
        let cache = SharedPathCache::new(4);
        for n in 0..100 {
            cache.insert(key(n), Vec::new());
        }
        let s = cache.stats();
        assert!(s.entries <= 4, "{s:?}");
        assert_eq!(s.capacity, 4);
        assert_eq!(s.evictions as usize, 100 - s.entries);
    }

    #[test]
    fn racing_insert_keeps_first_value() {
        let cache = SharedPathCache::new(8);
        let first = cache.insert(key(1), Vec::new());
        let second = cache.insert(key(1), Vec::new());
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let cache = SharedPathCache::new(0);
        cache.insert(key(1), Vec::new());
        cache.insert(key(2), Vec::new());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn clear_keeps_counters_reset_zeroes_them() {
        let cache = SharedPathCache::new(8);
        cache.insert(key(1), Vec::new());
        assert!(cache.get(key(1)).is_some());
        cache.clear();
        assert!(cache.get(key(1)).is_none());
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.hits, 1);
        cache.reset();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.dedup_waits, s.evictions), (0, 0, 0, 0));
    }

    #[test]
    fn bytes_gauge_tracks_residency() {
        let api = some_api();
        let cache = SharedPathCache::with_shards(2, 1);
        assert_eq!(cache.stats().bytes, 0);
        cache.insert(key(1), value_of(3, api));
        let populated = cache.stats().bytes;
        assert!(populated > 0, "non-empty values occupy bytes");
        // Evicting key(1) by filling the single-shard LRU returns its bytes.
        cache.insert(key(2), Vec::new());
        cache.insert(key(3), Vec::new());
        assert!(cache.stats().bytes < populated, "evicted bytes released");
        cache.clear();
        assert_eq!(cache.stats().bytes, 0, "clear zeroes the gauge");
    }

    #[test]
    fn single_flight_leader_then_hits() {
        let cache = Arc::new(SharedPathCache::new(8));
        let api = some_api();
        let Flight::Miss(token) = cache.join(key(7)) else {
            panic!("first join must lead");
        };
        let stored = token.complete(value_of(3, api));
        assert_eq!(stored.len(), 3);
        match cache.join(key(7)) {
            Flight::Hit(v) => assert_eq!(v.len(), 3),
            other => panic!("expected hit, got {other:?}"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.dedup_waits), (1, 1, 0));
    }

    #[test]
    fn abandoned_flight_promotes_next_caller() {
        let cache = Arc::new(SharedPathCache::new(8));
        let Flight::Miss(token) = cache.join(key(1)) else {
            panic!("first join must lead");
        };
        drop(token); // leader gives up (e.g. panicked mid-search)
        let Flight::Miss(token) = cache.join(key(1)) else {
            panic!("abandoned key must be re-leadable");
        };
        token.complete(Vec::new());
        assert!(matches!(cache.join(key(1)), Flight::Hit(_)));
        assert_eq!(cache.stats().misses, 2, "both leaders count as misses");
    }

    #[test]
    fn panicking_leader_promotes_blocked_waiter() {
        // A leader that *panics* mid-computation (not just returns early)
        // unwinds through the FlightToken Drop while waiters are blocked on
        // the shard condvar. One waiter must be promoted to the new leader
        // and the rest must resolve to its value — no deadlock, no
        // poisoned-shard cascade.
        let cache = Arc::new(SharedPathCache::new(64));
        let api = some_api();
        let k = key(99);
        let leading = Arc::new(Barrier::new(5));
        let leader = {
            let cache = Arc::clone(&cache);
            let leading = Arc::clone(&leading);
            std::thread::spawn(move || {
                let Flight::Miss(_token) = cache.join(k) else {
                    panic!("cold cache: first join must lead");
                };
                leading.wait(); // waiters start joining now
                std::thread::sleep(Duration::from_millis(50));
                panic!("injected: leader dies while key is in flight");
            })
        };
        let mut waiters = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let leading = Arc::clone(&leading);
            waiters.push(std::thread::spawn(move || {
                leading.wait();
                match cache.join(k) {
                    Flight::Miss(token) => token.complete(value_of(3, api)).len(),
                    Flight::Shared(v) | Flight::Hit(v) => v.len(),
                }
            }));
        }
        assert!(leader.join().is_err(), "leader thread panicked by design");
        for w in waiters {
            assert_eq!(w.join().expect("waiter survives"), 3);
        }
        let s = cache.stats();
        assert_eq!(s.misses, 2, "dead leader + promoted waiter");
        assert_eq!(s.lookups(), 5);
        // The cache stays fully usable after the panic.
        assert!(matches!(cache.join(k), Flight::Hit(_)));
    }

    #[test]
    fn insert_resolves_in_flight_key() {
        let cache = Arc::new(SharedPathCache::new(8));
        let Flight::Miss(token) = cache.join(key(2)) else {
            panic!("first join must lead");
        };
        // A direct insert (legacy path) lands while the flight is open.
        cache.insert(key(2), Vec::new());
        // The late completion adopts the stored value.
        let v = token.complete(value_of(5, some_api()));
        assert_eq!(v.len(), 0, "existing entry wins");
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn waiters_block_until_leader_completes() {
        let cache = Arc::new(SharedPathCache::new(64));
        let api = some_api();
        let k = key(42);
        let barrier = Arc::new(Barrier::new(8));
        let computed = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            let computed = Arc::clone(&computed);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                match cache.join(k) {
                    Flight::Miss(token) => {
                        // Hold the flight open long enough that every other
                        // thread arrives while the key is in flight.
                        std::thread::sleep(Duration::from_millis(50));
                        computed.fetch_add(1, Ordering::SeqCst);
                        token.complete(value_of(2, api)).len()
                    }
                    Flight::Shared(v) | Flight::Hit(v) => v.len(),
                }
            }));
        }
        for h in handles {
            assert_eq!(h.join().expect("worker ok"), 2, "all threads share");
        }
        assert_eq!(computed.load(Ordering::SeqCst), 1, "exactly one compute");
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits + s.dedup_waits, 7);
        assert_eq!(s.lookups(), 8);
    }

    #[test]
    fn shared_across_threads() {
        let cache = Arc::new(SharedPathCache::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for n in 0..16 {
                    // All threads join the same 16 keys; exactly one thread
                    // computes each, the rest hit or wait.
                    if let Flight::Miss(token) = cache.join(key(n)) {
                        token.complete(Vec::new());
                    }
                    let _ = t;
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        let s = cache.stats();
        assert_eq!(s.entries, 16);
        assert_eq!(s.lookups(), 64);
        assert_eq!(s.misses, 16, "single-flight: one compute per key: {s:?}");
    }

    #[test]
    fn key_is_order_insensitive_after_sorting() {
        // Key construction is over caller-sorted sets; equal sets produce
        // equal keys, different sets different keys (w.h.p.).
        let limits = SearchLimits::default();
        let a = MemoKey::from_root(&[], limits);
        let b = MemoKey::from_root(&[], limits);
        assert_eq!(a, b);
        let tighter = SearchLimits {
            max_paths: 1,
            ..limits
        };
        assert_ne!(
            MemoKey::from_root(&[], limits),
            MemoKey::from_root(&[], tighter),
            "limits are part of the key"
        );
    }

    #[test]
    fn unique_signatures_counts_distinct_published_keys() {
        let cache = SharedPathCache::new(8);
        cache.insert(key(1), Vec::new());
        cache.insert(key(2), Vec::new());
        cache.insert(key(1), Vec::new()); // re-publication: not unique
        assert_eq!(cache.stats().unique_signatures, 2);
        // Eviction and clear don't forget a key…
        cache.clear();
        cache.insert(key(1), Vec::new());
        assert_eq!(cache.stats().unique_signatures, 2);
        // …single-flight publication counts too…
        let arc = Arc::new(SharedPathCache::new(8));
        let Flight::Miss(token) = arc.join(key(9)) else {
            panic!("cold cache leads");
        };
        token.complete(Vec::new());
        assert_eq!(arc.stats().unique_signatures, 1);
        // …and reset starts a fresh census.
        cache.reset();
        assert_eq!(cache.stats().unique_signatures, 0);
        cache.insert(key(1), Vec::new());
        assert_eq!(cache.stats().unique_signatures, 1);
    }

    #[test]
    fn export_restore_round_trips_entries_and_lru_order() {
        let api = some_api();
        // One shard so LRU eviction order is exact and observable.
        let cache = SharedPathCache::with_shards(3, 1);
        cache.insert(key(1), value_of(1, api));
        cache.insert(key(2), value_of(2, api));
        cache.insert(key(3), value_of(3, api));
        // Touch 1 so the LRU order is 2 < 3 < 1.
        assert!(cache.get(key(1)).is_some());

        let exported = cache.export();
        assert_eq!(exported.len(), 3);
        let order: Vec<MemoKey> = exported.iter().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![key(2), key(3), key(1)], "LRU→MRU order");

        let fresh = SharedPathCache::with_shards(3, 1);
        let n = fresh.restore(exported.into_iter().map(|(k, v)| (k, (*v).clone())));
        assert_eq!(n, 3);
        let s = fresh.stats();
        assert_eq!(s.entries, 3);
        assert_eq!((s.hits, s.misses), (0, 0), "restore bumps no counters");
        assert_eq!(s.unique_signatures, 3, "restored keys register as seen");
        // Same values…
        assert_eq!(fresh.get(key(3)).unwrap().len(), 3);
        // …and the restored LRU order matches: inserting one more evicts
        // key(2), the least recently used at export time.
        let fresh = SharedPathCache::with_shards(3, 1);
        fresh.restore(cache.export().into_iter().map(|(k, v)| (k, (*v).clone())));
        fresh.insert(key(4), Vec::new());
        assert!(fresh.get(key(2)).is_none(), "restored LRU evicts first");
        assert!(fresh.get(key(1)).is_some());
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let cache = Arc::new(SharedPathCache::new(8));
        cache.insert(key(1), Vec::new());
        let before = cache.stats();
        assert!(cache.get(key(1)).is_some());
        assert!(cache.get(key(2)).is_none());
        let delta = cache.stats().delta_since(&before);
        assert_eq!((delta.hits, delta.misses), (1, 1));
        assert_eq!(delta.entries, 1, "gauges are absolute");
    }

    // ------------------------------------------------------------------
    // Seeded property test: random insert / lookup / single-flight /
    // clear interleavings against a reference BTreeMap model that mirrors
    // the per-shard LRU semantics (including eviction order).
    // ------------------------------------------------------------------

    /// In-tree xorshift64* (no external deps; determinism-by-seed).
    struct XorShift64 {
        state: u64,
    }

    impl XorShift64 {
        fn new(seed: u64) -> XorShift64 {
            XorShift64 {
                state: if seed == 0 {
                    0x9E37_79B9_7F4A_7C15
                } else {
                    seed
                },
            }
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Reference model: one BTreeMap per shard, mirroring stamp/LRU
    /// bookkeeping operation for operation.
    struct Model {
        shards: Vec<BTreeMap<MemoKey, (usize, u64)>>,
        stamps: Vec<u64>,
        shard_capacity: usize,
    }

    impl Model {
        fn new(shards: usize, shard_capacity: usize) -> Model {
            Model {
                shards: (0..shards).map(|_| BTreeMap::new()).collect(),
                stamps: vec![0; shards],
                shard_capacity,
            }
        }

        /// Mirrors `get` / the hit arm of `join`: bump stamp, refresh on
        /// hit. Returns the stored value length on hit.
        fn lookup(&mut self, shard: usize, key: MemoKey) -> Option<usize> {
            self.stamps[shard] += 1;
            let stamp = self.stamps[shard];
            match self.shards[shard].get_mut(&key) {
                Some((len, s)) => {
                    *s = stamp;
                    Some(*len)
                }
                None => None,
            }
        }

        fn evict_to_fit(&mut self, shard: usize) -> Option<MemoKey> {
            if self.shards[shard].len() < self.shard_capacity {
                return None;
            }
            let oldest = self.shards[shard]
                .iter()
                .min_by_key(|(_, &(_, stamp))| stamp)
                .map(|(k, _)| *k)?;
            self.shards[shard].remove(&oldest);
            Some(oldest)
        }

        /// Mirrors `insert` and `CacheFlightToken::complete`: both bump the
        /// shard stamp exactly once (a led flight's *join* bump is
        /// mirrored by the `lookup` call at the join site).
        fn insert(&mut self, shard: usize, key: MemoKey, len: usize) {
            self.stamps[shard] += 1;
            let stamp = self.stamps[shard];
            if let Some((_, s)) = self.shards[shard].get_mut(&key) {
                *s = stamp; // existing entry wins, stamp refreshed
                return;
            }
            self.evict_to_fit(shard);
            self.shards[shard].insert(key, (len, stamp));
        }

        fn clear(&mut self) {
            for s in &mut self.shards {
                s.clear();
            }
        }
    }

    #[test]
    fn property_matches_reference_model() {
        let api = some_api();
        for seed in 1..=6u64 {
            let mut rng = XorShift64::new(seed);
            // Small capacity and few shards so evictions are constant.
            let (capacity, shards) = (8, 4);
            let cache = Arc::new(SharedPathCache::with_shards(capacity, shards));
            let mut model = Model::new(shards, capacity.div_ceil(shards));
            // A fixed key universe spanning both directions.
            let universe: Vec<MemoKey> = (0..24)
                .map(|i| MemoKey {
                    gov: i as u64 * 3,
                    dep: i as u64 * 7 + 1,
                    direction: if i % 2 == 0 {
                        MemoDirection::Between
                    } else {
                        MemoDirection::FromRoot
                    },
                })
                .collect();
            let len_of = |k: &MemoKey| (k.gov % 5) as usize;

            for step in 0..600 {
                let k = universe[rng.below(universe.len())];
                let shard = cache.inner.shard_of(&k);
                match rng.below(20) {
                    0 => {
                        cache.clear();
                        model.clear();
                    }
                    1..=7 => {
                        let got = cache.get(k).map(|v| v.len());
                        let want = model.lookup(shard, k);
                        assert_eq!(got, want, "seed {seed} step {step} get {k:?}");
                    }
                    8..=13 => {
                        let stored = cache.insert(k, value_of(len_of(&k), api));
                        model.insert(shard, k, len_of(&k));
                        assert_eq!(stored.len(), len_of(&k));
                    }
                    _ => match cache.join(k) {
                        Flight::Hit(v) => {
                            let want = model.lookup(shard, k);
                            assert_eq!(Some(v.len()), want, "seed {seed} step {step}");
                        }
                        Flight::Miss(token) => {
                            let want = model.lookup(shard, k);
                            assert_eq!(want, None, "seed {seed} step {step} led a hit");
                            token.complete(value_of(len_of(&k), api));
                            model.insert(shard, k, len_of(&k));
                        }
                        Flight::Shared(_) => unreachable!("single-threaded"),
                    },
                }

                // Full-state equivalence: per shard, the same keys with the
                // same stamps (LRU order) and the same values.
                for (si, shard_ref) in cache.inner.shards.iter().enumerate() {
                    let state = shard_ref.state.lock().unwrap();
                    let mut got: Vec<(MemoKey, u64, usize)> = state
                        .map
                        .iter()
                        .filter_map(|(k, slot)| match slot {
                            Slot::Ready(e) => Some((*k, e.stamp, e.value.len())),
                            Slot::InFlight => None,
                        })
                        .collect();
                    got.sort_unstable();
                    let mut want: Vec<(MemoKey, u64, usize)> = model.shards[si]
                        .iter()
                        .map(|(k, &(len, stamp))| (*k, stamp, len))
                        .collect();
                    want.sort_unstable();
                    assert_eq!(
                        got, want,
                        "seed {seed} step {step} shard {si} diverged from model"
                    );
                    assert_eq!(state.stamp, model.stamps[si]);
                    assert_eq!(state.ready, model.shards[si].len());
                }
            }
        }
    }
}
