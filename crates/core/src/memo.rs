//! Cross-query memoization of EdgeToPath search results.
//!
//! The grammar graph is immutable per domain, so the set of grammar paths
//! connecting one candidate-API set to another never changes between
//! queries — yet the seed pipeline re-ran the reversed all-path search for
//! every query. [`SharedPathCache`] memoizes finalized per-edge path lists
//! across queries (and across the threads of a
//! [`BatchEngine`](crate::BatchEngine)), keyed by
//! `(governor candidate-set hash, dependent candidate-set hash, direction)`
//! with an LRU bound and hit/miss/eviction counters.
//!
//! Cached values are *raw* candidates: sorted, truncated to the search
//! limits, but without relation-affinity bonuses or path ids — both depend
//! on the specific dependency edge, so they are applied at retrieval time
//! by [`edge2path`](crate::edge2path).

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use nlquery_grammar::{GrammarPath, NodeId, SearchLimits};

/// Which kind of path search a memo entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoDirection {
    /// `paths_from_root` searches (root pseudo-edge, orphan attachment).
    FromRoot,
    /// `paths_between` searches (real dependency edges).
    Between,
}

/// Cache key for one edge-level search.
///
/// The hashes cover the sorted, deduplicated candidate-API sets of the
/// governor and dependent sides plus the active [`SearchLimits`]; two
/// dependency edges with the same candidate sets share an entry no matter
/// which queries they came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// Hash of the governor-side candidate set (0 for root searches).
    pub gov: u64,
    /// Hash of the dependent-side candidate set.
    pub dep: u64,
    /// Search direction.
    pub direction: MemoDirection,
}

/// One memoized candidate path: finalized order, no per-edge metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct RawPath {
    /// Governor-side API (`None` for root searches).
    pub gov_api: Option<NodeId>,
    /// Dependent-side API (the path's sink).
    pub dep_api: NodeId,
    /// The grammar path.
    pub path: GrammarPath,
}

/// Snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Maximum entries held.
    pub capacity: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

fn hash_apis(apis: &[NodeId], limits: SearchLimits) -> u64 {
    let mut h = DefaultHasher::new();
    limits.max_paths.hash(&mut h);
    limits.max_depth.hash(&mut h);
    for api in apis {
        api.hash(&mut h);
    }
    h.finish()
}

impl MemoKey {
    /// Key for a `paths_between` search over two candidate sets. Callers
    /// must pass sorted, deduplicated sets so that equal sets hash equally.
    pub fn between(gov_apis: &[NodeId], dep_apis: &[NodeId], limits: SearchLimits) -> MemoKey {
        MemoKey {
            gov: hash_apis(gov_apis, limits),
            dep: hash_apis(dep_apis, limits),
            direction: MemoDirection::Between,
        }
    }

    /// Key for a `paths_from_root` search over a candidate set.
    pub fn from_root(dep_apis: &[NodeId], limits: SearchLimits) -> MemoKey {
        MemoKey {
            gov: 0,
            dep: hash_apis(dep_apis, limits),
            direction: MemoDirection::FromRoot,
        }
    }
}

struct Entry {
    value: Arc<Vec<RawPath>>,
    stamp: u64,
}

struct Lru {
    map: HashMap<MemoKey, Entry>,
    stamp: u64,
}

/// Thread-safe, LRU-bounded memo cache for EdgeToPath search results,
/// shared across queries (and across batch workers) of one domain.
///
/// ```rust
/// use nlquery_core::memo::{MemoKey, SharedPathCache};
/// use nlquery_grammar::SearchLimits;
///
/// let cache = SharedPathCache::new(128);
/// let key = MemoKey::from_root(&[], SearchLimits::default());
/// assert!(cache.get(key).is_none());
/// cache.insert(key, Vec::new());
/// assert!(cache.get(key).is_some());
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
pub struct SharedPathCache {
    inner: Mutex<Lru>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for SharedPathCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPathCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl SharedPathCache {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> SharedPathCache {
        SharedPathCache {
            inner: Mutex::new(Lru {
                map: HashMap::new(),
                stamp: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a memoized search, refreshing its LRU stamp. Counts a hit
    /// or a miss.
    pub fn get(&self, key: MemoKey) -> Option<Arc<Vec<RawPath>>> {
        let mut lru = self.inner.lock().expect("cache lock");
        lru.stamp += 1;
        let stamp = lru.stamp;
        match lru.map.get_mut(&key) {
            Some(entry) => {
                entry.stamp = stamp;
                let value = Arc::clone(&entry.value);
                drop(lru);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(lru);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a search result, evicting the least-recently-used entry
    /// when full. Returns the shared handle (the stored value if another
    /// thread raced this insert and won).
    pub fn insert(&self, key: MemoKey, value: Vec<RawPath>) -> Arc<Vec<RawPath>> {
        let mut lru = self.inner.lock().expect("cache lock");
        lru.stamp += 1;
        let stamp = lru.stamp;
        if let Some(existing) = lru.map.get_mut(&key) {
            // A concurrent worker computed the same entry first; keep it so
            // every holder shares one allocation.
            existing.stamp = stamp;
            return Arc::clone(&existing.value);
        }
        if lru.map.len() >= self.capacity {
            if let Some(oldest) = lru.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k) {
                lru.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let value = Arc::new(value);
        lru.map.insert(
            key,
            Entry {
                value: Arc::clone(&value),
                stamp,
            },
        );
        value
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("cache lock").map.len(),
            capacity: self.capacity,
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().expect("cache lock").map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(n: u64) -> MemoKey {
        MemoKey {
            gov: n,
            dep: n,
            direction: MemoDirection::Between,
        }
    }

    #[test]
    fn miss_then_hit() {
        let cache = SharedPathCache::new(8);
        assert!(cache.get(key(1)).is_none());
        cache.insert(key(1), Vec::new());
        assert!(cache.get(key(1)).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = SharedPathCache::new(2);
        cache.insert(key(1), Vec::new());
        cache.insert(key(2), Vec::new());
        // Touch 1 so that 2 is the LRU entry.
        assert!(cache.get(key(1)).is_some());
        cache.insert(key(3), Vec::new());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(key(1)).is_some(), "recently used entry survives");
        assert!(cache.get(key(2)).is_none(), "LRU entry was evicted");
        assert!(cache.get(key(3)).is_some());
    }

    #[test]
    fn capacity_is_bounded() {
        let cache = SharedPathCache::new(4);
        for n in 0..100 {
            cache.insert(key(n), Vec::new());
        }
        let s = cache.stats();
        assert_eq!(s.entries, 4);
        assert_eq!(s.capacity, 4);
        assert_eq!(s.evictions, 96);
    }

    #[test]
    fn racing_insert_keeps_first_value() {
        let cache = SharedPathCache::new(8);
        let first = cache.insert(key(1), Vec::new());
        let second = cache.insert(key(1), Vec::new());
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let cache = SharedPathCache::new(0);
        cache.insert(key(1), Vec::new());
        cache.insert(key(2), Vec::new());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = SharedPathCache::new(8);
        cache.insert(key(1), Vec::new());
        assert!(cache.get(key(1)).is_some());
        cache.clear();
        assert!(cache.get(key(1)).is_none());
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn shared_across_threads() {
        let cache = Arc::new(SharedPathCache::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for n in 0..16 {
                    // All threads insert the same 16 keys; later threads hit.
                    if cache.get(key(n)).is_none() {
                        cache.insert(key(n), Vec::new());
                    }
                    let _ = t;
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        let s = cache.stats();
        assert_eq!(s.entries, 16);
        assert_eq!(s.hits + s.misses, 64);
        assert!(s.hits >= 16, "cross-thread lookups must hit: {s:?}");
    }

    #[test]
    fn key_is_order_insensitive_after_sorting() {
        // Key construction is over caller-sorted sets; equal sets produce
        // equal keys, different sets different keys (w.h.p.).
        let limits = SearchLimits::default();
        let a = MemoKey::from_root(&[], limits);
        let b = MemoKey::from_root(&[], limits);
        assert_eq!(a, b);
        let tighter = SearchLimits {
            max_paths: 1,
            ..limits
        };
        assert_ne!(
            MemoKey::from_root(&[], limits),
            MemoKey::from_root(&[], tighter),
            "limits are part of the key"
        );
    }
}
