//! The pruned query graph — the synthesizer's view of a query.

use nlquery_nlp::{DepRel, Pos};

/// A node of the pruned dependency graph: one content word (or a merged
/// compound like "constructor expressions"), possibly carrying a literal.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryNode {
    /// Dense node id within the [`QueryGraph`].
    pub id: usize,
    /// The words backing this node, in query order (head last for merged
    /// compounds).
    pub words: Vec<String>,
    /// Part of speech of the head word.
    pub pos: Pos,
    /// A literal payload (quoted string or number) to fill a DSL slot.
    pub literal: Option<String>,
}

impl QueryNode {
    /// The words joined with spaces — the unit the WordToAPI step matches.
    pub fn phrase(&self) -> String {
        self.words.join(" ")
    }
}

/// An edge of the pruned dependency graph (governor → dependent).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryEdge {
    /// Governor node id.
    pub gov: usize,
    /// Dependent node id.
    pub dep: usize,
    /// The dependency relation (kept for diagnostics).
    pub rel: DepRel,
}

/// The pruned dependency graph: a tree over content words rooted at the
/// main verb (or promoted object).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryGraph {
    /// Nodes in query order.
    pub nodes: Vec<QueryNode>,
    /// Tree edges.
    pub edges: Vec<QueryEdge>,
    /// Root node id.
    pub root: Option<usize>,
}

impl QueryGraph {
    /// Children of `id`.
    pub fn children(&self, id: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|e| e.gov == id)
            .map(|e| e.dep)
            .collect()
    }

    /// The governor of `id`, if attached.
    pub fn parent(&self, id: usize) -> Option<usize> {
        self.edges.iter().find(|e| e.dep == id).map(|e| e.gov)
    }

    /// Node ids with no governor that are not the root.
    pub fn unattached(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| Some(i) != self.root && self.parent(i).is_none())
            .collect()
    }

    /// Nodes grouped by depth from the root (level 0 = root). Unattached
    /// nodes are *not* included; callers decide their fate (orphan
    /// relocation or root attachment).
    pub fn levels(&self) -> Vec<Vec<usize>> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        let mut depth = vec![usize::MAX; self.nodes.len()];
        depth[root] = 0;
        let mut frontier = vec![root];
        let mut levels = vec![vec![root]];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &n in &frontier {
                for c in self.children(n) {
                    if depth[c] == usize::MAX {
                        depth[c] = depth[n] + 1;
                        next.push(c);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            levels.push(next.clone());
            frontier = next;
        }
        levels
    }

    /// Nodes in bottom-up order (deepest level first, root last; within a
    /// level, query order).
    pub fn bottom_up(&self) -> Vec<usize> {
        self.levels().into_iter().rev().flatten().collect()
    }

    /// Renders the graph for diagnostics.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(r) = self.root {
            out.push_str(&format!("root: {}\n", self.nodes[r].phrase()));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "{} -{}-> {}\n",
                self.nodes[e.gov].phrase(),
                e.rel,
                self.nodes[e.dep].phrase()
            ));
        }
        for u in self.unattached() {
            out.push_str(&format!("(unattached: {})\n", self.nodes[u].phrase()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn node(id: usize, word: &str) -> QueryNode {
        QueryNode {
            id,
            words: vec![word.to_string()],
            pos: Pos::Noun,
            literal: None,
        }
    }

    fn graph() -> QueryGraph {
        QueryGraph {
            nodes: vec![
                node(0, "insert"),
                node(1, "string"),
                node(2, "start"),
                node(3, "line"),
            ],
            edges: vec![
                QueryEdge {
                    gov: 0,
                    dep: 1,
                    rel: DepRel::Obj,
                },
                QueryEdge {
                    gov: 0,
                    dep: 2,
                    rel: DepRel::Nmod("at".into()),
                },
                QueryEdge {
                    gov: 2,
                    dep: 3,
                    rel: DepRel::Nmod("of".into()),
                },
            ],
            root: Some(0),
        }
    }

    #[test]
    fn levels_and_bottom_up() {
        let g = graph();
        assert_eq!(g.levels(), vec![vec![0], vec![1, 2], vec![3]]);
        assert_eq!(g.bottom_up(), vec![3, 1, 2, 0]);
    }

    #[test]
    fn unattached_excluded_from_levels() {
        let mut g = graph();
        g.nodes.push(node(4, "stray"));
        assert_eq!(g.unattached(), vec![4]);
        let all: Vec<usize> = g.levels().into_iter().flatten().collect();
        assert!(!all.contains(&4));
    }

    #[test]
    fn phrase_joins_words() {
        let n = QueryNode {
            id: 0,
            words: vec!["constructor".into(), "expressions".into()],
            pos: Pos::Noun,
            literal: None,
        };
        assert_eq!(n.phrase(), "constructor expressions");
    }

    #[test]
    fn empty_graph_has_no_levels() {
        let g = QueryGraph::default();
        assert!(g.levels().is_empty());
        assert!(g.unattached().is_empty());
    }
}
