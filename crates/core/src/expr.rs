//! Step 6 — TreeToExpression: render the smallest CGT as a DSL expression.
//!
//! The CGT is traversed depth-first from its top; "the children of a node
//! are regarded as parameters of the API in their parent node" (§II). A
//! derivation whose first child is an API becomes a call of that API with
//! the remaining parts as arguments; literal slots are filled from
//! [`LiteralPool`] bindings collected during synthesis.

use std::collections::{BTreeMap, VecDeque};

use nlquery_grammar::{GrammarGraph, NodeId};

use crate::{Cgt, Domain};

/// Literal values available to fill API slots.
///
/// Literals are *bound* to the grammar occurrence — the
/// (derivation, API) edge — their query word claimed, so that two words
/// mapping to the same API fill their own slots (`REPLACE(STRING(a),
/// STRING(b))`, `STARTSWITH(STRING(-))` vs the insert's `STRING(:)`).
/// Occurrence-less bindings attach at the API level; unfilled slots draw
/// from a fallback queue in query order.
#[derive(Debug, Clone, Default)]
pub struct LiteralPool {
    bound_occ: BTreeMap<(NodeId, NodeId), VecDeque<String>>,
    bound_api: BTreeMap<NodeId, VecDeque<String>>,
    fallback: VecDeque<String>,
}

impl LiteralPool {
    /// Creates an empty pool.
    pub fn new() -> LiteralPool {
        LiteralPool::default()
    }

    /// Binds a literal to a specific grammar occurrence (FIFO).
    pub fn bind_occurrence(&mut self, occurrence: (NodeId, NodeId), literal: String) {
        self.bound_occ
            .entry(occurrence)
            .or_default()
            .push_back(literal);
    }

    /// Binds a literal to an API node (FIFO per node).
    pub fn bind(&mut self, api: NodeId, literal: String) {
        self.bound_api.entry(api).or_default().push_back(literal);
    }

    /// Adds a fallback literal consumed by any unfilled slot.
    pub fn push_fallback(&mut self, literal: String) {
        self.fallback.push_back(literal);
    }

    fn take(&mut self, parent: Option<NodeId>, api: NodeId) -> Option<String> {
        if let Some(parent) = parent {
            if let Some(queue) = self.bound_occ.get_mut(&(parent, api)) {
                if let Some(lit) = queue.pop_front() {
                    return Some(lit);
                }
            }
        }
        if let Some(queue) = self.bound_api.get_mut(&api) {
            if let Some(lit) = queue.pop_front() {
                return Some(lit);
            }
        }
        self.fallback.pop_front()
    }
}

/// Renders a CGT into the final DSL expression.
///
/// Returns `None` when the CGT is empty or its top is not renderable.
pub fn render_expression(domain: &Domain, cgt: &Cgt, pool: &mut LiteralPool) -> Option<String> {
    let graph = domain.graph();
    let top = cgt.top(graph)?;
    let mut r = Renderer {
        domain,
        graph,
        cgt,
        pool,
    };
    let parts = r.render_node(top, 0);
    match parts.len() {
        0 => None,
        _ => Some(
            parts
                .iter()
                .map(Part::render)
                .collect::<Vec<_>>()
                .join(", "),
        ),
    }
}

/// A rendered fragment: an API call or plain text (already-folded call).
#[derive(Debug, Clone)]
enum Part {
    Call { name: String, args: Vec<String> },
}

impl Part {
    fn render(&self) -> String {
        match self {
            Part::Call { name, args } => format!("{}({})", name, args.join(", ")),
        }
    }
}

/// Folds a head-first derivation's parts: the head call absorbs the rest
/// as arguments (`INSERT insert_arg` renders as `INSERT(args…)`). Only
/// called when the derivation's first child is an API node; other
/// derivations pass their parts through unchanged.
fn fold_head(parts: Vec<Part>) -> Vec<Part> {
    let mut iter = parts.into_iter();
    let Some(first) = iter.next() else {
        return Vec::new();
    };
    let rest: Vec<Part> = iter.collect();
    if rest.is_empty() {
        return vec![first];
    }
    let Part::Call { name, mut args } = first;
    args.extend(rest.iter().map(Part::render));
    vec![Part::Call { name, args }]
}

struct Renderer<'a> {
    domain: &'a Domain,
    graph: &'a GrammarGraph,
    cgt: &'a Cgt,
    pool: &'a mut LiteralPool,
}

/// Depth guard against pathological CGTs.
const MAX_DEPTH: usize = 64;

impl Renderer<'_> {
    fn render_node(&mut self, node: NodeId, depth: usize) -> Vec<Part> {
        if depth > MAX_DEPTH {
            return Vec::new();
        }
        if self.graph.is_api(node) {
            return vec![self.render_api(None, node)];
        }
        if self.graph.is_nonterminal(node) {
            // Follow the chosen or-edge (a valid CGT has at most one).
            let chosen = self
                .graph
                .node(node)
                .children
                .iter()
                .copied()
                .find(|&d| self.cgt.edges.contains(&(node, d)));
            return match chosen {
                Some(d) => self.render_node(d, depth + 1),
                None => Vec::new(),
            };
        }
        // Derivation: walk children in grammar order (duplicates render
        // per occurrence), skipping sub-trees the CGT does not mention.
        let children: Vec<NodeId> = self.graph.node(node).children.clone();
        let head_first = children.first().is_some_and(|&c| self.graph.is_api(c));
        let mut parts = Vec::new();
        for child in children {
            if self.graph.is_api(child) {
                // API nodes are shared across derivations; only the edge
                // says whether *this* occurrence is in the tree.
                if self.cgt.edges.contains(&(node, child)) {
                    parts.push(self.render_api(Some(node), child));
                }
            } else if self.cgt.edges.contains(&(node, child)) {
                parts.extend(self.render_node(child, depth + 1));
            }
        }
        if head_first {
            fold_head(parts)
        } else {
            parts
        }
    }

    fn render_api(&mut self, parent: Option<NodeId>, node: NodeId) -> Part {
        let name = self.graph.node(node).label_str();
        let slots = self
            .domain
            .matcher()
            .doc(name)
            .map(|d| d.literal_slots)
            .unwrap_or(0);
        let mut args = Vec::new();
        for _ in 0..slots {
            if let Some(lit) = self.pool.take(parent, node) {
                if self.domain.quote_literals() {
                    args.push(format!("\"{lit}\""));
                } else {
                    args.push(lit);
                }
            }
        }
        Part::Call {
            name: name.to_string(),
            args,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlquery_grammar::{GrammarGraph, SearchLimits};
    use nlquery_nlp::ApiDoc;

    fn domain(quote: bool) -> Domain {
        let graph = GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg | REPLACE replace_arg
            insert_arg ::= string pos
            replace_arg ::= string string
            string     ::= STRING
            pos        ::= POSITION | START
            "#,
        )
        .unwrap();
        let mut b = Domain::builder("t")
            .graph(graph)
            .docs(vec![
                ApiDoc::new("INSERT", &["insert"], "inserts", 0),
                ApiDoc::new("REPLACE", &["replace"], "replaces", 0),
                ApiDoc::new("STRING", &["string"], "a string", 1),
                ApiDoc::new("POSITION", &["position"], "a position", 1),
                ApiDoc::new("START", &["start"], "the start", 0),
            ])
            .literal_api("STRING");
        if quote {
            b = b.quote_literals(true);
        }
        b.build().unwrap()
    }

    fn build_cgt(d: &Domain, pairs: &[(&str, &str)], root_api: &str) -> Cgt {
        let g = d.graph();
        let mut cgt = Cgt::new();
        let root_paths = g.paths_from_root(g.api_node(root_api).unwrap(), SearchLimits::default());
        cgt.absorb_path(&root_paths[0], g);
        for (from, to) in pairs {
            let a = g.api_node(from).unwrap();
            let b = g.api_node(to).unwrap();
            let paths = g.paths_between(a, b, SearchLimits::default());
            cgt.absorb_path(&paths[0], g);
        }
        cgt
    }

    #[test]
    fn renders_nested_call() {
        let d = domain(false);
        let cgt = build_cgt(&d, &[("INSERT", "STRING"), ("INSERT", "START")], "INSERT");
        let mut pool = LiteralPool::new();
        pool.bind(d.graph().api_node("STRING").unwrap(), ":".to_string());
        let expr = render_expression(&d, &cgt, &mut pool).unwrap();
        assert_eq!(expr, "INSERT(STRING(:), START())");
    }

    #[test]
    fn quotes_literals_when_configured() {
        let d = domain(true);
        let cgt = build_cgt(&d, &[("INSERT", "STRING")], "INSERT");
        let mut pool = LiteralPool::new();
        pool.bind(d.graph().api_node("STRING").unwrap(), "PI".to_string());
        let expr = render_expression(&d, &cgt, &mut pool).unwrap();
        assert_eq!(expr, "INSERT(STRING(\"PI\"))");
    }

    #[test]
    fn repeated_child_occurrence_renders_twice() {
        let d = domain(false);
        let cgt = build_cgt(&d, &[("REPLACE", "STRING")], "REPLACE");
        let mut pool = LiteralPool::new();
        let string = d.graph().api_node("STRING").unwrap();
        pool.bind(string, "a".to_string());
        pool.bind(string, "b".to_string());
        let expr = render_expression(&d, &cgt, &mut pool).unwrap();
        assert_eq!(expr, "REPLACE(STRING(a), STRING(b))");
    }

    #[test]
    fn unfilled_slot_renders_empty() {
        let d = domain(false);
        let cgt = build_cgt(&d, &[("INSERT", "STRING")], "INSERT");
        let mut pool = LiteralPool::new();
        let expr = render_expression(&d, &cgt, &mut pool).unwrap();
        assert_eq!(expr, "INSERT(STRING())");
    }

    #[test]
    fn fallback_literals_fill_in_order() {
        let d = domain(false);
        let cgt = build_cgt(&d, &[("REPLACE", "STRING")], "REPLACE");
        let mut pool = LiteralPool::new();
        pool.push_fallback("x".to_string());
        pool.push_fallback("y".to_string());
        let expr = render_expression(&d, &cgt, &mut pool).unwrap();
        assert_eq!(expr, "REPLACE(STRING(x), STRING(y))");
    }

    #[test]
    fn empty_cgt_renders_none() {
        let d = domain(false);
        let mut pool = LiteralPool::new();
        assert_eq!(render_expression(&d, &Cgt::new(), &mut pool), None);
    }

    #[test]
    fn unmentioned_argument_subtrees_are_omitted() {
        let d = domain(false);
        // Only INSERT -> STRING; `pos` is unmentioned.
        let cgt = build_cgt(&d, &[("INSERT", "STRING")], "INSERT");
        let mut pool = LiteralPool::new();
        pool.bind(d.graph().api_node("STRING").unwrap(), ":".to_string());
        let expr = render_expression(&d, &cgt, &mut pool).unwrap();
        assert_eq!(expr, "INSERT(STRING(:))");
    }
}
