//! Shared engine types: search results and wall-clock deadlines.

use std::time::{Duration, Instant};

use nlquery_grammar::{NodeId, SearchDeadline};

use crate::Cgt;

/// The best code generation tree found by an engine, with the query-node →
//  API assignment needed for literal binding.
#[derive(Debug, Clone, PartialEq)]
pub struct BestCgt {
    /// The merged tree.
    pub cgt: Cgt,
    /// Its API count (the minimized objective).
    pub size: usize,
    /// Which API node each query node ended up mapped to.
    pub assignment: Vec<(usize, NodeId)>,
    /// Which grammar *occurrence* (derivation → API edge) each query node
    /// claimed — the key for binding the node's literal to the right slot
    /// when one API serves several argument positions.
    pub node_claims: Vec<(usize, (NodeId, NodeId))>,
}

/// Signal: the wall-clock budget ran out mid-search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOut;

/// A wall-clock deadline checked inside hot loops.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
}

impl Deadline {
    /// Starts a deadline `budget` from now.
    pub fn new(budget: Duration) -> Deadline {
        Deadline {
            start: Instant::now(),
            budget,
        }
    }

    /// Whether the budget is exhausted.
    pub fn expired(&self) -> bool {
        self.start.elapsed() >= self.budget
    }

    /// Time since the deadline started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Returns `Err(TimedOut)` when expired — convenient with `?`.
    pub fn check(&self) -> Result<(), TimedOut> {
        if self.expired() {
            Err(TimedOut)
        } else {
            Ok(())
        }
    }

    /// The absolute instant the budget runs out, or `None` when it is not
    /// representable (e.g. a `Duration::MAX` budget) — in which case the
    /// deadline is effectively unbounded.
    pub fn expires_at(&self) -> Option<Instant> {
        self.start.checked_add(self.budget)
    }

    /// A [`SearchDeadline`] covering this deadline's remaining budget, for
    /// handing into the grammar crate's bounded all-path search.
    pub fn search_deadline(&self) -> SearchDeadline {
        SearchDeadline::until(self.expires_at())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_not_expired() {
        let d = Deadline::new(Duration::from_secs(60));
        assert!(!d.expired());
        assert!(d.check().is_ok());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::new(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.check(), Err(TimedOut));
    }

    #[test]
    fn elapsed_grows() {
        let d = Deadline::new(Duration::from_secs(1));
        let a = d.elapsed();
        let b = d.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn max_budget_has_no_expiry_instant() {
        let d = Deadline::new(Duration::MAX);
        assert_eq!(d.expires_at(), None);
        assert!(d.search_deadline().is_unbounded());
    }

    #[test]
    fn finite_budget_has_expiry_instant() {
        let d = Deadline::new(Duration::from_secs(5));
        assert!(d.expires_at().is_some());
        assert!(!d.search_deadline().is_unbounded());
    }
}
