//! Shared engine types: search results and wall-clock deadlines.

use std::time::{Duration, Instant};

use nlquery_grammar::NodeId;

use crate::Cgt;

/// The best code generation tree found by an engine, with the query-node →
//  API assignment needed for literal binding.
#[derive(Debug, Clone, PartialEq)]
pub struct BestCgt {
    /// The merged tree.
    pub cgt: Cgt,
    /// Its API count (the minimized objective).
    pub size: usize,
    /// Which API node each query node ended up mapped to.
    pub assignment: Vec<(usize, NodeId)>,
    /// Which grammar *occurrence* (derivation → API edge) each query node
    /// claimed — the key for binding the node's literal to the right slot
    /// when one API serves several argument positions.
    pub node_claims: Vec<(usize, (NodeId, NodeId))>,
}

/// Signal: the wall-clock budget ran out mid-search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOut;

/// A wall-clock deadline checked inside hot loops.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
}

impl Deadline {
    /// Starts a deadline `budget` from now.
    pub fn new(budget: Duration) -> Deadline {
        Deadline {
            start: Instant::now(),
            budget,
        }
    }

    /// Whether the budget is exhausted.
    pub fn expired(&self) -> bool {
        self.start.elapsed() >= self.budget
    }

    /// Time since the deadline started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Returns `Err(TimedOut)` when expired — convenient with `?`.
    pub fn check(&self) -> Result<(), TimedOut> {
        if self.expired() {
            Err(TimedOut)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_not_expired() {
        let d = Deadline::new(Duration::from_secs(60));
        assert!(!d.expired());
        assert!(d.check().is_ok());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::new(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.check(), Err(TimedOut));
    }

    #[test]
    fn elapsed_grows() {
        let d = Deadline::new(Duration::from_secs(1));
        let a = d.elapsed();
        let b = d.elapsed();
        assert!(b >= a);
    }
}
