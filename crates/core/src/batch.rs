//! Concurrent batch synthesis for one domain.
//!
//! [`BatchEngine`] synthesizes a slice of queries on a **resident**
//! std-only worker pool — it is a thin batch-shaped facade over
//! [`ServiceEngine`](crate::ServiceEngine), which owns the long-lived
//! workers and the cross-query [`SharedPathCache`]. Each worker pops from
//! its own deque and steals from the back of its neighbours' deques when
//! its own runs dry; all workers share one memo cache, so structurally
//! repeated EdgeToPath searches — common in corpora where many queries
//! exercise the same API neighbourhoods — resolve from the memo instead
//! of re-searching the grammar graph.
//!
//! Results are written back by input index, so a batch is **bit-identical**
//! to running [`Synthesizer::synthesize`] sequentially on each query, at
//! any worker count (timings and memo counters aside).
//!
//! # Fault isolation
//!
//! One query must never take the batch down. Each query's synthesis runs
//! under [`std::panic::catch_unwind`]; a panic becomes an
//! [`Outcome::Panicked`] result carrying the panic message as
//! [`crate::SynthesisError::Panicked`], and the worker moves on to its
//! next query — resident workers **survive** panics rather than being
//! respawned. Pool locks recover from poisoning, so one faulted batch
//! never wedges the next. Tests inject faults deterministically via
//! [`BatchEngine::set_fault_hook`].
//!
//! ```rust
//! use nlquery_core::{BatchEngine, Domain, SynthesisConfig};
//! use nlquery_grammar::GrammarGraph;
//! use nlquery_nlp::ApiDoc;
//!
//! let graph = GrammarGraph::parse("command ::= DELETE entity\nentity ::= WORD")?;
//! let domain = Domain::builder("mini")
//!     .graph(graph)
//!     .docs(vec![
//!         ApiDoc::new("DELETE", &["delete"], "deletes an entity", 0),
//!         ApiDoc::new("WORD", &["word"], "a word", 0),
//!     ])
//!     .build()?;
//! let engine = BatchEngine::new(domain, SynthesisConfig::default());
//! let report = engine.synthesize_batch(&["delete the word", "delete a word"]);
//! assert_eq!(report.results.len(), 2);
//! assert!(report.stats.cache.hits > 0, "second query reuses the memo");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::memo::{CacheStats, SharedPathCache};
use crate::merge_memo::MergeMemo;
use crate::pipeline::{Outcome, Synthesis, Synthesizer};
use crate::service::{JobSpec, ServiceEngine};
use crate::{Domain, SynthesisConfig};

pub use crate::service::{Fault, WorkerStats};

/// Signature of a fault injector: `(input index, query) -> fault?`.
type FaultFn = dyn Fn(usize, &str) -> Option<Fault> + Send + Sync;

/// The injector behind [`BatchEngine::set_fault_hook`], wrapped so
/// [`BatchEngine`] keeps deriving `Debug`.
#[derive(Clone)]
struct FaultHook(Arc<FaultFn>);

impl std::fmt::Debug for FaultHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FaultHook(..)")
    }
}

/// Tuning knobs of a [`BatchEngine`] (and of the underlying
/// [`ServiceEngine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// Worker threads; 0 means `std::thread::available_parallelism()`.
    pub workers: usize,
    /// LRU capacity (entries) of the shared EdgeToPath memo cache.
    pub cache_capacity: usize,
    /// Lock shards of the shared memo cache; 0 means
    /// [`crate::memo::DEFAULT_SHARDS`].
    pub cache_shards: usize,
    /// Group queries whose pruned graphs request the same EdgeToPath memo
    /// keys onto one worker (cold-pass locality: the group's first query
    /// computes, the rest hit the shard without blocking). Costs one cheap
    /// parse+prune pass over the batch before workers start.
    pub co_schedule: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            workers: 0,
            cache_capacity: 4096,
            cache_shards: 0,
            co_schedule: true,
        }
    }
}

/// Aggregate statistics of one batch run.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Queries in the batch.
    pub total: usize,
    /// Runs that produced an expression.
    pub successes: usize,
    /// Runs that hit the wall-clock budget.
    pub timeouts: usize,
    /// Runs with no usable dependency structure.
    pub no_parse: usize,
    /// Runs that finished without a valid tree.
    pub no_result: usize,
    /// Runs that panicked; the panic was caught and isolated to that
    /// query's result ([`Outcome::Panicked`]).
    pub panics: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Sum of per-query synthesis times (≈ CPU time across workers).
    pub cpu: Duration,
    /// Summed per-stage durations across all queries.
    pub t_parse: Duration,
    /// Summed pruning time.
    pub t_prune: Duration,
    /// Summed WordToAPI time.
    pub t_word2api: Duration,
    /// Summed EdgeToPath time.
    pub t_edge2path: Duration,
    /// Summed merge/DP time.
    pub t_merge: Duration,
    /// Summed expression-rendering time.
    pub t_print: Duration,
    /// Shared memo-cache activity **of this batch** (counter deltas between
    /// batch start and end; the `entries`/`capacity`/`shards` gauges are
    /// absolute). The cache itself persists across batches — see
    /// [`BatchEngine::cache`] for cumulative counters. On an engine whose
    /// [`ServiceEngine`] is serving other submissions concurrently, the
    /// delta includes their activity too.
    pub cache: CacheStats,
    /// Cross-query merge-memo activity **of this batch** (counter deltas,
    /// same window semantics as [`BatchStats::cache`]). The memo persists
    /// across batches — see [`BatchEngine::merge_memo`] for cumulative
    /// counters.
    pub merge: CacheStats,
    /// Per-worker utilization, indexed by worker id.
    pub workers: Vec<WorkerStats>,
}

impl BatchStats {
    /// Synthesized queries per wall-clock second.
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total as f64 / secs
        } else {
            0.0
        }
    }

    /// Mean worker utilization: busy time over `workers × wall`, in 0..=1.
    pub fn worker_utilization(&self) -> f64 {
        let denom = self.wall.as_secs_f64() * self.workers.len() as f64;
        if denom > 0.0 {
            (self
                .workers
                .iter()
                .map(|w| w.busy.as_secs_f64())
                .sum::<f64>()
                / denom)
                .min(1.0)
        } else {
            0.0
        }
    }
}

/// The outcome of one batch: per-query results (input order) plus
/// aggregate statistics.
#[derive(Debug)]
pub struct BatchReport {
    /// One [`Synthesis`] per input query, in input order.
    pub results: Vec<Synthesis>,
    /// Aggregate counters.
    pub stats: BatchStats,
}

/// A concurrent batch synthesizer for one domain.
///
/// The engine owns a resident [`ServiceEngine`] — a [`Synthesizer`], a
/// persistent worker pool, and a [`SharedPathCache`] that all persist
/// across [`BatchEngine::synthesize_batch`] calls — repeated batches over
/// structurally similar queries get warmer and warmer, and thread spawn
/// is paid once at construction rather than per batch.
#[derive(Debug)]
pub struct BatchEngine {
    service: ServiceEngine,
    fault_hook: Option<FaultHook>,
}

impl BatchEngine {
    /// Creates an engine with default [`BatchOptions`].
    pub fn new(domain: Domain, config: SynthesisConfig) -> BatchEngine {
        BatchEngine::with_options(domain, config, BatchOptions::default())
    }

    /// Creates an engine with explicit worker count and cache capacity.
    pub fn with_options(
        domain: Domain,
        config: SynthesisConfig,
        options: BatchOptions,
    ) -> BatchEngine {
        BatchEngine {
            service: ServiceEngine::with_options(domain, config, options),
            fault_hook: None,
        }
    }

    /// Registers a per-query fault injector, consulted with the query's
    /// input index and text as each batch is submitted. Returning a
    /// [`Fault`] makes that query panic or run under an alternate
    /// configuration; `None` leaves it untouched. For fault-injection
    /// tests — production batches should not set a hook.
    pub fn set_fault_hook<F>(&mut self, hook: F)
    where
        F: Fn(usize, &str) -> Option<Fault> + Send + Sync + 'static,
    {
        self.fault_hook = Some(FaultHook(Arc::new(hook)));
    }

    /// The underlying sequential synthesizer.
    pub fn synthesizer(&self) -> &Synthesizer {
        self.service.synthesizer()
    }

    /// The resident engine backing this batch facade.
    pub fn service(&self) -> &ServiceEngine {
        &self.service
    }

    /// The cross-query memo cache (shared across batches and workers).
    pub fn cache(&self) -> &Arc<SharedPathCache> {
        self.service.cache()
    }

    /// The cross-query merge memo (shared across batches and workers).
    pub fn merge_memo(&self) -> &Arc<MergeMemo> {
        self.service.merge_memo()
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.service.workers()
    }

    /// Synthesizes every query concurrently; results come back in input
    /// order and are identical to sequential [`Synthesizer::synthesize`]
    /// output at any worker count.
    pub fn synthesize_batch<S: AsRef<str> + Sync>(&self, queries: &[S]) -> BatchReport {
        let started = Instant::now();
        let cache_before = self.service.cache().stats();
        let merge_before = self.service.merge_memo().stats();
        let jobs: Vec<JobSpec> = queries
            .iter()
            .enumerate()
            .map(|(index, query)| {
                let query = query.as_ref();
                JobSpec {
                    query: query.to_string(),
                    config: None,
                    fault: self
                        .fault_hook
                        .as_ref()
                        .and_then(|hook| (hook.0)(index, query)),
                }
            })
            .collect();
        let report = self.service.submit(jobs).wait();

        let mut stats = BatchStats {
            total: report.results.len(),
            wall: started.elapsed(),
            cache: self.service.cache().stats().delta_since(&cache_before),
            merge: self.service.merge_memo().stats().delta_since(&merge_before),
            workers: report.workers,
            ..BatchStats::default()
        };
        for r in &report.results {
            match r.outcome {
                Outcome::Success => stats.successes += 1,
                Outcome::Timeout => stats.timeouts += 1,
                Outcome::NoParse => stats.no_parse += 1,
                Outcome::NoResult => stats.no_result += 1,
                Outcome::Panicked => stats.panics += 1,
            }
            stats.cpu += r.elapsed;
            stats.t_parse += r.stats.t_parse;
            stats.t_prune += r.stats.t_prune;
            stats.t_word2api += r.stats.t_word2api;
            stats.t_edge2path += r.stats.t_edge2path;
            stats.t_merge += r.stats.t_merge;
            stats.t_print += r.stats.t_print;
        }
        BatchReport {
            results: report.results,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlquery_grammar::GrammarGraph;
    use nlquery_nlp::ApiDoc;

    fn domain() -> Domain {
        let graph = GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg | DELETE delete_arg
            insert_arg ::= string pos
            delete_arg ::= entity
            string     ::= STRING
            entity     ::= STRING | WORDTOKEN
            pos        ::= START | END
            "#,
        )
        .unwrap();
        Domain::builder("batch-mini")
            .graph(graph)
            .docs(vec![
                ApiDoc::new("INSERT", &["insert"], "inserts a string at a position", 0),
                ApiDoc::new("DELETE", &["delete"], "deletes an entity", 0),
                ApiDoc::new("STRING", &["string"], "a string constant", 1),
                ApiDoc::new("WORDTOKEN", &["word"], "a word token", 0),
                ApiDoc::new("START", &["start"], "the start", 0),
                ApiDoc::new("END", &["end"], "the end", 0),
            ])
            .literal_api("STRING")
            .build()
            .unwrap()
    }

    const QUERIES: [&str; 6] = [
        "insert \":\" at the start",
        "delete the word",
        "insert \"-\" at the end",
        "delete every word",
        "insert \"#\" at the start",
        "",
    ];

    #[test]
    fn batch_matches_sequential_at_any_worker_count() {
        let d = domain();
        let sequential = Synthesizer::new(d.clone(), SynthesisConfig::default());
        let expected: Vec<_> = QUERIES.iter().map(|q| sequential.synthesize(q)).collect();
        for workers in [1, 2, 3, 8] {
            let engine = BatchEngine::with_options(
                d.clone(),
                SynthesisConfig::default(),
                BatchOptions {
                    workers,
                    cache_capacity: 64,
                    ..BatchOptions::default()
                },
            );
            let report = engine.synthesize_batch(&QUERIES);
            assert_eq!(report.results.len(), expected.len());
            for (got, want) in report.results.iter().zip(&expected) {
                assert_eq!(got.outcome, want.outcome, "workers={workers}");
                assert_eq!(got.expression, want.expression, "workers={workers}");
            }
        }
    }

    #[test]
    fn repeated_structure_hits_cache() {
        let engine = BatchEngine::with_options(
            domain(),
            SynthesisConfig::default(),
            BatchOptions {
                workers: 2,
                cache_capacity: 64,
                ..BatchOptions::default()
            },
        );
        let report = engine.synthesize_batch(&QUERIES);
        assert!(
            report.stats.cache.hits > 0,
            "structurally repeated queries must hit: {:?}",
            report.stats.cache
        );
        // Per-query memo counters surface through SynthesisStats too.
        let memo_total: u64 = report
            .results
            .iter()
            .map(|r| r.stats.memo_hits + r.stats.memo_misses + r.stats.memo_dedup_waits)
            .sum();
        assert_eq!(memo_total, report.stats.cache.lookups());
    }

    #[test]
    fn outcome_counters_add_up() {
        let engine = BatchEngine::new(domain(), SynthesisConfig::default());
        let report = engine.synthesize_batch(&QUERIES);
        let s = &report.stats;
        assert_eq!(s.total, QUERIES.len());
        assert_eq!(
            s.successes + s.timeouts + s.no_parse + s.no_result + s.panics,
            s.total
        );
        assert!(s.no_parse >= 1, "the empty query cannot parse");
        assert!(s.successes >= 4, "{s:?}");
        assert!(s.wall > Duration::ZERO);
        assert!(s.cpu >= s.wall / 2, "cpu aggregates per-query time");
    }

    #[test]
    fn worker_stats_cover_all_queries() {
        let engine = BatchEngine::with_options(
            domain(),
            SynthesisConfig::default(),
            BatchOptions {
                workers: 3,
                cache_capacity: 64,
                ..BatchOptions::default()
            },
        );
        let report = engine.synthesize_batch(&QUERIES);
        assert_eq!(report.stats.workers.len(), 3);
        let worked: usize = report.stats.workers.iter().map(|w| w.queries).sum();
        assert_eq!(worked, QUERIES.len());
        let utilization = report.stats.worker_utilization();
        assert!((0.0..=1.0).contains(&utilization));
    }

    #[test]
    fn empty_batch_is_empty_report() {
        let engine = BatchEngine::new(domain(), SynthesisConfig::default());
        let report = engine.synthesize_batch::<&str>(&[]);
        assert!(report.results.is_empty());
        assert_eq!(report.stats.total, 0);
        assert_eq!(report.stats.queries_per_sec(), 0.0);
    }

    #[test]
    fn more_workers_than_queries_is_fine() {
        let engine = BatchEngine::with_options(
            domain(),
            SynthesisConfig::default(),
            BatchOptions {
                workers: 64,
                cache_capacity: 64,
                ..BatchOptions::default()
            },
        );
        let report = engine.synthesize_batch(&["delete the word"]);
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.stats.workers.len(), 1, "pool clamps to batch size");
    }

    #[test]
    fn cache_persists_across_batches() {
        let engine = BatchEngine::new(domain(), SynthesisConfig::default());
        let first = engine.synthesize_batch(&QUERIES);
        let second = engine.synthesize_batch(&QUERIES);
        // Stats are per-batch deltas: the first batch pays the misses, the
        // second resolves every lookup from the warm cache.
        assert!(first.stats.cache.misses > 0, "{:?}", first.stats.cache);
        assert_eq!(
            second.stats.cache.misses, 0,
            "warm batch recomputes nothing: {:?}",
            second.stats.cache
        );
        assert!(second.stats.cache.hits > 0, "{:?}", second.stats.cache);
        // The merge memo warms the same way: the first batch pays the
        // run-level misses, the second replays them as hits.
        assert!(first.stats.merge.misses > 0, "{:?}", first.stats.merge);
        assert_eq!(
            second.stats.merge.misses, 0,
            "warm batch re-merges nothing: {:?}",
            second.stats.merge
        );
        assert!(second.stats.merge.hits > 0, "{:?}", second.stats.merge);
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(a.expression, b.expression);
        }
    }

    #[test]
    fn injected_panic_is_isolated_to_its_query() {
        let d = domain();
        let sequential = Synthesizer::new(d.clone(), SynthesisConfig::default());
        let expected: Vec<_> = QUERIES.iter().map(|q| sequential.synthesize(q)).collect();
        for workers in [1, 2, 4] {
            let mut engine = BatchEngine::with_options(
                d.clone(),
                SynthesisConfig::default(),
                BatchOptions {
                    workers,
                    cache_capacity: 64,
                    ..BatchOptions::default()
                },
            );
            engine.set_fault_hook(|index, _query| {
                (index == 1).then(|| Fault::Panic("injected fault".to_string()))
            });
            let report = engine.synthesize_batch(&QUERIES);
            assert_eq!(report.results.len(), QUERIES.len());
            assert_eq!(report.results[1].outcome, Outcome::Panicked);
            assert_eq!(
                report.results[1].error,
                Some(crate::SynthesisError::Panicked {
                    message: "injected fault".to_string()
                })
            );
            assert_eq!(report.stats.panics, 1, "workers={workers}");
            let s = &report.stats;
            assert_eq!(
                s.successes + s.timeouts + s.no_parse + s.no_result + s.panics,
                s.total
            );
            for (i, (got, want)) in report.results.iter().zip(&expected).enumerate() {
                if i == 1 {
                    continue;
                }
                assert_eq!(got.outcome, want.outcome, "workers={workers} query={i}");
                assert_eq!(
                    got.expression, want.expression,
                    "workers={workers} query={i}"
                );
            }
        }
    }

    #[test]
    fn injected_config_overrides_one_query() {
        let mut engine = BatchEngine::new(domain(), SynthesisConfig::default());
        engine.set_fault_hook(|index, _query| {
            (index == 0).then(|| Fault::Config(SynthesisConfig::default().deadline(Duration::ZERO)))
        });
        let report = engine.synthesize_batch(&QUERIES);
        assert_eq!(report.results[0].outcome, Outcome::Timeout);
        assert_eq!(
            report.results[0].error,
            Some(crate::SynthesisError::DeadlineExceeded)
        );
        // The rest run under the engine's own (unbounded-enough) config.
        assert!(report.stats.successes >= 4, "{:?}", report.stats);
    }

    #[test]
    fn batch_survives_repeated_panics_across_batches() {
        // Poisoned state (shared cache, deques) from one faulted batch must
        // not leak into the next: the engine stays usable.
        let mut engine = BatchEngine::with_options(
            domain(),
            SynthesisConfig::default(),
            BatchOptions {
                workers: 2,
                cache_capacity: 64,
                ..BatchOptions::default()
            },
        );
        engine.set_fault_hook(|_, query| {
            query
                .contains("every")
                .then(|| Fault::Panic("chaos".to_string()))
        });
        let first = engine.synthesize_batch(&QUERIES);
        let second = engine.synthesize_batch(&QUERIES);
        assert_eq!(first.stats.panics, 1);
        assert_eq!(second.stats.panics, 1);
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.expression, b.expression);
        }
    }
}
