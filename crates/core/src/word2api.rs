//! Step 3 — WordToAPI: map each query node to candidate APIs.
//!
//! Single words go straight through the [`SemanticMatcher`]. Multi-word
//! phrases (merged compounds like "constructor expressions") score each API
//! by the *mean* of its per-word scores, so an API whose keywords cover the
//! whole phrase (e.g. `cxxConstructExpr`) dominates partial matches
//! (e.g. `callExpr`).

use nlquery_nlp::{ApiCandidate, SemanticMatcher};

/// The WordToAPI map: candidate APIs per query-graph node, ranked by
/// descending score.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WordToApi {
    /// `candidates[node id]` — the ranked candidates of that node.
    pub candidates: Vec<Vec<ApiCandidate>>,
}

impl WordToApi {
    /// The candidates of node `id` (empty slice when out of range).
    pub fn of(&self, id: usize) -> &[ApiCandidate] {
        self.candidates.get(id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether node `id` has at least one candidate.
    pub fn has_candidates(&self, id: usize) -> bool {
        !self.of(id).is_empty()
    }
}

/// Width of the internal per-word candidate pool used before phrase
/// combination.
const POOL: usize = 24;

/// Scores the candidate APIs of a (possibly multi-word) phrase.
///
/// Returns candidates sorted by descending score, capped at `k`, filtered
/// at `min_score`.
pub fn phrase_candidates(
    matcher: &SemanticMatcher,
    words: &[String],
    k: usize,
    min_score: f64,
) -> Vec<ApiCandidate> {
    match words {
        [] => Vec::new(),
        [w] => matcher.candidates(w, k, min_score),
        _ => {
            let mut scores: std::collections::BTreeMap<String, (f64, usize)> =
                std::collections::BTreeMap::new();
            for w in words {
                for c in matcher.candidates(w, POOL, 0.0) {
                    let entry = scores.entry(c.api).or_insert((0.0, 0));
                    entry.0 += c.score;
                    entry.1 += 1;
                }
            }
            let n = words.len() as f64;
            let mut ranked: Vec<ApiCandidate> = scores
                .into_iter()
                .map(|(api, (sum, _covered))| ApiCandidate {
                    api,
                    score: sum / n,
                })
                .filter(|c| c.score >= min_score)
                .collect();
            ranked.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .expect("scores are finite")
                    .then_with(|| a.api.cmp(&b.api))
            });
            ranked.truncate(k);
            ranked
        }
    }
}

/// Per-word score below which a hit does not count toward full coverage:
/// description-only hits (≈ 0.35) must not let "virtual method" merge into
/// `isVirtual` just because its description mentions methods.
const COVERAGE_MIN_WORD_SCORE: f64 = 0.5;

/// The best score an API reaches where **every** word of the phrase
/// contributes a keyword-strength score — the signal used to decide
/// whether to merge a compound into one node.
pub fn full_coverage_score(matcher: &SemanticMatcher, words: &[String]) -> Option<(String, f64)> {
    if words.is_empty() {
        return None;
    }
    let mut scores: std::collections::BTreeMap<String, (f64, usize)> =
        std::collections::BTreeMap::new();
    for w in words {
        for c in matcher.candidates(w, POOL, COVERAGE_MIN_WORD_SCORE) {
            let entry = scores.entry(c.api).or_insert((0.0, 0));
            entry.0 += c.score;
            entry.1 += 1;
        }
    }
    let n = words.len();
    scores
        .into_iter()
        .filter(|(_, (_, covered))| *covered == n)
        .map(|(api, (sum, _))| (api, sum / n as f64))
        .max_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("scores are finite")
                .then_with(|| b.0.cmp(&a.0))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlquery_nlp::{ApiDoc, SynonymLexicon};

    fn matcher() -> SemanticMatcher {
        SemanticMatcher::new(
            vec![
                ApiDoc::new(
                    "cxxConstructExpr",
                    &["cxx", "constructor", "expression"],
                    "matches c++ constructor call expressions",
                    0,
                ),
                ApiDoc::new(
                    "callExpr",
                    &["call", "expression"],
                    "matches call expressions",
                    0,
                ),
                ApiDoc::new("hasName", &["name"], "matches a declaration by name", 1),
            ],
            SynonymLexicon::new(),
        )
    }

    fn words(ws: &[&str]) -> Vec<String> {
        ws.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn single_word_passthrough() {
        let m = matcher();
        let c = phrase_candidates(&m, &words(&["name"]), 4, 0.3);
        assert_eq!(c[0].api, "hasName");
    }

    #[test]
    fn phrase_prefers_full_coverage() {
        let m = matcher();
        let c = phrase_candidates(&m, &words(&["constructor", "expressions"]), 4, 0.3);
        assert_eq!(c[0].api, "cxxConstructExpr", "{c:?}");
        // callExpr only covers "expressions".
        let call = c.iter().find(|c| c.api == "callExpr");
        assert!(call.is_none_or(|c| c.score < 0.9));
    }

    #[test]
    fn full_coverage_score_requires_all_words() {
        let m = matcher();
        let best = full_coverage_score(&m, &words(&["constructor", "expressions"])).unwrap();
        assert_eq!(best.0, "cxxConstructExpr");
        assert!(best.1 >= 0.7);
        // "purple expressions": no API covers "purple".
        assert!(full_coverage_score(&m, &words(&["purple", "expressions"])).is_none());
    }

    #[test]
    fn empty_phrase_has_no_candidates() {
        let m = matcher();
        assert!(phrase_candidates(&m, &[], 4, 0.3).is_empty());
        assert!(full_coverage_score(&m, &[]).is_none());
    }

    #[test]
    fn word_to_api_accessors() {
        let map = WordToApi {
            candidates: vec![
                vec![ApiCandidate {
                    api: "X".into(),
                    score: 1.0,
                }],
                vec![],
            ],
        };
        assert!(map.has_candidates(0));
        assert!(!map.has_candidates(1));
        assert!(map.of(99).is_empty());
    }
}
