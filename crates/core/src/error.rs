//! Synthesis error type.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the synthesis pipeline.
///
/// A timeout is *not* an error here — the pipeline reports it through
/// [`crate::Outcome::Timeout`] together with its statistics, because the
/// paper's evaluation counts timeouts as wrong-but-measured cases.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// The domain definition is inconsistent (e.g. documentation names an
    /// API missing from the grammar).
    InvalidDomain {
        /// Description of the inconsistency.
        message: String,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::InvalidDomain { message } => {
                write!(f, "invalid domain definition: {message}")
            }
        }
    }
}

impl Error for SynthesisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SynthesisError::InvalidDomain {
            message: "API `FOO` not in grammar".to_string(),
        };
        assert!(e.to_string().contains("FOO"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SynthesisError>();
    }
}
