//! Synthesis error taxonomy.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the synthesis pipeline.
///
/// Every way a query can fail is a *value* of this enum, never a process
/// event: a [`crate::Synthesis`] carries the variant in its `error` field
/// alongside the coarse [`crate::Outcome`], so batch callers can tally and
/// route failures without parsing panics out of worker threads.
///
/// The [`Outcome`](crate::Outcome) → `SynthesisError` mapping is:
/// `Timeout` ↔ [`DeadlineExceeded`](SynthesisError::DeadlineExceeded),
/// `NoParse` ↔ [`NoParse`](SynthesisError::NoParse), `NoResult` ↔
/// [`NoApiCandidates`](SynthesisError::NoApiCandidates) or
/// [`NoGrammarPath`](SynthesisError::NoGrammarPath), and `Panicked` ↔
/// [`Panicked`](SynthesisError::Panicked) (only ever produced by the batch
/// engine's fault isolation, never by a sequential run).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// The domain definition is inconsistent (e.g. documentation names an
    /// API missing from the grammar).
    InvalidDomain {
        /// Description of the inconsistency.
        message: String,
    },
    /// The dependency parser produced no usable query graph (empty,
    /// whitespace-only, or otherwise unparseable input).
    NoParse,
    /// The query parsed, but no word matched any documented API above the
    /// configured score floor — step 3 (WordToAPI) came back empty.
    NoApiCandidates,
    /// API candidates existed, but no combination of grammar paths merged
    /// into a valid code generation tree (steps 4–6 produced nothing).
    NoGrammarPath,
    /// The per-query deadline ([`crate::SynthesisConfig::deadline`]) expired
    /// before a result was found.
    DeadlineExceeded,
    /// Synthesis of this query panicked on a batch worker; the panic was
    /// caught and converted into this value so it costs exactly one result.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::InvalidDomain { message } => {
                write!(f, "invalid domain definition: {message}")
            }
            SynthesisError::NoParse => write!(f, "query did not parse into a query graph"),
            SynthesisError::NoApiCandidates => {
                write!(f, "no API candidates matched any query word")
            }
            SynthesisError::NoGrammarPath => {
                write!(f, "no grammar-path combination merged into a valid tree")
            }
            SynthesisError::DeadlineExceeded => write!(f, "per-query deadline exceeded"),
            SynthesisError::Panicked { message } => {
                write!(f, "synthesis panicked: {message}")
            }
        }
    }
}

impl Error for SynthesisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SynthesisError::InvalidDomain {
            message: "API `FOO` not in grammar".to_string(),
        };
        assert!(e.to_string().contains("FOO"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SynthesisError>();
    }

    #[test]
    fn taxonomy_displays_are_distinct() {
        let variants = [
            SynthesisError::NoParse,
            SynthesisError::NoApiCandidates,
            SynthesisError::NoGrammarPath,
            SynthesisError::DeadlineExceeded,
            SynthesisError::Panicked {
                message: "boom".to_string(),
            },
        ];
        let rendered: Vec<String> = variants.iter().map(|e| e.to_string()).collect();
        for (i, a) in rendered.iter().enumerate() {
            assert!(!a.is_empty());
            for b in &rendered[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert!(rendered[4].contains("boom"));
    }
}
