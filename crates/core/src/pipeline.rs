//! The six-step synthesis pipeline.

use std::sync::Arc;
use std::time::{Duration, Instant};

use nlquery_nlp::DepParser;

use crate::engine::{BestCgt, Deadline};
use crate::expr::{render_expression, LiteralPool};
use crate::memo::SharedPathCache;
use crate::merge_memo::MergeMemo;
use crate::opt::orphan::relocation_variants;
use crate::{
    dggt, edge2path, hisyn, prune, Cgt, Domain, EdgeToPath, Engine, QueryGraph, SynthesisConfig,
    SynthesisError, SynthesisStats, WordToApi,
};

/// How a synthesis run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A codelet was produced.
    Success,
    /// The wall-clock budget ([`SynthesisConfig::deadline`]) expired
    /// (counted as an error in the paper's accuracy metric).
    Timeout,
    /// The query produced no usable dependency structure.
    NoParse,
    /// The search finished but found no valid code generation tree.
    NoResult,
    /// Synthesis panicked on a batch worker; the panic was caught and
    /// isolated to this result. Never produced by a sequential run.
    Panicked,
}

/// The result of synthesizing one query.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// How the run ended.
    pub outcome: Outcome,
    /// The synthesized DSL expression (on [`Outcome::Success`]).
    pub expression: Option<String>,
    /// The winning code generation tree.
    pub cgt: Option<Cgt>,
    /// Instrumentation counters.
    pub stats: SynthesisStats,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// The structured failure, `None` on [`Outcome::Success`]. Always
    /// populated for the other outcomes — failure is a value, not a process
    /// event, so callers can tally and route it without string matching.
    pub error: Option<SynthesisError>,
}

impl Synthesis {
    /// A result carrying no tree: every non-success pipeline exit plus the
    /// batch engine's fault placeholders.
    fn failure(
        outcome: Outcome,
        error: SynthesisError,
        stats: SynthesisStats,
        elapsed: Duration,
    ) -> Synthesis {
        Synthesis {
            outcome,
            expression: None,
            cgt: None,
            stats,
            elapsed,
            error: Some(error),
        }
    }

    /// The batch engine's fault placeholder for a query whose synthesis
    /// panicked (or whose worker died before reporting).
    pub(crate) fn panicked(message: String, elapsed: Duration) -> Synthesis {
        Synthesis::failure(
            Outcome::Panicked,
            SynthesisError::Panicked { message },
            SynthesisStats::default(),
            elapsed,
        )
    }
}

/// An NLU-driven synthesizer for one domain.
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug, Clone)]
pub struct Synthesizer {
    domain: Domain,
    config: SynthesisConfig,
    parser: DepParser,
}

impl Synthesizer {
    /// Creates a synthesizer.
    pub fn new(domain: Domain, config: SynthesisConfig) -> Synthesizer {
        Synthesizer {
            domain,
            config,
            parser: DepParser::new(),
        }
    }

    /// The target domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Replaces the configuration (e.g. to switch engines between runs).
    pub fn set_config(&mut self, config: SynthesisConfig) {
        self.config = config;
    }

    /// Runs the full pipeline on a natural-language query.
    pub fn synthesize(&self, query: &str) -> Synthesis {
        let mut cache = edge2path::PathCache::new();
        self.synthesize_with(query, &mut cache, None)
    }

    /// [`Synthesizer::synthesize`] backed by a cross-query
    /// [`SharedPathCache`]: EdgeToPath searches whose candidate sets were
    /// already resolved — by an earlier query, or concurrently by another
    /// worker of a [`crate::BatchEngine`] — are served from the memo. The
    /// result is identical to [`Synthesizer::synthesize`]; only
    /// [`SynthesisStats::memo_hits`] / [`SynthesisStats::memo_misses`] and
    /// the timings differ.
    pub fn synthesize_shared(&self, query: &str, shared: &Arc<SharedPathCache>) -> Synthesis {
        let mut cache = edge2path::PathCache::with_shared(Arc::clone(shared));
        self.synthesize_with(query, &mut cache, None)
    }

    /// [`Synthesizer::synthesize_shared`] additionally backed by a
    /// cross-query [`MergeMemo`]: PathMerging work whose run (or subtree)
    /// signature was already resolved — by an earlier query, or
    /// concurrently by another worker — is served from the memo. Results
    /// are bit-identical to [`Synthesizer::synthesize`]; only
    /// [`SynthesisStats::merge_memo_hits`] /
    /// [`SynthesisStats::merge_memo_misses`] and the timings differ. The
    /// memo is bypassed (never read, never written) when
    /// [`SynthesisConfig::merge_memo`] is off.
    pub fn synthesize_memoized(
        &self,
        query: &str,
        shared: &Arc<SharedPathCache>,
        memo: &MergeMemo,
    ) -> Synthesis {
        let mut cache = edge2path::PathCache::with_shared(Arc::clone(shared));
        self.synthesize_with(query, &mut cache, self.config.merge_memo.then_some(memo))
    }

    /// The pipeline body, generic over the path-cache layering and the
    /// optional merge memo.
    fn synthesize_with(
        &self,
        query: &str,
        cache: &mut edge2path::PathCache,
        memo: Option<&MergeMemo>,
    ) -> Synthesis {
        let mut synthesis = self.run_pipeline(query, cache, memo);
        synthesis.stats.memo_hits = cache.shared_hits();
        synthesis.stats.memo_misses = cache.shared_misses();
        synthesis.stats.memo_dedup_waits = cache.shared_dedup_waits();
        synthesis
    }

    /// Runs steps 3–6 on a pre-built query graph, skipping the dependency
    /// parser and the graph-rewriting prune phases (steps 1–2). The graph
    /// must already be in *pruned form* — the shape [`prune::prune`]
    /// produces — as emitted e.g. by the synthetic corpus generator.
    /// WordToAPI candidates are computed with exactly the rules of the
    /// string pipeline ([`prune::graph_candidates`]), so a graph that
    /// round-trips through the parser synthesizes identically either way.
    pub fn synthesize_graph(&self, query: &QueryGraph) -> Synthesis {
        let mut cache = edge2path::PathCache::new();
        self.synthesize_graph_with(query, &mut cache, None)
    }

    /// [`Synthesizer::synthesize_graph`] backed by a cross-query
    /// [`SharedPathCache`] (see [`Synthesizer::synthesize_shared`]).
    pub fn synthesize_graph_shared(
        &self,
        query: &QueryGraph,
        shared: &Arc<SharedPathCache>,
    ) -> Synthesis {
        let mut cache = edge2path::PathCache::with_shared(Arc::clone(shared));
        self.synthesize_graph_with(query, &mut cache, None)
    }

    /// [`Synthesizer::synthesize_graph_shared`] additionally backed by a
    /// cross-query [`MergeMemo`] (see [`Synthesizer::synthesize_memoized`];
    /// the memo is bypassed when [`SynthesisConfig::merge_memo`] is off).
    pub fn synthesize_graph_memoized(
        &self,
        query: &QueryGraph,
        shared: &Arc<SharedPathCache>,
        memo: &MergeMemo,
    ) -> Synthesis {
        let mut cache = edge2path::PathCache::with_shared(Arc::clone(shared));
        self.synthesize_graph_with(query, &mut cache, self.config.merge_memo.then_some(memo))
    }

    /// The graph-entry body: candidate lookup + the shared post-prune
    /// pipeline, with the memo counters folded in as in
    /// [`Synthesizer::synthesize_with`].
    fn synthesize_graph_with(
        &self,
        query: &QueryGraph,
        cache: &mut edge2path::PathCache,
        memo: Option<&MergeMemo>,
    ) -> Synthesis {
        let deadline = Deadline::new(self.config.deadline);
        let mut stats = SynthesisStats::default();
        let t0 = Instant::now();
        let w2a = prune::graph_candidates(query, &self.domain, &self.config);
        stats.t_word2api = t0.elapsed();
        let mut synthesis = if query.root.is_none() || query.nodes.is_empty() {
            Synthesis::failure(
                Outcome::NoParse,
                SynthesisError::NoParse,
                stats,
                deadline.elapsed(),
            )
        } else {
            self.run_prepared(query, &w2a, cache, memo, &deadline, stats)
        };
        synthesis.stats.memo_hits = cache.shared_hits();
        synthesis.stats.memo_misses = cache.shared_misses();
        synthesis.stats.memo_dedup_waits = cache.shared_dedup_waits();
        synthesis
    }

    /// The cross-query memo keys this query's EdgeToPath step will request,
    /// computed from steps 1–3 only (parse + prune + WordToAPI — no grammar
    /// search). Queries with equal key sets resolve from the same cache
    /// entries; [`crate::BatchEngine`] uses this as a locality signature to
    /// co-schedule them on one worker.
    pub fn edge_memo_keys(&self, query: &str) -> Vec<crate::MemoKey> {
        let dep = self.parser.parse(query);
        let (qgraph, w2a, _) = prune::prune_timed(&dep, &self.domain, &self.config);
        // The same graphs the pipeline rejects as NoParse have no signature.
        // This guard keeps the method total on arbitrary input — empty,
        // whitespace-only, and unparseable queries included — because the
        // batch engine calls it on every raw query while co-scheduling.
        if qgraph.root.is_none() || qgraph.nodes.is_empty() {
            return Vec::new();
        }
        edge2path::memo_keys(&qgraph, &w2a, &self.domain, self.config.search_limits)
    }

    fn run_pipeline(
        &self,
        query: &str,
        cache: &mut edge2path::PathCache,
        memo: Option<&MergeMemo>,
    ) -> Synthesis {
        let deadline = Deadline::new(self.config.deadline);
        let mut stats = SynthesisStats::default();

        // Steps 1-2: dependency parsing + pruning (+3: WordToAPI).
        let t0 = Instant::now();
        let dep = self.parser.parse(query);
        stats.t_parse = t0.elapsed();
        let (qgraph, w2a, prune_timing) = prune::prune_timed(&dep, &self.domain, &self.config);
        stats.t_prune = prune_timing.t_prune;
        stats.t_word2api = prune_timing.t_word2api;

        if qgraph.root.is_none() || qgraph.nodes.is_empty() {
            return Synthesis::failure(
                Outcome::NoParse,
                SynthesisError::NoParse,
                stats,
                deadline.elapsed(),
            );
        }

        self.run_prepared(&qgraph, &w2a, cache, memo, &deadline, stats)
    }

    /// Steps 4–6 on a pruned query graph with its WordToAPI map — the body
    /// shared by the string pipeline ([`Synthesizer::run_pipeline`]) and
    /// the graph entry ([`Synthesizer::synthesize_graph`]). `stats` arrives
    /// carrying whatever step 1–3 timings the caller measured.
    fn run_prepared(
        &self,
        qgraph: &QueryGraph,
        w2a: &WordToApi,
        cache: &mut edge2path::PathCache,
        memo: Option<&MergeMemo>,
        deadline: &Deadline,
        mut stats: SynthesisStats,
    ) -> Synthesis {
        // Which of the NoResult causes applies: did step 3 find *any*
        // candidate API, for any word?
        let no_result_error = || {
            if w2a.candidates.iter().all(|c| c.is_empty()) {
                SynthesisError::NoApiCandidates
            } else {
                SynthesisError::NoGrammarPath
            }
        };
        let timeout = |stats: SynthesisStats, deadline: &Deadline| {
            Synthesis::failure(
                Outcome::Timeout,
                SynthesisError::DeadlineExceeded,
                stats,
                deadline.elapsed(),
            )
        };

        if deadline.expired() {
            return timeout(stats, deadline);
        }

        // Step 4: EdgeToPath, under the deadline — the reversed all-path
        // search is the first stage that can explode.
        let t2 = Instant::now();
        let map = match edge2path::compute_deadline(
            qgraph,
            w2a,
            &self.domain,
            self.config.search_limits,
            cache,
            deadline,
        ) {
            Ok(map) => map,
            Err(_) => return timeout(stats, deadline),
        };
        stats.dep_edges = map.edges.len() + map.orphans.len();
        stats.orphans = map.orphans.len();

        // "Before relocation" numbers: the HISyn treatment attaches every
        // orphan to the grammar root.
        let mut root_attached = map.clone();
        for o in map.orphans.clone() {
            if edge2path::attach_orphan_to_root_deadline(
                &mut root_attached,
                o,
                w2a,
                self.domain.graph(),
                self.config.search_limits,
                cache,
                deadline,
            )
            .is_err()
            {
                return timeout(stats, deadline);
            }
        }
        stats.t_edge2path = t2.elapsed();
        stats.orig_paths = root_attached.total_paths();
        stats.orig_combinations = root_attached.combination_count();

        if deadline.expired() {
            return timeout(stats, deadline);
        }

        // Step 5: path merging.
        let t3 = Instant::now();
        let merged = self.run_engine(
            qgraph,
            w2a,
            &map,
            &root_attached,
            cache,
            deadline,
            &mut stats,
            memo,
        );
        stats.t_merge = t3.elapsed();

        let (best, final_query) = match merged {
            Ok(result) => result,
            Err(_) => return timeout(stats, deadline),
        };

        // Step 6: TreeToExpression.
        let t4 = Instant::now();
        match best {
            Some(best) => {
                let mut pool = LiteralPool::new();
                let mut bound_nodes = Vec::new();
                for &(qnode, api) in &best.assignment {
                    if let Some(lit) = &final_query.nodes[qnode].literal {
                        // Prefer the exact occurrence the node claimed; an
                        // API-level binding covers engines/paths without
                        // occurrence info.
                        if let Some(&(_, occ)) = best
                            .node_claims
                            .iter()
                            .find(|(n, occ)| *n == qnode && occ.1 == api)
                        {
                            pool.bind_occurrence(occ, lit.clone());
                        } else {
                            pool.bind(api, lit.clone());
                        }
                        bound_nodes.push(qnode);
                    }
                }
                for node in &final_query.nodes {
                    if let Some(lit) = &node.literal {
                        if !bound_nodes.contains(&node.id) {
                            pool.push_fallback(lit.clone());
                        }
                    }
                }
                let expression = render_expression(&self.domain, &best.cgt, &mut pool);
                stats.t_print = t4.elapsed();
                let (outcome, error) = if expression.is_some() {
                    (Outcome::Success, None)
                } else {
                    (Outcome::NoResult, Some(no_result_error()))
                };
                Synthesis {
                    outcome,
                    expression,
                    cgt: Some(best.cgt),
                    stats,
                    elapsed: deadline.elapsed(),
                    error,
                }
            }
            None => Synthesis::failure(
                Outcome::NoResult,
                no_result_error(),
                stats,
                deadline.elapsed(),
            ),
        }
    }

    /// Step 5 dispatch, returning the best CGT and the query-graph variant
    /// it was found in (relocation may rewire edges; node ids are stable).
    #[allow(clippy::too_many_arguments)]
    fn run_engine(
        &self,
        qgraph: &QueryGraph,
        w2a: &WordToApi,
        map: &EdgeToPath,
        root_attached: &EdgeToPath,
        cache: &mut edge2path::PathCache,
        deadline: &Deadline,
        stats: &mut SynthesisStats,
        memo: Option<&MergeMemo>,
    ) -> Result<(Option<BestCgt>, QueryGraph), crate::TimedOut> {
        match self.config.engine {
            Engine::HiSyn => {
                stats.paths_after_relocation = root_attached.total_paths();
                let best = hisyn::synthesize_memo(
                    &self.domain,
                    qgraph,
                    w2a,
                    root_attached,
                    &self.config,
                    deadline,
                    stats,
                    memo,
                )?;
                Ok((best, qgraph.clone()))
            }
            Engine::Dggt => {
                if self.config.orphan_relocation && !map.orphans.is_empty() {
                    let variants = relocation_variants(
                        qgraph,
                        &map.orphans,
                        w2a,
                        self.domain.graph(),
                        self.config.max_orphan_variants,
                    );
                    stats.orphan_variants = variants.len();
                    // Variants that drop orphans give up query semantics;
                    // prefer complete variants regardless of CGT size.
                    let mut best: Option<(BestCgt, QueryGraph)> = None;
                    let mut best_key: Option<(usize, usize)> = None;
                    for variant in &variants {
                        let mut vmap = edge2path::compute_deadline(
                            &variant.graph,
                            w2a,
                            &self.domain,
                            self.config.search_limits,
                            cache,
                            deadline,
                        )?;
                        for o in vmap.orphans.clone() {
                            // Orphans this variant deliberately dropped are
                            // excluded from the problem, not root-attached.
                            if variant.dropped.contains(&o) {
                                continue;
                            }
                            edge2path::attach_orphan_to_root_deadline(
                                &mut vmap,
                                o,
                                w2a,
                                self.domain.graph(),
                                self.config.search_limits,
                                cache,
                                deadline,
                            )?;
                        }
                        let mut vstats = SynthesisStats::default();
                        let result = dggt::synthesize_memo(
                            &self.domain,
                            &variant.graph,
                            w2a,
                            &vmap,
                            &self.config,
                            deadline,
                            &mut vstats,
                            memo,
                        )?;
                        stats.absorb(&vstats);
                        if let Some(candidate) = result {
                            let key = (variant.dropped.len(), candidate.size);
                            if best_key.is_none_or(|bk| key < bk) {
                                best_key = Some(key);
                                stats.paths_after_relocation = vmap.total_paths();
                                best = Some((candidate, variant.graph.clone()));
                            }
                        }
                    }
                    if let Some((b, g)) = best {
                        return Ok((Some(b), g));
                    }
                    // Fallback: no variant succeeded — HISyn treatment.
                    stats.paths_after_relocation = root_attached.total_paths();
                    let best = dggt::synthesize_memo(
                        &self.domain,
                        qgraph,
                        w2a,
                        root_attached,
                        &self.config,
                        deadline,
                        stats,
                        memo,
                    )?;
                    Ok((best, qgraph.clone()))
                } else {
                    stats.paths_after_relocation = root_attached.total_paths();
                    let best = dggt::synthesize_memo(
                        &self.domain,
                        qgraph,
                        w2a,
                        root_attached,
                        &self.config,
                        deadline,
                        stats,
                        memo,
                    )?;
                    Ok((best, qgraph.clone()))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlquery_grammar::GrammarGraph;
    use nlquery_nlp::ApiDoc;

    fn domain() -> Domain {
        let graph = GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg | DELETE delete_arg
            insert_arg ::= string pos iter
            delete_arg ::= entity iter
            string     ::= STRING
            entity     ::= STRING | WORDTOKEN | NUMBERTOKEN
            pos        ::= START | END | POSITION
            iter       ::= ITERATIONSCOPE iter_arg | LINESCOPE
            iter_arg   ::= scope cond
            scope      ::= LINESCOPE | DOCSCOPE
            cond       ::= CONTAINS centity | ALL
            centity    ::= NUMBERTOKEN | WORDTOKEN | STRING
            "#,
        )
        .unwrap();
        Domain::builder("textedit-mini")
            .graph(graph)
            .docs(vec![
                ApiDoc::new("INSERT", &["insert"], "inserts a string at a position", 0),
                ApiDoc::new("DELETE", &["delete"], "deletes an entity", 0),
                ApiDoc::new("STRING", &["string"], "a string constant", 1),
                ApiDoc::new("WORDTOKEN", &["word"], "a word token", 0),
                ApiDoc::new("NUMBERTOKEN", &["number", "numeral"], "a number token", 0),
                ApiDoc::new("START", &["start"], "the start of the scope", 0),
                ApiDoc::new("END", &["end"], "the end of the scope", 0),
                ApiDoc::new(
                    "POSITION",
                    &["position", "character"],
                    "a character position",
                    1,
                ),
                ApiDoc::new(
                    "ITERATIONSCOPE",
                    &["iteration"],
                    "iterate with a condition",
                    0,
                ),
                ApiDoc::new("LINESCOPE", &["line"], "over lines", 0),
                ApiDoc::new("DOCSCOPE", &["document"], "the whole document", 0),
                ApiDoc::new("CONTAINS", &["contain"], "scope contains entity", 0),
                ApiDoc::new("ALL", &["all", "every"], "all occurrences", 0),
            ])
            .literal_api("STRING")
            .build()
            .unwrap()
    }

    #[test]
    fn end_to_end_insert() {
        let synth = Synthesizer::new(domain(), SynthesisConfig::default());
        let r = synth.synthesize("insert \":\" at the start of each line");
        assert_eq!(r.outcome, Outcome::Success, "{:?}", r.stats);
        let expr = r.expression.unwrap();
        assert!(expr.starts_with("INSERT(STRING(:)"), "{expr}");
        assert!(expr.contains("START()"), "{expr}");
    }

    #[test]
    fn hisyn_and_dggt_agree_under_same_orphan_treatment() {
        // Losslessness (§VII-B2): DGGT is an acceleration of HISyn's
        // search, so with identical orphan treatment (root attachment) the
        // two engines produce the same expression.
        let d = domain();
        let dggt = Synthesizer::new(
            d.clone(),
            SynthesisConfig::default().orphan_relocation(false),
        );
        let hisyn = Synthesizer::new(d, SynthesisConfig::hisyn_baseline());
        for q in [
            "insert \":\" at the start of each line",
            "delete every word",
            "append \"-\" at the end of each line containing numbers",
        ] {
            let a = dggt.synthesize(q);
            let b = hisyn.synthesize(q);
            assert_eq!(a.expression, b.expression, "query: {q}");
        }
    }

    #[test]
    fn relocation_recovers_queries_root_attachment_loses() {
        // The accuracy edge of DGGT in the paper comes from fewer
        // timeouts *and* orphan relocation finding trees that the HISyn
        // orphan treatment cannot.
        let d = domain();
        let with = Synthesizer::new(d.clone(), SynthesisConfig::default());
        let without = Synthesizer::new(d, SynthesisConfig::default().orphan_relocation(false));
        let q = "append \"-\" at the end of each line containing numbers";
        let a = with.synthesize(q);
        let b = without.synthesize(q);
        assert_eq!(a.outcome, Outcome::Success, "{:?}", a.stats);
        assert!(
            b.expression.is_none() || a.expression.is_some(),
            "relocation must not lose queries root attachment wins"
        );
    }

    #[test]
    fn empty_query_is_no_parse() {
        let synth = Synthesizer::new(domain(), SynthesisConfig::default());
        let r = synth.synthesize("");
        assert_eq!(r.outcome, Outcome::NoParse);
    }

    #[test]
    fn nonsense_query_is_no_parse_or_no_result() {
        let synth = Synthesizer::new(domain(), SynthesisConfig::default());
        let r = synth.synthesize("the quick brown fox");
        assert_ne!(r.outcome, Outcome::Success);
    }

    #[test]
    fn stats_are_populated() {
        let synth = Synthesizer::new(domain(), SynthesisConfig::default());
        let r = synth.synthesize("insert \":\" at the start of each line");
        assert!(r.stats.dep_edges >= 3, "{:?}", r.stats);
        assert!(r.stats.orig_paths > 0);
        assert!(r.stats.orig_combinations >= 1.0);
        assert!(r.elapsed > Duration::ZERO);
    }

    #[test]
    fn zero_timeout_reports_timeout() {
        let cfg = SynthesisConfig::default().timeout(Duration::ZERO);
        let synth = Synthesizer::new(domain(), cfg);
        let r = synth.synthesize("insert \":\" at the start of each line");
        assert_eq!(r.outcome, Outcome::Timeout);
        assert_eq!(r.error, Some(SynthesisError::DeadlineExceeded));
    }

    #[test]
    fn errors_mirror_outcomes() {
        let synth = Synthesizer::new(domain(), SynthesisConfig::default());
        let ok = synth.synthesize("insert \":\" at the start of each line");
        assert_eq!(ok.outcome, Outcome::Success);
        assert_eq!(ok.error, None);

        let no_parse = synth.synthesize("");
        assert_eq!(no_parse.outcome, Outcome::NoParse);
        assert_eq!(no_parse.error, Some(SynthesisError::NoParse));
    }

    #[test]
    fn edge_memo_keys_is_total_on_degenerate_queries() {
        let synth = Synthesizer::new(domain(), SynthesisConfig::default());
        assert!(synth.edge_memo_keys("").is_empty());
        assert!(synth.edge_memo_keys("   \t  ").is_empty());
        // Nonsense must not panic (whether it prunes to empty is up to the
        // parser; totality is the contract).
        let _ = synth.edge_memo_keys("zzz qqq xxx");
        assert!(!synth
            .edge_memo_keys("insert \":\" at the start of each line")
            .is_empty());
    }
}
