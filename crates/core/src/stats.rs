//! Per-synthesis instrumentation.
//!
//! These counters back Table III of the paper: original path counts,
//! theoretical combination counts, the effect of orphan relocation, and how
//! many combinations each pruning stage removed.

use std::time::Duration;

/// Counters recorded during one synthesis run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SynthesisStats {
    /// Dependency edges in the pruned query graph (including the implicit
    /// root edge).
    pub dep_edges: usize,
    /// Total candidate grammar paths before orphan relocation (HISyn
    /// treatment: orphans attached to the grammar root).
    pub orig_paths: usize,
    /// Theoretical number of path combinations before relocation
    /// (product over edges of per-edge path counts).
    pub orig_combinations: f64,
    /// Total candidate paths after orphan relocation.
    pub paths_after_relocation: usize,
    /// Sibling-level combinations considered by the engine (sum over
    /// sibling groups of per-group products).
    pub sibling_combinations: u64,
    /// Combinations removed by grammar-based pruning.
    pub pruned_grammar: u64,
    /// Combinations removed by size-based pruning.
    pub pruned_size: u64,
    /// Combinations actually merged into prefix trees.
    pub merged_combinations: u64,
    /// Number of orphan nodes detected.
    pub orphans: usize,
    /// Number of relocated-graph variants synthesized.
    pub orphan_variants: usize,
    /// Combinations the HISyn enumeration visited (HISyn engine only).
    pub enumerated_combinations: u64,
    /// Time spent in dependency parsing (step 1).
    pub t_parse: Duration,
    /// Time spent pruning the query graph (step 2).
    pub t_prune: Duration,
    /// Time spent in WordToAPI (step 3).
    pub t_word2api: Duration,
    /// Time spent in EdgeToPath (step 4).
    pub t_edge2path: Duration,
    /// Time spent merging / in the DP (step 5).
    pub t_merge: Duration,
    /// Time spent rendering the expression (step 6, TreeToExpression).
    pub t_print: Duration,
    /// Cross-query memo-cache hits during this run's EdgeToPath searches
    /// (0 unless the synthesizer ran with a shared cache).
    pub memo_hits: u64,
    /// Cross-query memo-cache misses during this run's EdgeToPath searches.
    pub memo_misses: u64,
    /// EdgeToPath lookups that blocked on another worker's in-flight
    /// computation of the same key instead of duplicating it (single-flight
    /// deduplication; 0 outside a concurrent batch).
    pub memo_dedup_waits: u64,
}

impl SynthesisStats {
    /// Sum of all per-stage durations (parse, prune, WordToAPI,
    /// EdgeToPath, merge, print) — the instrumented fraction of a run's
    /// wall-clock time.
    pub fn stage_total(&self) -> Duration {
        self.t_parse
            + self.t_prune
            + self.t_word2api
            + self.t_edge2path
            + self.t_merge
            + self.t_print
    }

    /// Sums counters from a sub-run (used when orphan relocation
    /// synthesizes several graph variants).
    pub fn absorb(&mut self, other: &SynthesisStats) {
        self.sibling_combinations += other.sibling_combinations;
        self.pruned_grammar += other.pruned_grammar;
        self.pruned_size += other.pruned_size;
        self.merged_combinations += other.merged_combinations;
        self.enumerated_combinations += other.enumerated_combinations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters() {
        let mut a = SynthesisStats {
            pruned_grammar: 5,
            merged_combinations: 2,
            ..SynthesisStats::default()
        };
        let b = SynthesisStats {
            pruned_grammar: 3,
            merged_combinations: 1,
            pruned_size: 7,
            ..SynthesisStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.pruned_grammar, 8);
        assert_eq!(a.merged_combinations, 3);
        assert_eq!(a.pruned_size, 7);
    }

    #[test]
    fn default_is_zeroed() {
        let s = SynthesisStats::default();
        assert_eq!(s.dep_edges, 0);
        assert_eq!(s.orig_combinations, 0.0);
    }
}
