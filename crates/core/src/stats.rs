//! Per-synthesis instrumentation.
//!
//! These counters back Table III of the paper: original path counts,
//! theoretical combination counts, the effect of orphan relocation, and how
//! many combinations each pruning stage removed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters recorded during one synthesis run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SynthesisStats {
    /// Dependency edges in the pruned query graph (including the implicit
    /// root edge).
    pub dep_edges: usize,
    /// Total candidate grammar paths before orphan relocation (HISyn
    /// treatment: orphans attached to the grammar root).
    pub orig_paths: usize,
    /// Theoretical number of path combinations before relocation
    /// (product over edges of per-edge path counts).
    pub orig_combinations: f64,
    /// Total candidate paths after orphan relocation.
    pub paths_after_relocation: usize,
    /// Sibling-level combinations considered by the engine (sum over
    /// sibling groups of per-group products).
    pub sibling_combinations: u64,
    /// Combinations removed by grammar-based pruning.
    pub pruned_grammar: u64,
    /// Combinations removed by size-based pruning.
    pub pruned_size: u64,
    /// Combinations actually merged into prefix trees.
    pub merged_combinations: u64,
    /// Number of orphan nodes detected.
    pub orphans: usize,
    /// Number of relocated-graph variants synthesized.
    pub orphan_variants: usize,
    /// Combinations the HISyn enumeration visited (HISyn engine only).
    pub enumerated_combinations: u64,
    /// Time spent in dependency parsing (step 1).
    pub t_parse: Duration,
    /// Time spent pruning the query graph (step 2).
    pub t_prune: Duration,
    /// Time spent in WordToAPI (step 3).
    pub t_word2api: Duration,
    /// Time spent in EdgeToPath (step 4).
    pub t_edge2path: Duration,
    /// Time spent merging / in the DP (step 5).
    pub t_merge: Duration,
    /// Time spent rendering the expression (step 6, TreeToExpression).
    pub t_print: Duration,
    /// Cross-query memo-cache hits during this run's EdgeToPath searches
    /// (0 unless the synthesizer ran with a shared cache).
    pub memo_hits: u64,
    /// Cross-query memo-cache misses during this run's EdgeToPath searches.
    pub memo_misses: u64,
    /// EdgeToPath lookups that blocked on another worker's in-flight
    /// computation of the same key instead of duplicating it (single-flight
    /// deduplication; 0 outside a concurrent batch).
    pub memo_dedup_waits: u64,
    /// Cross-query merge-memo hits during this run's PathMerging stage
    /// (0 unless the synthesizer ran with a [`crate::MergeMemo`]).
    pub merge_memo_hits: u64,
    /// Cross-query merge-memo misses during this run's PathMerging stage.
    pub merge_memo_misses: u64,
    /// Merge-stage lookups that blocked on another worker's in-flight
    /// computation of the same merge signature (single-flight
    /// deduplication; 0 outside a concurrent batch).
    pub merge_memo_dedup_waits: u64,
    /// Distinct merge signatures this run consulted the merge memo for
    /// (FinalJoin/HisynFuse runs plus deduplicated per-node beam
    /// signatures). 0 when the merge memo is off — the counter measures
    /// signature cardinality, the upper bound on cold-pass merge work a
    /// warm memo can absorb.
    pub merge_memo_unique_signatures: u64,
}

impl SynthesisStats {
    /// Sum of all per-stage durations (parse, prune, WordToAPI,
    /// EdgeToPath, merge, print) — the instrumented fraction of a run's
    /// wall-clock time.
    pub fn stage_total(&self) -> Duration {
        self.t_parse
            + self.t_prune
            + self.t_word2api
            + self.t_edge2path
            + self.t_merge
            + self.t_print
    }

    /// Sums counters from a sub-run (used when orphan relocation
    /// synthesizes several graph variants).
    pub fn absorb(&mut self, other: &SynthesisStats) {
        self.sibling_combinations += other.sibling_combinations;
        self.pruned_grammar += other.pruned_grammar;
        self.pruned_size += other.pruned_size;
        self.merged_combinations += other.merged_combinations;
        self.enumerated_combinations += other.enumerated_combinations;
        self.merge_memo_hits += other.merge_memo_hits;
        self.merge_memo_misses += other.merge_memo_misses;
        self.merge_memo_dedup_waits += other.merge_memo_dedup_waits;
        self.merge_memo_unique_signatures += other.merge_memo_unique_signatures;
    }
}

/// Number of finite histogram buckets. Bucket `i` holds samples in
/// `(bound(i-1), bound(i)]` nanoseconds with `bound(i) = 1000 << i`,
/// spanning 1 µs .. ~33.6 s; slower samples land in the overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 26;

/// A fixed log-bucketed latency histogram, safe for concurrent recording.
///
/// Buckets double from 1 µs to ~33.6 s (plus an overflow bucket), which
/// covers everything from a warm cache hit to a query that blows its
/// deadline. Counters are monotonic `AtomicU64`s — never reset — so the
/// `/metrics` endpoint can export them directly as a Prometheus
/// cumulative histogram, and [`HistogramSnapshot::quantile`] estimates
/// p50/p95/p99 for the load generator.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    overflow: AtomicU64,
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

/// The inclusive upper bound, in nanoseconds, of finite bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    1000u64 << i
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        let index = (0..HISTOGRAM_BUCKETS)
            .position(|i| nanos <= bucket_bound(i))
            .unwrap_or(HISTOGRAM_BUCKETS);
        if index < HISTOGRAM_BUCKETS {
            self.buckets[index].fetch_add(1, Ordering::Relaxed);
        } else {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            overflow: self.overflow.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`]'s counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (not cumulative).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Samples slower than the last finite bucket bound.
    pub overflow: u64,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded latencies, in nanoseconds (saturating).
    pub sum_nanos: u64,
}

impl HistogramSnapshot {
    /// The inclusive upper bound of finite bucket `i`, in seconds
    /// (Prometheus `le` label value).
    pub fn bound_secs(i: usize) -> f64 {
        bucket_bound(i) as f64 / 1e9
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) as the upper bound of
    /// the bucket containing the target rank — a conservative
    /// (over-)estimate, like Prometheus's `histogram_quantile`. Returns
    /// `None` when empty or when the rank falls in the overflow bucket.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Duration::from_nanos(bucket_bound(i)));
            }
        }
        None
    }

    /// Mean latency, or `None` when empty.
    pub fn mean(&self) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        Some(Duration::from_nanos(self.sum_nanos / self.count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters() {
        let mut a = SynthesisStats {
            pruned_grammar: 5,
            merged_combinations: 2,
            ..SynthesisStats::default()
        };
        let b = SynthesisStats {
            pruned_grammar: 3,
            merged_combinations: 1,
            pruned_size: 7,
            ..SynthesisStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.pruned_grammar, 8);
        assert_eq!(a.merged_combinations, 3);
        assert_eq!(a.pruned_size, 7);
    }

    #[test]
    fn default_is_zeroed() {
        let s = SynthesisStats::default();
        assert_eq!(s.dep_edges, 0);
        assert_eq!(s.orig_combinations, 0.0);
    }

    #[test]
    fn histogram_buckets_by_magnitude() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(500)); // below first bound → bucket 0
        h.record(Duration::from_micros(1)); // exactly bound 0
        h.record(Duration::from_micros(3)); // bucket 2 (bound 4 µs)
        h.record(Duration::from_millis(1)); // bucket 10 (bound ~1.024 ms)
        h.record(Duration::from_secs(60)); // beyond last bound → overflow
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[2], 1);
        assert_eq!(snap.buckets[10], 1);
        assert_eq!(snap.overflow, 1);
        assert_eq!(snap.buckets.iter().sum::<u64>() + snap.overflow, snap.count);
    }

    #[test]
    fn histogram_bounds_double_from_one_microsecond() {
        assert_eq!(bucket_bound(0), 1_000);
        assert_eq!(bucket_bound(1), 2_000);
        assert_eq!(bucket_bound(HISTOGRAM_BUCKETS - 1), 1_000 << 25);
        assert!(bucket_bound(HISTOGRAM_BUCKETS - 1) > 33_000_000_000);
        assert!((HistogramSnapshot::bound_secs(0) - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(10)); // bucket 4 (bound 16 µs)
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10)); // bucket 14 (bound ~16.4 ms)
        }
        let snap = h.snapshot();
        assert_eq!(
            snap.quantile(0.5),
            Some(Duration::from_nanos(bucket_bound(4)))
        );
        assert_eq!(
            snap.quantile(0.9),
            Some(Duration::from_nanos(bucket_bound(4)))
        );
        assert_eq!(
            snap.quantile(0.99),
            Some(Duration::from_nanos(bucket_bound(14)))
        );
        assert_eq!(
            snap.quantile(1.0),
            Some(Duration::from_nanos(bucket_bound(14)))
        );
    }

    #[test]
    fn histogram_empty_and_overflow_quantiles() {
        let empty = LatencyHistogram::new().snapshot();
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.mean(), None);

        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(3600));
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), None, "overflow rank has no bound");
        assert_eq!(snap.overflow, 1);
    }

    #[test]
    fn histogram_mean_is_sum_over_count() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(2));
        h.record(Duration::from_micros(4));
        let snap = h.snapshot();
        assert_eq!(snap.mean(), Some(Duration::from_micros(3)));
        assert_eq!(snap.sum_nanos, 6_000);
    }

    #[test]
    fn histogram_is_safe_to_record_concurrently() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(Duration::from_nanos(1 + (i % 7) * 1000 * (t + 1)));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.buckets.iter().sum::<u64>() + snap.overflow, 4000);
    }
}
