//! Code generation trees (CGTs).
//!
//! A CGT is a subgraph of the grammar graph formed by fusing candidate
//! grammar paths (merging common nodes and edges). A *valid* CGT is
//! grammatically usable: every non-terminal commits to at most one "or"
//! alternative, non-API nodes have at most one parent, and everything is
//! reachable from the tree's top. The smallest valid CGT (fewest APIs) is
//! the synthesis result.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use nlquery_grammar::{BitCgt, CgtLayout, GrammarGraph, GrammarPath, NodeId};

/// A code generation tree: node and edge sets over a grammar graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cgt {
    /// Grammar nodes in the tree.
    pub nodes: BTreeSet<NodeId>,
    /// Grammar edges in the tree.
    pub edges: BTreeSet<(NodeId, NodeId)>,
}

impl Cgt {
    /// An empty CGT.
    pub fn new() -> Cgt {
        Cgt::default()
    }

    /// A CGT containing a single node (a partial CGT for a leaf API).
    pub fn singleton(node: NodeId) -> Cgt {
        let mut cgt = Cgt::new();
        cgt.nodes.insert(node);
        cgt
    }

    /// Builds the CGT of one grammar path.
    pub fn from_path(path: &GrammarPath, graph: &GrammarGraph) -> Cgt {
        Cgt {
            nodes: path.cgt_nodes(graph),
            edges: path.cgt_edges(graph),
        }
    }

    /// Fuses another CGT into this one (union of nodes and edges — the
    /// paper's merging of common nodes/edges).
    pub fn merge(&mut self, other: &Cgt) {
        self.nodes.extend(other.nodes.iter().copied());
        self.edges.extend(other.edges.iter().copied());
    }

    /// Fuses a grammar path into this CGT.
    pub fn absorb_path(&mut self, path: &GrammarPath, graph: &GrammarGraph) {
        self.nodes.extend(path.cgt_nodes(graph));
        self.edges.extend(path.cgt_edges(graph));
    }

    /// Converts this CGT into the bitset kernel representation.
    pub fn to_bits(&self, layout: &CgtLayout) -> BitCgt {
        let mut bits = BitCgt::empty(layout);
        for &node in &self.nodes {
            bits.insert_node(node);
        }
        for &(from, to) in &self.edges {
            let inserted = bits.insert_grammar_edge(layout, from, to);
            debug_assert!(inserted, "edge {from:?}->{to:?} missing from layout");
        }
        bits
    }

    /// Reconstructs a reference CGT from the bitset kernel representation.
    pub fn from_bits(bits: &BitCgt, layout: &CgtLayout) -> Cgt {
        let mut cgt = Cgt::new();
        for node in bits.iter_nodes() {
            cgt.nodes.insert(node);
        }
        for (from, to) in bits.iter_edges(layout) {
            cgt.edges.insert((from, to));
        }
        cgt
    }

    /// Number of API *occurrences* — the CGT size the synthesizer
    /// minimizes ("for the shortest code to be produced", §IV-B).
    ///
    /// API nodes are shared across grammar contexts, so the same API can
    /// occur in several derivations of one tree and then appears several
    /// times in the rendered codelet; occurrences, not distinct nodes, are
    /// what codelet length measures. An occurrence is an incoming
    /// derivation→API edge; API nodes with no incoming edge (leaf partial
    /// CGTs) count once.
    pub fn api_count(&self, graph: &GrammarGraph) -> usize {
        let mut count = 0;
        let mut covered: BTreeSet<NodeId> = BTreeSet::new();
        for &(from, to) in &self.edges {
            if graph.is_derivation(from) && graph.is_api(to) {
                count += 1;
                covered.insert(to);
            }
        }
        count
            + self
                .nodes
                .iter()
                .filter(|&&n| graph.is_api(n) && !covered.contains(&n))
                .count()
    }

    /// The "or" choices this tree makes: every non-terminal → derivation
    /// edge, in sorted order (the edge set is a `BTreeSet`). Two trees
    /// with equal signatures are interchangeable merge contexts; trees
    /// with different signatures conflict on at least one alternation.
    pub fn or_edges(&self, graph: &GrammarGraph) -> Vec<(NodeId, NodeId)> {
        self.edges
            .iter()
            .filter(|&&(from, to)| graph.is_nonterminal(from) && graph.is_derivation(to))
            .copied()
            .collect()
    }

    /// Whether every non-terminal selects at most one "or" alternative.
    pub fn is_or_consistent(&self, graph: &GrammarGraph) -> bool {
        let mut chosen: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        for &(from, to) in &self.edges {
            if graph.is_nonterminal(from) && graph.is_derivation(to) {
                if let Some(&prev) = chosen.get(&from) {
                    if prev != to {
                        return false;
                    }
                } else {
                    chosen.insert(from, to);
                }
            }
        }
        true
    }

    /// The topmost node: a node with no incoming CGT edge. Prefers the
    /// grammar root when present; returns `None` when the CGT is empty or
    /// has no unique top among several candidates (the smallest id wins for
    /// determinism in that degenerate case).
    pub fn top(&self, graph: &GrammarGraph) -> Option<NodeId> {
        if self.nodes.is_empty() {
            return None;
        }
        if self.nodes.contains(&graph.root()) {
            return Some(graph.root());
        }
        let targets: BTreeSet<NodeId> = self.edges.iter().map(|&(_, to)| to).collect();
        self.nodes.iter().copied().find(|n| !targets.contains(n))
    }

    /// Whether every node is reachable from the top. API nodes are shared
    /// across grammar contexts, so merging two path sets that only touch at
    /// an API node can leave one context dangling — this check catches it.
    pub fn is_connected(&self, graph: &GrammarGraph) -> bool {
        if self.nodes.len() <= 1 {
            return true;
        }
        let Some(top) = self.top(graph) else {
            return false;
        };
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue = VecDeque::from([top]);
        seen.insert(top);
        while let Some(cur) = queue.pop_front() {
            for &(from, to) in &self.edges {
                if from == cur && seen.insert(to) {
                    queue.push_back(to);
                }
            }
        }
        seen.len() == self.nodes.len()
    }

    /// Structural validity: or-consistency, at most one parent per non-API
    /// node, and full reachability from the top.
    ///
    /// API nodes may have several parents — grammar graphs share one node
    /// per API name, so an API used in two argument positions legitimately
    /// has two incoming edges.
    pub fn is_valid(&self, graph: &GrammarGraph) -> bool {
        if !self.is_or_consistent(graph) {
            return false;
        }
        // Parent counts.
        let mut parents: BTreeMap<NodeId, usize> = BTreeMap::new();
        for &(_, to) in &self.edges {
            *parents.entry(to).or_default() += 1;
        }
        for (&node, &count) in &parents {
            if count > 1 && !graph.is_api(node) {
                return false;
            }
        }
        // Edge endpoints must be CGT nodes and real grammar edges.
        for &(from, to) in &self.edges {
            if !self.nodes.contains(&from) || !self.nodes.contains(&to) {
                return false;
            }
            if graph.edge_kind(from, to).is_none() {
                return false;
            }
        }
        // Connectivity from the top.
        let Some(top) = self.top(graph) else {
            return self.nodes.len() <= 1;
        };
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue = VecDeque::from([top]);
        seen.insert(top);
        while let Some(cur) = queue.pop_front() {
            for &(from, to) in &self.edges {
                if from == cur && seen.insert(to) {
                    queue.push_back(to);
                }
            }
        }
        seen.len() == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlquery_grammar::SearchLimits;

    fn graph() -> GrammarGraph {
        GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg
            insert_arg ::= string pos
            string     ::= STRING
            pos        ::= POSITION | START
            "#,
        )
        .unwrap()
    }

    fn path(g: &GrammarGraph, from: &str, to: &str) -> GrammarPath {
        let a = g.api_node(from).unwrap();
        let b = g.api_node(to).unwrap();
        let paths = g.paths_between(a, b, SearchLimits::default());
        assert!(!paths.is_empty(), "{from}->{to}");
        paths[0].clone()
    }

    #[test]
    fn merging_two_paths_is_valid() {
        let g = graph();
        let mut cgt = Cgt::from_path(&path(&g, "INSERT", "STRING"), &g);
        cgt.absorb_path(&path(&g, "INSERT", "START"), &g);
        assert!(cgt.is_valid(&g), "{cgt:?}");
        // APIs: INSERT, STRING, START.
        assert_eq!(cgt.api_count(&g), 3);
    }

    #[test]
    fn conflicting_or_edges_invalidate() {
        let g = graph();
        let mut cgt = Cgt::from_path(&path(&g, "INSERT", "START"), &g);
        cgt.absorb_path(&path(&g, "INSERT", "POSITION"), &g);
        assert!(!cgt.is_or_consistent(&g));
        assert!(!cgt.is_valid(&g));
    }

    #[test]
    fn top_prefers_grammar_root() {
        let g = graph();
        let insert = g.api_node("INSERT").unwrap();
        let root_paths = g.paths_from_root(insert, SearchLimits::default());
        let cgt = Cgt::from_path(&root_paths[0], &g);
        assert_eq!(cgt.top(&g), Some(g.root()));
    }

    #[test]
    fn empty_cgt() {
        let g = graph();
        let cgt = Cgt::new();
        assert_eq!(cgt.top(&g), None);
        assert_eq!(cgt.api_count(&g), 0);
        assert!(cgt.is_valid(&g));
    }

    #[test]
    fn singleton_is_valid() {
        let g = graph();
        let cgt = Cgt::singleton(g.api_node("STRING").unwrap());
        assert!(cgt.is_valid(&g));
        assert_eq!(cgt.api_count(&g), 1);
    }

    #[test]
    fn disconnected_pieces_are_invalid() {
        let g = graph();
        let mut cgt = Cgt::singleton(g.api_node("STRING").unwrap());
        cgt.nodes.insert(g.api_node("START").unwrap());
        assert!(!cgt.is_valid(&g));
    }

    #[test]
    fn merge_unions() {
        let g = graph();
        let a = Cgt::from_path(&path(&g, "INSERT", "STRING"), &g);
        let b = Cgt::from_path(&path(&g, "INSERT", "START"), &g);
        let mut m = a.clone();
        m.merge(&b);
        assert!(m.nodes.is_superset(&a.nodes));
        assert!(m.nodes.is_superset(&b.nodes));
        assert_eq!(m.edges.len(), a.edges.union(&b.edges).count());
    }
}
