//! NLU-driven natural-language program synthesis.
//!
//! This crate implements the synthesis pipeline of the DGGT paper (Nan,
//! Guan, Shen — "Enabling Near Real-Time NLU-Driven Natural Language
//! Programming through Dynamic Grammar Graph-Based Translation", CGO 2022):
//!
//! 1. **Dependency parsing** (via [`nlquery_nlp`]);
//! 2. **Query-graph pruning** — [`prune`];
//! 3. **WordToAPI** — [`word2api`];
//! 4. **EdgeToPath** — [`edge2path`] (reversed all-path search);
//! 5. **PathMerging** — either the exhaustive [`hisyn`] baseline or the
//!    paper's [`dggt`] dynamic-programming algorithm, with the
//!    [`opt`] optimizations (grammar-based pruning, size-based pruning,
//!    orphan-node relocation);
//! 6. **TreeToExpression** — [`expr`].
//!
//! The entry point is [`Synthesizer`].
//!
//! # Example
//!
//! ```rust
//! use nlquery_core::{Domain, Engine, SynthesisConfig, Synthesizer};
//! use nlquery_nlp::ApiDoc;
//! use nlquery_grammar::GrammarGraph;
//!
//! let graph = GrammarGraph::parse(
//!     "command ::= INSERT string pos\n\
//!      string  ::= STRING\n\
//!      pos     ::= START | END",
//! )?;
//! let docs = vec![
//!     ApiDoc::new("INSERT", &["insert"], "inserts a string at a position", 0),
//!     ApiDoc::new("STRING", &["string"], "a string constant", 1),
//!     ApiDoc::new("START", &["start"], "the start of the line", 0),
//!     ApiDoc::new("END", &["end"], "the end of the line", 0),
//! ];
//! let domain = Domain::builder("mini")
//!     .graph(graph)
//!     .docs(docs)
//!     .literal_api("STRING")
//!     .build()?;
//! let synth = Synthesizer::new(domain, SynthesisConfig::default().engine(Engine::Dggt));
//! let result = synth.synthesize("insert \":\" at the start");
//! assert_eq!(result.expression.as_deref(), Some("INSERT(STRING(:), START())"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod cgt;
pub mod compiled;
mod config;
pub mod dggt;
mod domain;
pub mod edge2path;
mod engine;
mod error;
pub mod expr;
pub mod hisyn;
pub mod json;
pub mod memo;
pub mod merge_memo;
pub mod opt;
mod pipeline;
pub mod prune;
mod query;
pub mod service;
pub mod snapshot;
mod stats;
pub mod word2api;

pub use batch::{BatchEngine, BatchOptions, BatchReport, BatchStats, Fault, WorkerStats};
pub use cgt::Cgt;
pub use compiled::{CompiledDomain, AOT_CACHE_MAGIC};
pub use config::{Engine, SynthesisConfig};
pub use domain::{Domain, DomainBuilder};
pub use edge2path::{EdgeCandidates, EdgeToPath, PathCache, PathCandidate};
pub use engine::{BestCgt, Deadline, TimedOut};
pub use error::SynthesisError;
pub use json::{JsonError, JsonValue};
pub use memo::{
    CacheStats, Flight, FlightToken, MemoBytes, MemoDirection, MemoKey, ShardHash,
    ShardedFlightCache, SharedPathCache, DEFAULT_SHARDS,
};
pub use merge_memo::{
    run_signature, MergeFlight, MergeFlightToken, MergeKey, MergeKind, MergeMemo, MergeValue,
    MergeWork, DEFAULT_MERGE_CAPACITY,
};
pub use pipeline::{Outcome, Synthesis, Synthesizer};
pub use query::{QueryEdge, QueryGraph, QueryNode};
pub use service::{JobSpec, ServiceEngine, ServiceStats, SubmissionHandle, SubmissionReport};
pub use snapshot::{SnapshotError, SnapshotSummary, SNAPSHOT_VERSION};
pub use stats::{HistogramSnapshot, LatencyHistogram, SynthesisStats, HISTOGRAM_BUCKETS};
pub use word2api::WordToApi;
