//! Step 5, HISyn baseline — exhaustive PathMerging.
//!
//! "This step enumerates every combination of the grammar paths of all the
//! edges in the pruned dependency graph. For each combination, it tries to
//! merge the grammar paths to form a tree" (§II). The combination count is
//! `Π_l p_l^{e_l}` — exponential in the query's dependency structure, which
//! is exactly the bottleneck the paper measures (90.2 % of HISyn's time on
//! slow queries).
//!
//! The enumeration honours the configuration's optional grammar-based and
//! size-based pruning flags so ablations can measure each optimization on
//! top of the baseline; the faithful HISyn configuration
//! ([`crate::SynthesisConfig::hisyn_baseline`]) disables both.

use nlquery_grammar::{BitCgt, CgtArena, CgtLayout, NodeId};

use crate::engine::{BestCgt, Deadline, TimedOut};
use crate::merge_memo::{
    run_signature, MergeFlight, MergeKey, MergeKind, MergeMemo, MergeValue, MergeWork,
};
use crate::opt::grammar_prune::{combination_conflicts, or_signature};
use crate::{Cgt, Domain, EdgeToPath, QueryGraph, SynthesisConfig, SynthesisStats, WordToApi};

/// How often the inner loop polls the deadline.
const DEADLINE_STRIDE: u64 = 256;

/// How often the (much costlier) fuse path re-polls it. Merges dominate
/// wall-clock on dense queries, so the enumeration-level stride alone
/// would let a merge-heavy window overshoot its budget.
const MERGE_DEADLINE_STRIDE: u64 = 64;

/// Like [`synthesize`], consulting (and feeding) a cross-query
/// [`MergeMemo`] when one is supplied: the whole exhaustive run is keyed
/// by [`run_signature`] under [`MergeKind::HisynFuse`], so a structurally
/// repeated query returns the cached fuse result without re-enumerating.
/// The single-flight token is held across the run and dropped by `?` on
/// timeout, so timeouts are never cached.
///
/// # Errors
///
/// Returns [`TimedOut`] when the deadline expires mid-enumeration.
#[allow(clippy::too_many_arguments)]
pub fn synthesize_memo(
    domain: &Domain,
    query: &QueryGraph,
    w2a: &WordToApi,
    map: &EdgeToPath,
    config: &SynthesisConfig,
    deadline: &Deadline,
    stats: &mut SynthesisStats,
    memo: Option<&MergeMemo>,
) -> Result<Option<BestCgt>, TimedOut> {
    let Some(memo) = memo else {
        return synthesize(domain, query, w2a, map, config, deadline, stats);
    };
    let key = MergeKey {
        sig: run_signature(domain, query, w2a, map, config),
        kind: MergeKind::HisynFuse,
    };
    // One HisynFuse signature per run (merge-signature cardinality).
    stats.merge_memo_unique_signatures += 1;
    match memo.join(key) {
        MergeFlight::Hit(v) => {
            stats.merge_memo_hits += 1;
            let MergeValue::Best(best, work) = &*v else {
                unreachable!("HisynFuse keys only store MergeValue::Best");
            };
            work.replay(stats);
            Ok(best.clone())
        }
        MergeFlight::Shared(v) => {
            stats.merge_memo_dedup_waits += 1;
            let MergeValue::Best(best, work) = &*v else {
                unreachable!("HisynFuse keys only store MergeValue::Best");
            };
            work.replay(stats);
            Ok(best.clone())
        }
        MergeFlight::Miss(token) => {
            stats.merge_memo_misses += 1;
            let before = MergeWork::snapshot(stats);
            let best = synthesize(domain, query, w2a, map, config, deadline, stats)?;
            token.complete(MergeValue::Best(
                best.clone(),
                MergeWork::since(stats, &before),
            ));
            Ok(best)
        }
    }
}

/// Runs the exhaustive search, returning the smallest valid CGT.
///
/// # Errors
///
/// Returns [`TimedOut`] when the deadline expires mid-enumeration.
pub fn synthesize(
    domain: &Domain,
    query: &QueryGraph,
    w2a: &WordToApi,
    map: &EdgeToPath,
    config: &SynthesisConfig,
    deadline: &Deadline,
    stats: &mut SynthesisStats,
) -> Result<Option<BestCgt>, TimedOut> {
    let graph = domain.graph();
    // With the kernel on, each trial merge is word-wise ORs plus the arena
    // validity check instead of `BTreeSet` clones and tree walks.
    let kernel: Option<&CgtLayout> = config.cgt_kernel.then(|| graph.cgt_layout());
    let mut arena = CgtArena::new();
    // WordToAPI scores in milli-units per (query node, api node).
    let score_of = |node: usize, api: NodeId| -> u64 {
        // Positional weighting, mirroring DGGT: earlier query words bind
        // their best candidates first on ties.
        let pos_weight = 1000.0 - 8.0 * node.min(100) as f64;
        w2a.of(node)
            .iter()
            .find(|c| graph.api_node(&c.api) == Some(api))
            .map(|c| (c.score * pos_weight) as u64)
            .unwrap_or(0)
    };
    let edges: Vec<_> = map.edges.iter().filter(|e| !e.paths.is_empty()).collect();
    if edges.is_empty() {
        return Ok(None);
    }

    // Pre-compute per-candidate CGTs, sizes and conflict signatures.
    struct Prepared {
        cgt: Cgt,
        bits: Option<BitCgt>,
        size: usize,
        claim: (NodeId, NodeId),
        sig: Vec<(NodeId, NodeId)>,
        gov_api: Option<NodeId>,
        dep_api: NodeId,
        bonus_milli: u64,
    }
    let prepared: Vec<Vec<Prepared>> = edges
        .iter()
        .map(|e| {
            e.paths
                .iter()
                .map(|pc| {
                    let cgt = Cgt::from_path(&pc.path, graph);
                    let size = cgt.api_count(graph);
                    let n = pc.path.chain.len();
                    Prepared {
                        bits: kernel.map(|l| cgt.to_bits(l)),
                        cgt,
                        size,
                        claim: (pc.path.chain[n - 2], pc.path.chain[n - 1]),
                        sig: or_signature(&pc.path, graph),
                        gov_api: pc.gov_api,
                        dep_api: pc.dep_api,
                        bonus_milli: pc.bonus_milli,
                    }
                })
                .collect()
        })
        .collect();

    let n_nodes = query.nodes.len();
    let mut best: Option<BestCgt> = None;
    let mut best_key: Option<(usize, usize, std::cmp::Reverse<u64>)> = None;
    let mut indices = vec![0usize; edges.len()];
    let mut visited: u64 = 0;

    'combos: loop {
        visited += 1;
        if visited.is_multiple_of(DEADLINE_STRIDE) {
            deadline.check()?;
        }
        stats.enumerated_combinations += 1;

        let chosen: Vec<&Prepared> = indices
            .iter()
            .zip(&prepared)
            .map(|(&i, paths)| &paths[i])
            .collect();

        // API consistency: every query node must resolve to one API across
        // all chosen paths.
        let mut assignment: Vec<Option<NodeId>> = vec![None; n_nodes];
        let mut consistent = true;
        for (edge, p) in edges.iter().zip(&chosen) {
            if let Some(gov) = edge.gov {
                match assignment[gov] {
                    Some(a) if Some(a) != p.gov_api => {
                        consistent = false;
                        break;
                    }
                    _ => assignment[gov] = p.gov_api,
                }
            }
            match assignment[edge.dep] {
                Some(a) if a != p.dep_api => {
                    consistent = false;
                    break;
                }
                _ => assignment[edge.dep] = Some(p.dep_api),
            }
        }

        if consistent {
            let mut skip = false;
            // Two edges must not claim the identical grammar occurrence
            // (each query word is mentioned separately in the codelet).
            for i in 0..chosen.len() {
                for j in (i + 1)..chosen.len() {
                    if chosen[i].claim == chosen[j].claim {
                        skip = true;
                    }
                }
            }
            if !skip && config.grammar_pruning {
                let sigs: Vec<&Vec<(NodeId, NodeId)>> = chosen.iter().map(|p| &p.sig).collect();
                if combination_conflicts(&sigs) {
                    stats.pruned_grammar += 1;
                    skip = true;
                }
            }
            if !skip && config.size_pruning {
                if let Some((bs, _, _)) = best_key {
                    let lower = chosen.iter().map(|p| p.size).max().unwrap_or(0);
                    if lower > bs {
                        stats.pruned_size += 1;
                        skip = true;
                    }
                }
            }
            if !skip {
                stats.merged_combinations += 1;
                if stats
                    .merged_combinations
                    .is_multiple_of(MERGE_DEADLINE_STRIDE)
                {
                    deadline.check()?;
                }
                // Fuse the chosen paths and keep the tree only when valid.
                // Kernel and reference agree predicate-for-predicate; the
                // kernel rejects without materializing set unions, and the
                // reference `Cgt` is built only when the best key improves.
                if let Some(layout) = kernel {
                    let mut fused = arena.alloc(layout);
                    // Each path is individually or-consistent, so a failed
                    // incremental try-merge means the union is
                    // or-inconsistent — invalid either way.
                    let merged = chosen.iter().all(|p| {
                        let pb = p.bits.as_ref().expect("kernel paths carry bits");
                        fused.try_merge(pb, layout)
                    });
                    if merged && arena.is_valid(&fused, layout) {
                        let size = fused.api_count(layout);
                        let path_len: usize = chosen.iter().map(|p| p.size).sum();
                        let pairs: Vec<(usize, NodeId)> = assignment
                            .iter()
                            .enumerate()
                            .filter_map(|(q, a)| a.map(|a| (q, a)))
                            .collect();
                        let score: u64 = pairs.iter().map(|&(q, a)| score_of(q, a)).sum::<u64>()
                            + chosen.iter().map(|p| p.bonus_milli).sum::<u64>();
                        let key = (size, path_len, std::cmp::Reverse(score));
                        if best_key.is_none_or(|bk| key < bk) {
                            best_key = Some(key);
                            let node_claims = edges
                                .iter()
                                .zip(&chosen)
                                .map(|(e, p)| (e.dep, p.claim))
                                .collect();
                            best = Some(BestCgt {
                                cgt: Cgt::from_bits(&fused, layout),
                                size,
                                assignment: pairs,
                                node_claims,
                            });
                        }
                    }
                    arena.release(fused);
                } else {
                    let mut cgt = Cgt::new();
                    for p in &chosen {
                        cgt.merge(&p.cgt);
                    }
                    if cgt.is_valid(graph) {
                        let size = cgt.api_count(graph);
                        let path_len: usize = chosen.iter().map(|p| p.size).sum();
                        let pairs: Vec<(usize, NodeId)> = assignment
                            .iter()
                            .enumerate()
                            .filter_map(|(q, a)| a.map(|a| (q, a)))
                            .collect();
                        let score: u64 = pairs.iter().map(|&(q, a)| score_of(q, a)).sum::<u64>()
                            + chosen.iter().map(|p| p.bonus_milli).sum::<u64>();
                        let key = (size, path_len, std::cmp::Reverse(score));
                        if best_key.is_none_or(|bk| key < bk) {
                            best_key = Some(key);
                            let node_claims = edges
                                .iter()
                                .zip(&chosen)
                                .map(|(e, p)| (e.dep, p.claim))
                                .collect();
                            best = Some(BestCgt {
                                cgt,
                                size,
                                assignment: pairs,
                                node_claims,
                            });
                        }
                    }
                }
            }
        }

        // Odometer.
        let mut pos = indices.len();
        loop {
            if pos == 0 {
                break 'combos;
            }
            pos -= 1;
            indices[pos] += 1;
            if indices[pos] < prepared[pos].len() {
                break;
            }
            indices[pos] = 0;
        }
    }

    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge2path;
    use crate::{QueryEdge, QueryNode, WordToApi};
    use nlquery_grammar::{GrammarGraph, SearchLimits};
    use nlquery_nlp::{ApiCandidate, ApiDoc, DepRel, Pos};
    use std::time::Duration;

    fn domain() -> Domain {
        let graph = GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg
            insert_arg ::= string pos
            string     ::= STRING
            pos        ::= POSITION | START
            "#,
        )
        .unwrap();
        Domain::builder("t")
            .graph(graph)
            .docs(vec![
                ApiDoc::new("INSERT", &["insert"], "inserts", 0),
                ApiDoc::new("STRING", &["string"], "a string", 1),
                ApiDoc::new("POSITION", &["position"], "a position", 1),
                ApiDoc::new("START", &["start"], "the start", 0),
            ])
            .literal_api("STRING")
            .build()
            .unwrap()
    }

    fn qnode(id: usize, word: &str) -> QueryNode {
        QueryNode {
            id,
            words: vec![word.to_string()],
            pos: Pos::Noun,
            literal: None,
        }
    }

    fn cand(api: &str) -> ApiCandidate {
        ApiCandidate {
            api: api.to_string(),
            score: 1.0,
        }
    }

    fn setup() -> (QueryGraph, WordToApi) {
        let q = QueryGraph {
            nodes: vec![qnode(0, "insert"), qnode(1, "string"), qnode(2, "start")],
            edges: vec![
                QueryEdge {
                    gov: 0,
                    dep: 1,
                    rel: DepRel::Obj,
                },
                QueryEdge {
                    gov: 0,
                    dep: 2,
                    rel: DepRel::Nmod("at".into()),
                },
            ],
            root: Some(0),
        };
        let w2a = WordToApi {
            candidates: vec![
                vec![cand("INSERT")],
                vec![cand("STRING")],
                vec![cand("START"), cand("POSITION")],
            ],
        };
        (q, w2a)
    }

    #[test]
    fn finds_smallest_valid_cgt() {
        let d = domain();
        let (q, w2a) = setup();
        let map = edge2path::compute(&q, &w2a, &d, SearchLimits::default());
        let deadline = Deadline::new(Duration::from_secs(5));
        let mut stats = SynthesisStats::default();
        let cfg = SynthesisConfig::hisyn_baseline();
        let best = synthesize(&d, &q, &w2a, &map, &cfg, &deadline, &mut stats)
            .unwrap()
            .unwrap();
        assert_eq!(best.size, 3); // INSERT, STRING, START (or POSITION)
        assert!(best.cgt.is_valid(d.graph()));
        assert!(stats.enumerated_combinations >= 2);
        // All three query nodes assigned.
        assert_eq!(best.assignment.len(), 3);
    }

    #[test]
    fn times_out_on_zero_budget() {
        let d = domain();
        let (q, w2a) = setup();
        let map = edge2path::compute(&q, &w2a, &d, SearchLimits::default());
        // Enough combinations to hit the deadline poll.
        let deadline = Deadline::new(Duration::ZERO);
        let mut stats = SynthesisStats::default();
        let cfg = SynthesisConfig::hisyn_baseline();
        // The tiny search space may finish before the first poll; accept
        // either outcome but require no panic.
        let _ = synthesize(&d, &q, &w2a, &map, &cfg, &deadline, &mut stats);
    }

    #[test]
    fn empty_map_returns_none() {
        let d = domain();
        let (q, w2a) = setup();
        let map = EdgeToPath::default();
        let deadline = Deadline::new(Duration::from_secs(1));
        let mut stats = SynthesisStats::default();
        let cfg = SynthesisConfig::hisyn_baseline();
        assert_eq!(
            synthesize(&d, &q, &w2a, &map, &cfg, &deadline, &mut stats).unwrap(),
            None
        );
    }

    #[test]
    fn grammar_pruning_reduces_merges() {
        let d = domain();
        let (q, w2a) = setup();
        let map = edge2path::compute(&q, &w2a, &d, SearchLimits::default());
        let deadline = Deadline::new(Duration::from_secs(5));

        let mut plain = SynthesisStats::default();
        let cfg_plain = SynthesisConfig::hisyn_baseline();
        synthesize(&d, &q, &w2a, &map, &cfg_plain, &deadline, &mut plain).unwrap();

        let mut pruned = SynthesisStats::default();
        let cfg_pruned = SynthesisConfig::hisyn_baseline().grammar_pruning(true);
        let best = synthesize(&d, &q, &w2a, &map, &cfg_pruned, &deadline, &mut pruned)
            .unwrap()
            .unwrap();
        assert!(pruned.merged_combinations <= plain.merged_combinations);
        assert_eq!(best.size, 3);
    }
}
