//! Grammar paths and the *reversed all-path search* (step 4, EdgeToPath).
//!
//! A *grammar path* connects an ancestor API to a descendant API through the
//! grammar graph. For the dependency edge `insert → string`, the search
//! "starts from the grammar graph node that contains one of the candidate
//! APIs of *string*, and follows the grammar graph backward until reaching a
//! node that contains one of the candidate APIs of *insert*" (§II).
//!
//! A path is stored as the forward *chain* of grammar-graph nodes from the
//! derivation containing the source API down to the sink API node. The APIs
//! *on* the path are the sink plus every API child of every derivation on
//! the chain (the "heads" of the derivations the path passes through) —
//! exactly the APIs that merging this path into a code generation tree drags
//! into the final expression.

use std::cell::Cell;
use std::collections::BTreeSet;
use std::fmt;
use std::time::Instant;

use crate::{GrammarGraph, NodeId};

/// Upward steps between wall-clock polls in the bounded search. Checking
/// `Instant::now()` on every step would dominate the walk; one poll per
/// stride keeps the overshoot past a deadline to a few hundred node visits.
const DEADLINE_POLL_STRIDE: u64 = 256;

/// Signal: the bounded all-path search hit its deadline mid-walk.
///
/// Partial results are deliberately discarded — a list truncated *by time*
/// (rather than by [`SearchLimits`]) would vary run to run and must never be
/// cached or compared against a sequential baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchTimedOut;

/// A wall-clock cutoff polled (with a stride) inside the reversed all-path
/// search, so a pathological search window returns [`SearchTimedOut`]
/// instead of hogging its caller.
#[derive(Debug, Default)]
pub struct SearchDeadline {
    at: Option<Instant>,
    steps: Cell<u64>,
}

impl SearchDeadline {
    /// A deadline that never fires; the bounded searches degrade to the
    /// plain [`SearchLimits`]-only behaviour.
    pub fn unbounded() -> SearchDeadline {
        SearchDeadline::default()
    }

    /// A deadline firing once `at` has passed (`None` = unbounded, matching
    /// an unrepresentable expiry instant such as a `Duration::MAX` budget).
    pub fn until(at: Option<Instant>) -> SearchDeadline {
        SearchDeadline {
            at,
            steps: Cell::new(0),
        }
    }

    /// Whether this deadline can ever fire.
    pub fn is_unbounded(&self) -> bool {
        self.at.is_none()
    }

    /// Strided check: reads the clock every [`DEADLINE_POLL_STRIDE`]-th call
    /// and returns `Err(SearchTimedOut)` once the cutoff has passed.
    fn poll(&self) -> Result<(), SearchTimedOut> {
        let Some(at) = self.at else { return Ok(()) };
        let steps = self.steps.get().wrapping_add(1);
        self.steps.set(steps);
        if steps.is_multiple_of(DEADLINE_POLL_STRIDE) && Instant::now() >= at {
            Err(SearchTimedOut)
        } else {
            Ok(())
        }
    }
}

/// Identifier for a grammar path within one synthesis problem.
///
/// The paper labels paths `2.1`, `3.2`, … — edge index dot path index. The
/// same scheme is kept here for readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId {
    /// Index of the dependency edge this path is a candidate for.
    pub edge: u32,
    /// Index of the path among the edge's candidates.
    pub path: u32,
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.edge + 1, self.path + 1)
    }
}

/// Limits applied to the all-path search to keep recursive grammars finite
/// and bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchLimits {
    /// Maximum number of paths returned per (source, sink) pair.
    pub max_paths: usize,
    /// Maximum chain length (number of grammar nodes on a path).
    pub max_depth: usize,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_paths: 512,
            max_depth: 40,
        }
    }
}

/// A downward walk in the grammar graph from an ancestor API (or the
/// grammar root) to a descendant API.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GrammarPath {
    /// The source API node; `None` for paths that start at the grammar root
    /// (used for the dependency root and, in the HISyn baseline, for orphan
    /// nodes).
    pub source: Option<NodeId>,
    /// The sink API node.
    pub sink: NodeId,
    /// Forward chain of grammar nodes. For API-to-API paths the chain
    /// starts at the derivation node containing `source`; for root paths it
    /// starts at the root non-terminal. It always ends at `sink`.
    pub chain: Vec<NodeId>,
}

impl GrammarPath {
    /// All API nodes on the path: the sink, the source (if any), and every
    /// API child of every derivation node on the chain.
    pub fn api_nodes(&self, graph: &GrammarGraph) -> BTreeSet<NodeId> {
        let mut apis = BTreeSet::new();
        apis.insert(self.sink);
        if let Some(src) = self.source {
            apis.insert(src);
        }
        for &node in &self.chain {
            if graph.is_derivation(node) {
                apis.extend(graph.api_children(node));
            }
        }
        apis
    }

    /// The number of APIs on the path — `size(p)` in §V-C.
    pub fn size(&self, graph: &GrammarGraph) -> usize {
        self.api_nodes(graph).len()
    }

    /// The number of APIs on the path excluding the sink. This is the
    /// *length of a path edge* in the dynamic grammar graph: the sink's own
    /// APIs are already accounted for by the sink node's `min_size`.
    pub fn size_excluding_sink(&self, graph: &GrammarGraph) -> usize {
        let mut apis = self.api_nodes(graph);
        apis.remove(&self.sink);
        apis.len()
    }

    /// The "or" edges on the path: `(non-terminal, derivation)` pairs where
    /// the path commits to one alternative of a rule. Grammar-based pruning
    /// compares these across paths.
    pub fn or_edges(&self, graph: &GrammarGraph) -> Vec<(NodeId, NodeId)> {
        let mut edges = Vec::new();
        for pair in self.chain.windows(2) {
            if graph.is_nonterminal(pair[0]) && graph.is_derivation(pair[1]) {
                edges.push((pair[0], pair[1]));
            }
        }
        edges
    }

    /// The full set of grammar nodes this path contributes to a code
    /// generation tree: the chain plus the API children of every derivation
    /// on the chain, plus the source API.
    pub fn cgt_nodes(&self, graph: &GrammarGraph) -> BTreeSet<NodeId> {
        let mut nodes: BTreeSet<NodeId> = self.chain.iter().copied().collect();
        if let Some(src) = self.source {
            nodes.insert(src);
        }
        for &node in &self.chain {
            if graph.is_derivation(node) {
                nodes.extend(graph.api_children(node));
            }
        }
        nodes
    }

    /// The grammar edges this path contributes to a code generation tree.
    pub fn cgt_edges(&self, graph: &GrammarGraph) -> BTreeSet<(NodeId, NodeId)> {
        let mut edges: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for pair in self.chain.windows(2) {
            edges.insert((pair[0], pair[1]));
        }
        for &node in &self.chain {
            if graph.is_derivation(node) {
                for api in graph.api_children(node) {
                    edges.insert((node, api));
                }
            }
        }
        edges
    }

    /// The topmost node of the chain (the shared-prefix anchor when merging
    /// sibling paths).
    pub fn top(&self) -> NodeId {
        self.chain[0]
    }

    /// Renders the path as `A -> x -> y -> B` using node labels.
    pub fn render(&self, graph: &GrammarGraph) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(src) = self.source {
            parts.push(graph.node(src).label());
        }
        parts.extend(self.chain.iter().map(|&n| graph.node(n).label()));
        parts.join(" -> ")
    }
}

impl GrammarGraph {
    /// All simple downward paths from API `from` to API `to`, found by the
    /// reversed all-path search.
    ///
    /// The search walks *backward* from `to` through reverse edges
    /// (API ← derivation ← non-terminal ← derivation …) and emits a path
    /// whenever the current derivation contains `from` as a direct API
    /// child, stopping that branch. Chains never repeat a node (simple
    /// paths), which keeps recursive grammars finite; `limits` additionally
    /// bounds depth and the number of results.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is not an API node.
    pub fn paths_between(
        &self,
        from: NodeId,
        to: NodeId,
        limits: SearchLimits,
    ) -> Vec<GrammarPath> {
        self.paths_between_deadline(from, to, limits, &SearchDeadline::unbounded())
            .expect("unbounded search cannot time out")
    }

    /// [`GrammarGraph::paths_between`] with a wall-clock cutoff: returns
    /// `Err(SearchTimedOut)` — and no partial results — once `deadline`
    /// fires mid-search.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is not an API node.
    pub fn paths_between_deadline(
        &self,
        from: NodeId,
        to: NodeId,
        limits: SearchLimits,
        deadline: &SearchDeadline,
    ) -> Result<Vec<GrammarPath>, SearchTimedOut> {
        assert!(
            self.is_api(from) && self.is_api(to),
            "endpoints must be API nodes"
        );
        self.search_windows(Target::Api(from), to, limits, deadline)
    }

    /// All simple downward paths from the grammar root to API `to`.
    ///
    /// Used for the dependency-graph root and, in the HISyn baseline, for
    /// orphan nodes (which HISyn attaches to the root).
    ///
    /// # Panics
    ///
    /// Panics if `to` is not an API node.
    pub fn paths_from_root(&self, to: NodeId, limits: SearchLimits) -> Vec<GrammarPath> {
        self.paths_from_root_deadline(to, limits, &SearchDeadline::unbounded())
            .expect("unbounded search cannot time out")
    }

    /// [`GrammarGraph::paths_from_root`] with a wall-clock cutoff: returns
    /// `Err(SearchTimedOut)` — and no partial results — once `deadline`
    /// fires mid-search.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not an API node.
    pub fn paths_from_root_deadline(
        &self,
        to: NodeId,
        limits: SearchLimits,
        deadline: &SearchDeadline,
    ) -> Result<Vec<GrammarPath>, SearchTimedOut> {
        assert!(self.is_api(to), "sink must be an API node");
        self.search_windows(Target::Root, to, limits, deadline)
    }

    /// Iterative-deepening driver: explores chains in increasing length
    /// windows so that, when `limits.max_paths` truncates the result, the
    /// *shortest* paths are the ones kept. Dead branches are pruned with
    /// the precomputed downward-reachability relation.
    fn search_windows(
        &self,
        target: Target,
        to: NodeId,
        limits: SearchLimits,
        deadline: &SearchDeadline,
    ) -> Result<Vec<GrammarPath>, SearchTimedOut> {
        // Nodes worth stepping onto: those reachable downward from the
        // search's origins (the derivations containing the source API, or
        // the grammar root). The per-origin reachability rows are OR-ed
        // into one mask up front, so every upward step costs a single bit
        // test instead of a scan over all origins.
        let mut origin_reach = vec![0u64; self.len().div_ceil(64)];
        let mut or_row = |origin: NodeId| {
            for (acc, &word) in origin_reach.iter_mut().zip(self.reach_row(origin)) {
                *acc |= word;
            }
        };
        match target {
            Target::Api(from) => {
                for &origin in &self.node(from).parents {
                    or_row(origin);
                }
            }
            Target::Root => or_row(self.root()),
        }
        let mut results = Vec::new();
        const WINDOW: usize = 4;
        let mut lo = 0usize;
        while lo < limits.max_depth && results.len() < limits.max_paths {
            let hi = (lo + WINDOW).min(limits.max_depth);
            let mut window_results = Vec::new();
            let mut chain: Vec<NodeId> = vec![to];
            let mut on_chain = vec![false; self.len()];
            on_chain[to.index()] = true;
            self.search_up(
                target,
                to,
                &mut chain,
                &mut on_chain,
                (lo, hi),
                limits.max_paths - results.len(),
                &origin_reach,
                deadline,
                &mut window_results,
            )?;
            window_results.sort();
            results.extend(window_results);
            lo = hi;
        }
        results.truncate(limits.max_paths);
        Ok(results)
    }

    #[allow(clippy::too_many_arguments)]
    fn search_up(
        &self,
        target: Target,
        sink: NodeId,
        chain: &mut Vec<NodeId>,
        on_chain: &mut [bool],
        window: (usize, usize),
        max_results: usize,
        origin_reach: &[u64],
        deadline: &SearchDeadline,
        results: &mut Vec<GrammarPath>,
    ) -> Result<(), SearchTimedOut> {
        let (emit_above, depth_cap) = window;
        if results.len() >= max_results || chain.len() >= depth_cap {
            return Ok(());
        }
        deadline.poll()?;
        let current = *chain.last().expect("chain is never empty");
        // Walk to each parent. The chain is built in backward (sink-first)
        // order and reversed on emission.
        for &parent in &self.node(current).parents {
            if on_chain[parent.index()] {
                continue;
            }
            // Dead-branch pruning: the parent must be on a downward walk
            // from one of the origins, or no emission can ever happen
            // above it.
            if origin_reach[parent.index() / 64] & (1u64 << (parent.index() % 64)) == 0 {
                continue;
            }
            chain.push(parent);
            on_chain[parent.index()] = true;

            let mut matched = false;
            if self.is_derivation(parent) {
                if let Target::Api(from) = target {
                    // A derivation "contains" an API if it is a direct
                    // child. Require a non-trivial chain when from == sink.
                    let contains = self
                        .node(parent)
                        .children
                        .iter()
                        .any(|&c| c == from && (from != sink || chain.len() > 2));
                    if contains {
                        matched = true;
                        if chain.len() > emit_above {
                            let mut fwd: Vec<NodeId> = chain.clone();
                            fwd.reverse();
                            results.push(GrammarPath {
                                source: Some(from),
                                sink,
                                chain: fwd,
                            });
                        }
                    }
                }
            } else if self.is_nonterminal(parent) {
                if let Target::Root = target {
                    if parent == self.root() {
                        matched = true;
                        if chain.len() > emit_above {
                            let mut fwd: Vec<NodeId> = chain.clone();
                            fwd.reverse();
                            results.push(GrammarPath {
                                source: None,
                                sink,
                                chain: fwd,
                            });
                        }
                    }
                }
            }

            // "Until reaching": a matched branch stops; otherwise continue
            // upward. A timeout aborts the whole walk — the unwound
            // chain state is dead anyway.
            if !matched {
                self.search_up(
                    target,
                    sink,
                    chain,
                    on_chain,
                    window,
                    max_results,
                    origin_reach,
                    deadline,
                    results,
                )?;
            }

            on_chain[parent.index()] = false;
            chain.pop();
        }
        Ok(())
    }
}

#[derive(Clone, Copy)]
enum Target {
    Api(NodeId),
    Root,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example grammar (Figure 4), extended with the
    /// iteration sub-grammar so paths pass through intermediate API heads.
    fn paper_grammar() -> GrammarGraph {
        GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg | DELETE delete_arg
            insert_arg ::= string pos iter
            delete_arg ::= string
            string     ::= STRING
            pos        ::= POSITION | START | pos_arg
            pos_arg    ::= AFTER string | STARTFROM string
            iter       ::= ITERATIONSCOPE iter_arg | LINESCOPE
            iter_arg   ::= scope cond
            scope      ::= LINESCOPE | DOCSCOPE
            cond       ::= CONTAINS entity | ALL
            entity     ::= NUMBERTOKEN | STRING
            "#,
        )
        .unwrap()
    }

    fn path_strings(g: &GrammarGraph, paths: &[GrammarPath]) -> Vec<String> {
        paths.iter().map(|p| p.render(g)).collect()
    }

    #[test]
    fn finds_single_path() {
        let g = paper_grammar();
        let insert = g.api_node("INSERT").unwrap();
        let position = g.api_node("POSITION").unwrap();
        let paths = g.paths_between(insert, position, SearchLimits::default());
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.source, Some(insert));
        assert_eq!(p.sink, position);
        assert_eq!(
            p.top(),
            g.node(g.nonterminal_node("command").unwrap()).children[0]
        );
    }

    #[test]
    fn finds_multiple_paths_for_ambiguous_sink() {
        let g = paper_grammar();
        let insert = g.api_node("INSERT").unwrap();
        let string = g.api_node("STRING").unwrap();
        // STRING is reachable from INSERT via insert_arg.string, via
        // pos.pos_arg.AFTER/STARTFROM.string, and via iter..cond.entity.
        let paths = g.paths_between(insert, string, SearchLimits::default());
        assert!(
            paths.len() >= 4,
            "expected at least 4 INSERT->STRING paths, got: {:#?}",
            path_strings(&g, &paths)
        );
        for p in &paths {
            assert_eq!(p.sink, string);
            assert!(p.chain.len() >= 3);
        }
    }

    #[test]
    fn path_apis_include_intermediate_heads() {
        let g = paper_grammar();
        let insert = g.api_node("INSERT").unwrap();
        let numbertoken = g.api_node("NUMBERTOKEN").unwrap();
        let paths = g.paths_between(insert, numbertoken, SearchLimits::default());
        assert_eq!(paths.len(), 1, "{:#?}", path_strings(&g, &paths));
        let apis: Vec<String> = paths[0]
            .api_nodes(&g)
            .into_iter()
            .map(|n| g.node(n).label())
            .collect();
        // INSERT, ITERATIONSCOPE, CONTAINS, NUMBERTOKEN all sit on the path.
        assert!(apis.contains(&"INSERT".to_string()));
        assert!(apis.contains(&"ITERATIONSCOPE".to_string()));
        assert!(apis.contains(&"CONTAINS".to_string()));
        assert!(apis.contains(&"NUMBERTOKEN".to_string()));
        assert_eq!(paths[0].size(&g), 4);
        assert_eq!(paths[0].size_excluding_sink(&g), 3);
    }

    #[test]
    fn no_path_when_not_descendant() {
        let g = paper_grammar();
        let string = g.api_node("STRING").unwrap();
        let insert = g.api_node("INSERT").unwrap();
        assert!(g
            .paths_between(string, insert, SearchLimits::default())
            .is_empty());
    }

    #[test]
    fn root_paths_reach_start_symbol() {
        let g = paper_grammar();
        let insert = g.api_node("INSERT").unwrap();
        let paths = g.paths_from_root(insert, SearchLimits::default());
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].source, None);
        assert_eq!(paths[0].chain[0], g.root());
    }

    #[test]
    fn root_paths_to_deep_api_are_plural() {
        let g = paper_grammar();
        let string = g.api_node("STRING").unwrap();
        let paths = g.paths_from_root(string, SearchLimits::default());
        // Through INSERT's string/pos_arg/entity slots and DELETE's string.
        assert!(
            paths.len() >= 5,
            "expected >=5 root->STRING paths, got {:#?}",
            path_strings(&g, &paths)
        );
    }

    #[test]
    fn or_edges_identified() {
        let g = paper_grammar();
        let insert = g.api_node("INSERT").unwrap();
        let position = g.api_node("POSITION").unwrap();
        let paths = g.paths_between(insert, position, SearchLimits::default());
        let or_edges = paths[0].or_edges(&g);
        let pos_nt = g.nonterminal_node("pos").unwrap();
        assert!(or_edges.iter().any(|&(nt, _)| nt == pos_nt));
    }

    #[test]
    fn recursion_stays_finite() {
        let g = GrammarGraph::parse(
            r#"
            expr ::= NOT expr | AND expr expr | ATOM
            "#,
        )
        .unwrap();
        let not = g.api_node("NOT").unwrap();
        let atom = g.api_node("ATOM").unwrap();
        let paths = g.paths_between(not, atom, SearchLimits::default());
        // Simple-path restriction: chains cannot revisit the `expr`
        // non-terminal, so only the one-step nesting appears.
        assert!(!paths.is_empty());
        for p in &paths {
            let mut seen = std::collections::BTreeSet::new();
            for &n in &p.chain {
                assert!(seen.insert(n), "chain revisits {}", g.node(n).label());
            }
        }
    }

    #[test]
    fn self_nesting_through_same_derivation_is_not_a_simple_path() {
        // API nodes are shared, so nesting NOT under itself through the
        // single `NOT expr` derivation would revisit that derivation node;
        // the simple-path restriction rejects it.
        let g = GrammarGraph::parse("expr ::= NOT expr | ATOM").unwrap();
        let not = g.api_node("NOT").unwrap();
        assert!(g
            .paths_between(not, not, SearchLimits::default())
            .is_empty());
    }

    #[test]
    fn self_nesting_through_distinct_occurrences_is_found() {
        // When the API occurs in two distinct derivations, a genuine
        // self-path exists and is non-trivial.
        let g = GrammarGraph::parse(
            r#"
            a ::= NOT b
            b ::= NOT c | ATOM
            c ::= ATOM
            "#,
        )
        .unwrap();
        let not = g.api_node("NOT").unwrap();
        let paths = g.paths_between(not, not, SearchLimits::default());
        assert_eq!(paths.len(), 1);
        assert!(paths[0].chain.len() > 2, "trivial self-path emitted");
    }

    #[test]
    fn limits_cap_results() {
        let g = paper_grammar();
        let insert = g.api_node("INSERT").unwrap();
        let string = g.api_node("STRING").unwrap();
        let limited = g.paths_between(
            insert,
            string,
            SearchLimits {
                max_paths: 2,
                max_depth: 40,
            },
        );
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn depth_limit_prunes_long_chains() {
        let g = paper_grammar();
        let insert = g.api_node("INSERT").unwrap();
        let numbertoken = g.api_node("NUMBERTOKEN").unwrap();
        let limited = g.paths_between(
            insert,
            numbertoken,
            SearchLimits {
                max_paths: 512,
                max_depth: 4,
            },
        );
        assert!(limited.is_empty());
    }

    #[test]
    fn cgt_edges_are_consistent_with_nodes() {
        let g = paper_grammar();
        let insert = g.api_node("INSERT").unwrap();
        let numbertoken = g.api_node("NUMBERTOKEN").unwrap();
        let paths = g.paths_between(insert, numbertoken, SearchLimits::default());
        let nodes = paths[0].cgt_nodes(&g);
        for (a, b) in paths[0].cgt_edges(&g) {
            assert!(nodes.contains(&a) && nodes.contains(&b));
            assert!(g.node(a).children.contains(&b));
        }
    }

    #[test]
    fn path_id_renders_like_the_paper() {
        let id = PathId { edge: 1, path: 0 };
        assert_eq!(id.to_string(), "2.1");
    }

    /// `layers` stacked diamonds: every layer doubles the number of
    /// root→SINK chains, so path count is 2^layers — an exploding search
    /// space under a permissive `max_paths`.
    fn diamond_grammar(layers: usize) -> GrammarGraph {
        let mut src = String::new();
        for i in 0..layers {
            let next = if i + 1 == layers {
                "last".to_string()
            } else {
                format!("s{}", i + 1)
            };
            src.push_str(&format!("s{i} ::= A{i} {next} | B{i} {next}\n"));
        }
        src.push_str("last ::= SINK\n");
        GrammarGraph::parse(&src).unwrap()
    }

    #[test]
    fn unbounded_deadline_matches_plain_search() {
        let g = paper_grammar();
        let insert = g.api_node("INSERT").unwrap();
        let string = g.api_node("STRING").unwrap();
        let plain = g.paths_between(insert, string, SearchLimits::default());
        let bounded = g
            .paths_between_deadline(
                insert,
                string,
                SearchLimits::default(),
                &SearchDeadline::unbounded(),
            )
            .unwrap();
        assert_eq!(plain, bounded);
    }

    #[test]
    fn expired_deadline_times_out_exploding_search() {
        let g = diamond_grammar(24);
        let sink = g.api_node("SINK").unwrap();
        let limits = SearchLimits {
            max_paths: usize::MAX,
            max_depth: 64,
        };
        let deadline = SearchDeadline::until(Some(Instant::now()));
        let started = Instant::now();
        let r = g.paths_from_root_deadline(sink, limits, &deadline);
        assert_eq!(r, Err(SearchTimedOut));
        // 2^24 paths would take far longer; the strided poll must abort the
        // walk almost immediately once the cutoff has passed.
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "timed-out search still ran {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let g = paper_grammar();
        let string = g.api_node("STRING").unwrap();
        let deadline =
            SearchDeadline::until(Instant::now().checked_add(std::time::Duration::from_secs(60)));
        let r = g.paths_from_root_deadline(string, SearchLimits::default(), &deadline);
        assert_eq!(
            r.unwrap(),
            g.paths_from_root(string, SearchLimits::default())
        );
    }
}
