//! The directed *grammar graph* representation of a context-free grammar.
//!
//! Following the paper (§II, §IV-A), a grammar graph has three node kinds:
//!
//! * **non-terminal nodes** — one per grammar rule (e.g. `insert_arg`);
//! * **derivation nodes** — one per alternative right-hand side of a rule
//!   (e.g. `string pos iter`);
//! * **API nodes** — one per terminal API name (e.g. `STRING`), shared
//!   across all the derivations that mention it.
//!
//! and two edge kinds:
//!
//! * **"or" edges** (non-terminal → derivation) — alternatives; choosing two
//!   different "or" edges out of the same non-terminal is grammatically
//!   impossible, the fact exploited by grammar-based pruning;
//! * **concatenation edges** (derivation → symbol) — the ordered symbols of
//!   one right-hand side.

use std::collections::BTreeSet;
use std::fmt;

use crate::{Grammar, GrammarError, Symbol};

/// Identifier of a node inside a [`GrammarGraph`].
///
/// `NodeId`s are dense indices; they are only meaningful relative to the
/// graph that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index.
    ///
    /// Useful for tests and serialization; an id is only meaningful for
    /// the graph it came from.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of a grammar-graph node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A non-terminal symbol of the grammar.
    NonTerminal {
        /// The rule name.
        name: String,
    },
    /// One alternative right-hand side of a rule.
    Derivation {
        /// Name of the rule this derivation belongs to.
        rule: String,
        /// Index of the alternative within the rule.
        alt: usize,
    },
    /// A terminal API symbol.
    Api {
        /// The API name as written in the grammar.
        name: String,
    },
}

/// A node of the grammar graph: its kind plus adjacency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrammarNode {
    /// What the node represents.
    pub kind: NodeKind,
    /// Outgoing edges in grammar order.
    pub children: Vec<NodeId>,
    /// Incoming edges (reverse adjacency), used by the reversed all-path
    /// search.
    pub parents: Vec<NodeId>,
    /// Precomputed human-readable label, so hot callers can borrow it
    /// instead of formatting a fresh `String` per call.
    label: String,
}

impl GrammarNode {
    /// A short human-readable label for debugging and rendering (owned;
    /// prefer [`GrammarNode::label_str`] on hot paths).
    pub fn label(&self) -> String {
        self.label.clone()
    }

    /// The label as a borrowed string — no allocation.
    pub fn label_str(&self) -> &str {
        &self.label
    }
}

/// The kind of a grammar-graph edge, derivable from its endpoint kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Non-terminal → derivation: mutually exclusive alternatives.
    Or,
    /// Derivation → symbol: concatenated sibling.
    Concat,
}

/// A directed grammar graph built from a [`Grammar`].
///
/// # Example
///
/// ```rust
/// use nlquery_grammar::{Grammar, GrammarGraph, NodeKind};
///
/// let g = Grammar::parse("pos ::= POSITION | START")?;
/// let graph = GrammarGraph::from_grammar(&g)?;
/// let pos = graph.nonterminal_node("pos").unwrap();
/// // `pos` has two or-edges, one per alternative.
/// assert_eq!(graph.node(pos).children.len(), 2);
/// # Ok::<(), nlquery_grammar::GrammarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GrammarGraph {
    nodes: Vec<GrammarNode>,
    root: NodeId,
    api_index: Vec<(String, NodeId)>,
    nt_index: Vec<(String, NodeId)>,
    /// For every API node, the set of API nodes reachable strictly below it
    /// (descendants through any of its derivations' sibling subtrees).
    descendants: Vec<BTreeSet<NodeId>>,
    /// For every API node, the APIs that can appear as its *direct*
    /// arguments: reachable from its derivations' sibling subtrees without
    /// passing through a derivation headed by another API.
    direct_args: Vec<BTreeSet<NodeId>>,
    /// Dense downward reachability: `reach[i]` has bit `j` set when node
    /// `j` is reachable from node `i` following child edges (including
    /// `i` itself). Used to prune dead branches in the reversed all-path
    /// search.
    reach: Vec<Vec<u64>>,
    /// Precomputed tables for the bitset CGT kernel (see [`crate::kernel`]).
    layout: crate::CgtLayout,
}

impl GrammarGraph {
    /// Builds the grammar graph of `grammar`.
    ///
    /// # Errors
    ///
    /// Returns [`GrammarError::Empty`] if the grammar has no rules (already
    /// prevented by [`Grammar::parse`], but validated again for direct
    /// construction paths).
    pub fn from_grammar(grammar: &Grammar) -> Result<GrammarGraph, GrammarError> {
        if grammar.rules().is_empty() {
            return Err(GrammarError::Empty);
        }
        let mut nodes: Vec<GrammarNode> = Vec::new();
        let mut api_index: Vec<(String, NodeId)> = Vec::new();
        let mut nt_index: Vec<(String, NodeId)> = Vec::new();

        let push = |nodes: &mut Vec<GrammarNode>, kind: NodeKind| -> NodeId {
            let id = NodeId(nodes.len() as u32);
            let label = match &kind {
                NodeKind::NonTerminal { name } => name.clone(),
                NodeKind::Derivation { rule, alt } => format!("{rule}#{alt}"),
                NodeKind::Api { name } => name.clone(),
            };
            nodes.push(GrammarNode {
                kind,
                children: Vec::new(),
                parents: Vec::new(),
                label,
            });
            id
        };

        // Pass 1: create non-terminal nodes.
        for rule in grammar.rules() {
            let id = push(
                &mut nodes,
                NodeKind::NonTerminal {
                    name: rule.name.clone(),
                },
            );
            nt_index.push((rule.name.clone(), id));
        }
        nt_index.sort();

        let find_nt = |index: &[(String, NodeId)], name: &str| -> NodeId {
            let pos = index
                .binary_search_by(|(n, _)| n.as_str().cmp(name))
                .expect("validated grammar references only defined non-terminals");
            index[pos].1
        };

        // Pass 2: derivation and API nodes plus edges.
        for rule in grammar.rules() {
            let nt_id = find_nt(&nt_index, &rule.name);
            for (alt_idx, alt) in rule.alternatives.iter().enumerate() {
                let d_id = push(
                    &mut nodes,
                    NodeKind::Derivation {
                        rule: rule.name.clone(),
                        alt: alt_idx,
                    },
                );
                nodes[nt_id.index()].children.push(d_id);
                nodes[d_id.index()].parents.push(nt_id);
                for sym in &alt.symbols {
                    let child_id = match sym {
                        Symbol::NonTerminal(name) => find_nt(&nt_index, name),
                        Symbol::Api(name) => {
                            match api_index.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                                Ok(pos) => api_index[pos].1,
                                Err(pos) => {
                                    let id = push(&mut nodes, NodeKind::Api { name: name.clone() });
                                    api_index.insert(pos, (name.clone(), id));
                                    id
                                }
                            }
                        }
                    };
                    nodes[d_id.index()].children.push(child_id);
                    nodes[child_id.index()].parents.push(d_id);
                }
            }
        }

        let root = find_nt(&nt_index, grammar.start_symbol());
        let mut graph = GrammarGraph {
            nodes,
            root,
            api_index,
            nt_index,
            descendants: Vec::new(),
            direct_args: Vec::new(),
            reach: Vec::new(),
            layout: crate::CgtLayout::default(),
        };
        graph.reach = graph.compute_reach();
        graph.descendants = graph.compute_descendants();
        graph.direct_args = graph.compute_direct_args();
        graph.layout = crate::CgtLayout::build(&graph);
        Ok(graph)
    }

    /// Convenience: parse BNF text and build the graph in one step.
    ///
    /// # Errors
    ///
    /// Propagates any [`GrammarError`] from parsing or construction.
    pub fn parse(bnf: &str) -> Result<GrammarGraph, GrammarError> {
        GrammarGraph::from_grammar(&Grammar::parse(bnf)?)
    }

    /// The node payload for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &GrammarNode {
        &self.nodes[id.index()]
    }

    /// Number of nodes in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes (never true for a built graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root non-terminal node (start symbol).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Looks up the API node with the given terminal name.
    pub fn api_node(&self, name: &str) -> Option<NodeId> {
        self.api_index
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|pos| self.api_index[pos].1)
    }

    /// Looks up the non-terminal node with the given rule name.
    pub fn nonterminal_node(&self, name: &str) -> Option<NodeId> {
        self.nt_index
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|pos| self.nt_index[pos].1)
    }

    /// All API nodes with their names, sorted by name.
    pub fn api_nodes(&self) -> &[(String, NodeId)] {
        &self.api_index
    }

    /// The kind of the edge `from → to`.
    ///
    /// Returns `None` if there is no such edge.
    pub fn edge_kind(&self, from: NodeId, to: NodeId) -> Option<EdgeKind> {
        if !self.nodes[from.index()].children.contains(&to) {
            return None;
        }
        match self.nodes[from.index()].kind {
            NodeKind::NonTerminal { .. } => Some(EdgeKind::Or),
            NodeKind::Derivation { .. } => Some(EdgeKind::Concat),
            NodeKind::Api { .. } => None,
        }
    }

    /// Whether `id` is an API node.
    pub fn is_api(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Api { .. })
    }

    /// Whether `id` is a non-terminal node.
    pub fn is_nonterminal(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::NonTerminal { .. })
    }

    /// Whether `id` is a derivation node.
    pub fn is_derivation(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Derivation { .. })
    }

    /// The API children of a derivation node, in grammar order.
    pub fn api_children(&self, derivation: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[derivation.index()]
            .children
            .iter()
            .copied()
            .filter(|&c| self.is_api(c))
    }

    /// The API nodes reachable strictly below API node `api` (through the
    /// sibling subtrees of any derivation containing it).
    ///
    /// This is the ancestor/descendant relation used by orphan-node
    /// relocation (§V-B): `b ∈ descendant_apis(a)` iff the grammar allows a
    /// codelet in which `b` appears inside an argument of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `api` is not an API node of this graph.
    pub fn descendant_apis(&self, api: NodeId) -> &BTreeSet<NodeId> {
        assert!(self.is_api(api), "descendant_apis requires an API node");
        &self.descendants[api.index()]
    }

    /// Whether API `b` can appear inside (an argument subtree of) API `a`.
    pub fn is_api_descendant(&self, a: NodeId, b: NodeId) -> bool {
        self.descendant_apis(a).contains(&b)
    }

    /// The APIs that can be a *direct* argument of API `api`: reachable
    /// from a derivation containing `api` without crossing a derivation
    /// headed by another API. `isVirtual` is a direct argument of
    /// `cxxMethodDecl`; `floatLiteral` is not a direct argument of
    /// `callExpr` (it sits behind `hasArgument`).
    ///
    /// # Panics
    ///
    /// Panics if `api` is not an API node of this graph.
    pub fn direct_api_args(&self, api: NodeId) -> &BTreeSet<NodeId> {
        assert!(self.is_api(api), "direct_api_args requires an API node");
        &self.direct_args[api.index()]
    }

    /// Whether `b` can be a direct argument of `a` (see
    /// [`GrammarGraph::direct_api_args`]).
    pub fn is_direct_api_arg(&self, a: NodeId, b: NodeId) -> bool {
        self.direct_api_args(a).contains(&b)
    }

    fn compute_direct_args(&self) -> Vec<BTreeSet<NodeId>> {
        // reach-without-crossing-API-headed-derivations, to a fixpoint.
        let n = self.nodes.len();
        let mut reach: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for id in self.node_ids() {
                if self.is_api(id) {
                    continue;
                }
                let mut merged: BTreeSet<NodeId> = BTreeSet::new();
                if self.is_derivation(id) {
                    let apis: Vec<NodeId> = self.api_children(id).collect();
                    if apis.is_empty() {
                        for &child in &self.nodes[id.index()].children {
                            merged.extend(reach[child.index()].iter().copied());
                        }
                    } else {
                        // An API-headed derivation contributes only its
                        // head(s); what lies below are *their* arguments.
                        merged.extend(apis);
                    }
                } else {
                    for &child in &self.nodes[id.index()].children {
                        merged.extend(reach[child.index()].iter().copied());
                    }
                }
                if merged.len() > reach[id.index()].len() {
                    reach[id.index()] = merged;
                    changed = true;
                }
            }
        }
        let mut result: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];
        for id in self.node_ids() {
            if !self.is_api(id) {
                continue;
            }
            let mut set = BTreeSet::new();
            for &derivation in &self.nodes[id.index()].parents {
                for &sibling in &self.nodes[derivation.index()].children {
                    if sibling != id && !self.is_api(sibling) {
                        set.extend(reach[sibling.index()].iter().copied());
                    }
                }
            }
            result[id.index()] = set;
        }
        result
    }

    /// Whether node `to` is reachable from node `from` following child
    /// edges (reflexive: every node reaches itself).
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        let word = to.index() / 64;
        let bit = to.index() % 64;
        self.reach[from.index()][word] & (1u64 << bit) != 0
    }

    /// The dense downward-reachability row of `from` (one bit per node).
    pub(crate) fn reach_row(&self, from: NodeId) -> &[u64] {
        &self.reach[from.index()]
    }

    /// The precomputed bitset-kernel layout of this grammar (see
    /// [`crate::kernel`]).
    pub fn cgt_layout(&self) -> &crate::CgtLayout {
        &self.layout
    }

    fn compute_reach(&self) -> Vec<Vec<u64>> {
        let n = self.nodes.len();
        let words = n.div_ceil(64);
        let mut reach = vec![vec![0u64; words]; n];
        for i in 0..n {
            reach[i][i / 64] |= 1u64 << (i % 64);
        }
        // Fixpoint: the graph may be cyclic.
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                // Union children's sets into node i without aliasing.
                let children = self.nodes[i].children.clone();
                for child in children {
                    let (a, b) = if i < child.index() {
                        let (lo, hi) = reach.split_at_mut(child.index());
                        (&mut lo[i], &hi[0][..])
                    } else if i > child.index() {
                        let (lo, hi) = reach.split_at_mut(i);
                        (&mut hi[0], &lo[child.index()][..])
                    } else {
                        continue;
                    };
                    for (w, &cw) in a.iter_mut().zip(b.iter()) {
                        let merged = *w | cw;
                        if merged != *w {
                            *w = merged;
                            changed = true;
                        }
                    }
                }
            }
        }
        reach
    }

    /// A stable hash of the graph's full structure: every node's kind,
    /// label and ordered child edges, plus the root. Two graphs built from
    /// the same BNF hash equally; any rule change — added alternative,
    /// reordered symbol, renamed API — changes the hash. Used to bind
    /// on-disk artifacts (warm-state snapshots, AOT compilation caches) to
    /// the grammar they were computed against.
    ///
    /// The hash is [`std::hash::DefaultHasher`]-based: stable within one
    /// compiled binary, not guaranteed across Rust releases — exactly the
    /// stability snapshot invalidation needs (an artifact from a different
    /// build is rejected and recomputed).
    pub fn content_hash(&self) -> u64 {
        use std::hash::{DefaultHasher, Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.nodes.len().hash(&mut h);
        self.root.0.hash(&mut h);
        for node in &self.nodes {
            let kind: u8 = match node.kind {
                NodeKind::NonTerminal { .. } => 0,
                NodeKind::Derivation { .. } => 1,
                NodeKind::Api { .. } => 2,
            };
            kind.hash(&mut h);
            node.label.hash(&mut h);
            node.children.len().hash(&mut h);
            for child in &node.children {
                child.0.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Corpus-driven graph packing (ahead-of-time domain compilation).
    ///
    /// Given the set of API nodes any corpus query can actually target
    /// (`live_apis`), builds a packed copy of the graph containing only the
    /// nodes that both (a) can derive at least one live API and (b) are
    /// reachable from the root — every other grammar region is dead weight
    /// for this corpus. Node order is preserved under the remap, and all
    /// derived tables (reachability, descendants, direct arguments, the
    /// bitset-kernel layout) are recomputed eagerly on the packed graph.
    ///
    /// Correctness note: a grammar path whose sink is a live API can only
    /// visit nodes that reach that API, i.e. live nodes — so for live
    /// endpoints, path searches over the packed graph are (modulo the node
    /// remap) identical to searches over the full graph. The differential
    /// tests assert exactly this.
    ///
    /// The root is always kept (a graph must have one) even when the live
    /// set is empty.
    pub fn prune_to_corpus(&self, live_apis: &[NodeId]) -> PrunedGraph {
        let n = self.nodes.len();
        // live[i] ⇔ node i derives (reaches) at least one live API.
        let mut live = vec![false; n];
        for (i, slot) in live.iter_mut().enumerate() {
            let from = NodeId(i as u32);
            *slot = live_apis.iter().any(|&api| self.reaches(from, api));
        }
        let root_unreachable_live = (0..n)
            .filter(|&i| live[i] && !self.reaches(self.root, NodeId(i as u32)))
            .count();
        let kept: Vec<bool> = (0..n)
            .map(|i| {
                NodeId(i as u32) == self.root
                    || (live[i] && self.reaches(self.root, NodeId(i as u32)))
            })
            .collect();

        // Order-preserving remap.
        let mut full_to_packed: Vec<Option<NodeId>> = vec![None; n];
        let mut packed_to_full: Vec<NodeId> = Vec::new();
        for i in 0..n {
            if kept[i] {
                full_to_packed[i] = Some(NodeId(packed_to_full.len() as u32));
                packed_to_full.push(NodeId(i as u32));
            }
        }

        let full_edges: usize = self.nodes.iter().map(|node| node.children.len()).sum();
        let mut packed_edges = 0usize;
        let nodes: Vec<GrammarNode> = packed_to_full
            .iter()
            .map(|&full_id| {
                let node = &self.nodes[full_id.index()];
                let children: Vec<NodeId> = node
                    .children
                    .iter()
                    .filter_map(|c| full_to_packed[c.index()])
                    .collect();
                packed_edges += children.len();
                let parents: Vec<NodeId> = node
                    .parents
                    .iter()
                    .filter_map(|p| full_to_packed[p.index()])
                    .collect();
                GrammarNode {
                    kind: node.kind.clone(),
                    children,
                    parents,
                    label: node.label.clone(),
                }
            })
            .collect();

        let remap_index = |index: &[(String, NodeId)]| -> Vec<(String, NodeId)> {
            index
                .iter()
                .filter_map(|(name, id)| {
                    full_to_packed[id.index()].map(|packed| (name.clone(), packed))
                })
                .collect()
        };

        let mut graph = GrammarGraph {
            nodes,
            root: full_to_packed[self.root.index()].expect("root is always kept"),
            api_index: remap_index(&self.api_index),
            nt_index: remap_index(&self.nt_index),
            descendants: Vec::new(),
            direct_args: Vec::new(),
            reach: Vec::new(),
            layout: crate::CgtLayout::default(),
        };
        graph.reach = graph.compute_reach();
        graph.descendants = graph.compute_descendants();
        graph.direct_args = graph.compute_direct_args();
        graph.layout = crate::CgtLayout::build(&graph);

        PrunedGraph {
            dropped_nodes: n - packed_to_full.len(),
            dropped_edges: full_edges - packed_edges,
            exact: root_unreachable_live == 0,
            graph,
            full_to_packed,
            packed_to_full,
        }
    }

    fn compute_descendants(&self) -> Vec<BTreeSet<NodeId>> {
        // First compute, for every node, the set of API nodes reachable by
        // walking downward (through or- and concat-edges). Iterate to a
        // fixpoint because grammars may be recursive.
        let n = self.nodes.len();
        let mut reach: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];
        for id in self.node_ids() {
            if self.is_api(id) {
                reach[id.index()].insert(id);
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for id in self.node_ids() {
                if self.is_api(id) {
                    continue;
                }
                let mut merged: BTreeSet<NodeId> = BTreeSet::new();
                for &child in &self.nodes[id.index()].children {
                    merged.extend(reach[child.index()].iter().copied());
                }
                if merged.len() > reach[id.index()].len() {
                    reach[id.index()] = merged;
                    changed = true;
                }
            }
        }
        // An API's descendants are the APIs reachable from the non-API
        // siblings in any derivation that contains it, excluding itself
        // unless genuinely reachable below.
        let mut result: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];
        for id in self.node_ids() {
            if !self.is_api(id) {
                continue;
            }
            let mut set = BTreeSet::new();
            for &derivation in &self.nodes[id.index()].parents {
                for &sibling in &self.nodes[derivation.index()].children {
                    if sibling != id && !self.is_api(sibling) {
                        set.extend(reach[sibling.index()].iter().copied());
                    }
                }
            }
            result[id.index()] = set;
        }
        result
    }
}

/// The result of [`GrammarGraph::prune_to_corpus`]: a packed graph over the
/// corpus-live region, plus the node remap between the full and packed id
/// spaces and the pruning census.
///
/// The packed graph is a fully functional [`GrammarGraph`] — same derived
/// tables, same invariants — over a (usually much) smaller node set. The
/// remap vectors translate between the two id spaces so results computed on
/// one can be compared against the other.
#[derive(Debug, Clone)]
pub struct PrunedGraph {
    graph: GrammarGraph,
    /// `full_to_packed[full.index()]` is the packed id of that node, or
    /// `None` when the node was dropped.
    full_to_packed: Vec<Option<NodeId>>,
    /// `packed_to_full[packed.index()]` is the full-graph id the packed
    /// node came from. Strictly increasing (the remap preserves order).
    packed_to_full: Vec<NodeId>,
    dropped_nodes: usize,
    dropped_edges: usize,
    exact: bool,
}

impl PrunedGraph {
    /// The packed graph.
    pub fn graph(&self) -> &GrammarGraph {
        &self.graph
    }

    /// Maps a packed node id back to its full-graph id.
    pub fn to_full(&self, packed: NodeId) -> NodeId {
        self.packed_to_full[packed.index()]
    }

    /// Maps a full-graph node id to its packed id, or `None` if the node
    /// was pruned away.
    pub fn to_packed(&self, full: NodeId) -> Option<NodeId> {
        self.full_to_packed.get(full.index()).copied().flatten()
    }

    /// How many full-graph nodes the pruning dropped.
    pub fn dropped_nodes(&self) -> usize {
        self.dropped_nodes
    }

    /// How many full-graph edges the pruning dropped.
    pub fn dropped_edges(&self) -> usize {
        self.dropped_edges
    }

    /// `true` when every corpus-live node survived — i.e. no live node was
    /// unreachable from the root. Always expected in practice; `false`
    /// signals a malformed grammar region worth surfacing.
    pub fn exact(&self) -> bool {
        self.exact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> GrammarGraph {
        GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg | DELETE delete_arg
            insert_arg ::= string pos iter
            delete_arg ::= string
            string     ::= STRING
            pos        ::= POSITION | START
            iter       ::= LINESCOPE
            "#,
        )
        .unwrap()
    }

    #[test]
    fn builds_all_node_kinds() {
        let g = example();
        assert!(g.nonterminal_node("command").is_some());
        assert!(g.api_node("INSERT").is_some());
        assert!(g.api_node("missing").is_none());
        assert_eq!(g.root(), g.nonterminal_node("command").unwrap());
        // 6 non-terminals, 8 derivations (2+1+1+1+2+1), 6 APIs.
        assert_eq!(g.len(), 6 + 8 + 6);
    }

    #[test]
    fn api_nodes_are_shared() {
        // STRING appears under both insert_arg and delete_arg but must be a
        // single node.
        let g = example();
        let string = g.api_node("STRING").unwrap();
        // STRING has one parent: the single derivation of rule `string`.
        assert_eq!(g.node(string).parents.len(), 1);
    }

    #[test]
    fn edge_kinds_follow_source_node() {
        let g = example();
        let pos = g.nonterminal_node("pos").unwrap();
        let d = g.node(pos).children[0];
        assert_eq!(g.edge_kind(pos, d), Some(EdgeKind::Or));
        let api = g.node(d).children[0];
        assert_eq!(g.edge_kind(d, api), Some(EdgeKind::Concat));
        assert_eq!(g.edge_kind(pos, api), None);
    }

    #[test]
    fn parents_are_reverse_of_children() {
        let g = example();
        for id in g.node_ids() {
            for &child in &g.node(id).children {
                assert!(g.node(child).parents.contains(&id));
            }
            for &parent in &g.node(id).parents {
                assert!(g.node(parent).children.contains(&id));
            }
        }
    }

    #[test]
    fn descendant_apis_cross_derivation() {
        let g = example();
        let insert = g.api_node("INSERT").unwrap();
        let string = g.api_node("STRING").unwrap();
        let start = g.api_node("START").unwrap();
        let delete = g.api_node("DELETE").unwrap();
        assert!(g.is_api_descendant(insert, string));
        assert!(g.is_api_descendant(insert, start));
        assert!(g.is_api_descendant(delete, string));
        // START takes no arguments: no descendants.
        assert!(g.descendant_apis(start).is_empty());
        // STRING is not an ancestor of INSERT.
        assert!(!g.is_api_descendant(string, insert));
    }

    #[test]
    fn descendants_handle_recursion() {
        let g = GrammarGraph::parse(
            r#"
            expr ::= NOT expr | ATOM
            "#,
        )
        .unwrap();
        let not = g.api_node("NOT").unwrap();
        let atom = g.api_node("ATOM").unwrap();
        assert!(g.is_api_descendant(not, atom));
        // NOT can nest under itself.
        assert!(g.is_api_descendant(not, not));
    }

    #[test]
    fn direct_args_stop_at_api_headed_derivations() {
        let g = GrammarGraph::parse(
            r#"
            top   ::= CTOR args
            args  ::= inner
            inner ::= ISCOPY | HAS deep
            deep  ::= METHOD margs
            margs ::= ISVIRT
            "#,
        )
        .unwrap();
        let ctor = g.api_node("CTOR").unwrap();
        let iscopy = g.api_node("ISCOPY").unwrap();
        let has = g.api_node("HAS").unwrap();
        let method = g.api_node("METHOD").unwrap();
        let isvirt = g.api_node("ISVIRT").unwrap();
        // ISCOPY and HAS are direct arguments of CTOR…
        assert!(g.is_direct_api_arg(ctor, iscopy));
        assert!(g.is_direct_api_arg(ctor, has));
        // …but METHOD sits behind the HAS head, and ISVIRT behind METHOD.
        assert!(!g.is_direct_api_arg(ctor, method));
        assert!(!g.is_direct_api_arg(ctor, isvirt));
        assert!(g.is_direct_api_arg(has, method));
        assert!(g.is_direct_api_arg(method, isvirt));
        // Descendant reachability is transitive where direct args are not.
        assert!(g.is_api_descendant(ctor, isvirt));
    }

    #[test]
    fn api_children_in_order() {
        let g = GrammarGraph::parse("r ::= A mid B\nmid ::= M").unwrap();
        let r = g.nonterminal_node("r").unwrap();
        let d = g.node(r).children[0];
        let kids: Vec<String> = g.api_children(d).map(|c| g.node(c).label()).collect();
        assert_eq!(kids, vec!["A", "B"]);
    }

    #[test]
    fn content_hash_is_stable_and_structure_sensitive() {
        let a = example();
        let b = example();
        assert_eq!(a.content_hash(), b.content_hash());
        // Reordering alternatives changes the structure.
        let reordered = GrammarGraph::parse(
            r#"
            command    ::= DELETE delete_arg | INSERT insert_arg
            insert_arg ::= string pos iter
            delete_arg ::= string
            string     ::= STRING
            pos        ::= POSITION | START
            iter       ::= LINESCOPE
            "#,
        )
        .unwrap();
        assert_ne!(a.content_hash(), reordered.content_hash());
        // A non-terminal and an API with the same name are distinct shapes.
        let nt = GrammarGraph::parse("r ::= FOO\nfoo ::= FOO").unwrap();
        let api = GrammarGraph::parse("r ::= FOO\nfoo ::= BAR").unwrap();
        assert_ne!(nt.content_hash(), api.content_hash());
    }

    #[test]
    fn prune_keeps_only_the_live_region() {
        let g = example();
        let live = vec![g.api_node("DELETE").unwrap(), g.api_node("STRING").unwrap()];
        let pruned = g.prune_to_corpus(&live);
        let p = pruned.graph();
        assert!(pruned.exact());
        // The INSERT/pos/iter region is dead: INSERT itself, pos + 2
        // derivations + POSITION + START, iter + 1 derivation + LINESCOPE.
        assert_eq!(pruned.dropped_nodes(), 9);
        assert!(pruned.dropped_edges() > 0);
        assert_eq!(p.len(), g.len() - 9);
        assert!(p.api_node("DELETE").is_some());
        assert!(p.api_node("STRING").is_some());
        assert!(p.api_node("INSERT").is_none());
        assert!(p.api_node("POSITION").is_none());
        assert!(p.nonterminal_node("pos").is_none());
        // The `insert_arg` chain survives: its derivation reaches STRING.
        assert!(p.nonterminal_node("insert_arg").is_some());
        // Remap round-trips and preserves node identity.
        for packed in p.node_ids() {
            let full = pruned.to_full(packed);
            assert_eq!(pruned.to_packed(full), Some(packed));
            assert_eq!(p.node(packed).label_str(), g.node(full).label_str());
        }
        assert_eq!(pruned.to_packed(g.api_node("INSERT").unwrap()), None);
        // The remap preserves order.
        let fulls: Vec<u32> = p.node_ids().map(|id| pruned.to_full(id).0).collect();
        assert!(fulls.windows(2).all(|w| w[0] < w[1]), "{fulls:?}");
    }

    #[test]
    fn prune_with_all_apis_live_is_the_identity() {
        let g = example();
        let live: Vec<NodeId> = g.api_nodes().iter().map(|&(_, id)| id).collect();
        let pruned = g.prune_to_corpus(&live);
        assert_eq!(pruned.dropped_nodes(), 0);
        assert_eq!(pruned.dropped_edges(), 0);
        assert!(pruned.exact());
        assert_eq!(pruned.graph().content_hash(), g.content_hash());
    }

    #[test]
    fn prune_with_empty_corpus_keeps_only_the_root() {
        let g = example();
        let pruned = g.prune_to_corpus(&[]);
        assert_eq!(pruned.graph().len(), 1);
        assert_eq!(pruned.to_full(pruned.graph().root()), g.root());
        assert!(pruned.exact());
    }

    /// Paths with live endpoints must be identical (modulo the remap) on
    /// the packed and full graphs — the correctness contract AOT packing
    /// rests on.
    #[test]
    fn packed_searches_match_full_graph_for_live_endpoints() {
        let g = example();
        let limits = crate::SearchLimits::default();
        let live = vec![
            g.api_node("INSERT").unwrap(),
            g.api_node("STRING").unwrap(),
            g.api_node("START").unwrap(),
        ];
        let pruned = g.prune_to_corpus(&live);
        let p = pruned.graph();
        let key = |path: &crate::GrammarPath, remap: bool| -> (Option<u32>, u32, Vec<u32>) {
            let m = |id: NodeId| if remap { pruned.to_full(id).0 } else { id.0 };
            (
                path.source.map(m),
                m(path.sink),
                path.chain.iter().map(|&id| m(id)).collect(),
            )
        };
        let normalize = |mut keys: Vec<(Option<u32>, u32, Vec<u32>)>| {
            keys.sort();
            keys
        };
        for &sink in &live {
            let full = normalize(
                g.paths_from_root(sink, limits)
                    .iter()
                    .map(|path| key(path, false))
                    .collect(),
            );
            let packed = normalize(
                p.paths_from_root(pruned.to_packed(sink).unwrap(), limits)
                    .iter()
                    .map(|path| key(path, true))
                    .collect(),
            );
            assert_eq!(full, packed, "root → {}", g.node(sink).label_str());
            for &source in &live {
                if source == sink {
                    continue;
                }
                let full = normalize(
                    g.paths_between(source, sink, limits)
                        .iter()
                        .map(|path| key(path, false))
                        .collect(),
                );
                let packed = normalize(
                    p.paths_between(
                        pruned.to_packed(source).unwrap(),
                        pruned.to_packed(sink).unwrap(),
                        limits,
                    )
                    .iter()
                    .map(|path| key(path, true))
                    .collect(),
                );
                assert_eq!(
                    full,
                    packed,
                    "{} → {}",
                    g.node(source).label_str(),
                    g.node(sink).label_str()
                );
            }
        }
    }
}
