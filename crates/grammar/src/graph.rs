//! The directed *grammar graph* representation of a context-free grammar.
//!
//! Following the paper (§II, §IV-A), a grammar graph has three node kinds:
//!
//! * **non-terminal nodes** — one per grammar rule (e.g. `insert_arg`);
//! * **derivation nodes** — one per alternative right-hand side of a rule
//!   (e.g. `string pos iter`);
//! * **API nodes** — one per terminal API name (e.g. `STRING`), shared
//!   across all the derivations that mention it.
//!
//! and two edge kinds:
//!
//! * **"or" edges** (non-terminal → derivation) — alternatives; choosing two
//!   different "or" edges out of the same non-terminal is grammatically
//!   impossible, the fact exploited by grammar-based pruning;
//! * **concatenation edges** (derivation → symbol) — the ordered symbols of
//!   one right-hand side.

use std::collections::BTreeSet;
use std::fmt;

use crate::{Grammar, GrammarError, Symbol};

/// Identifier of a node inside a [`GrammarGraph`].
///
/// `NodeId`s are dense indices; they are only meaningful relative to the
/// graph that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index.
    ///
    /// Useful for tests and serialization; an id is only meaningful for
    /// the graph it came from.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of a grammar-graph node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A non-terminal symbol of the grammar.
    NonTerminal {
        /// The rule name.
        name: String,
    },
    /// One alternative right-hand side of a rule.
    Derivation {
        /// Name of the rule this derivation belongs to.
        rule: String,
        /// Index of the alternative within the rule.
        alt: usize,
    },
    /// A terminal API symbol.
    Api {
        /// The API name as written in the grammar.
        name: String,
    },
}

/// A node of the grammar graph: its kind plus adjacency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrammarNode {
    /// What the node represents.
    pub kind: NodeKind,
    /// Outgoing edges in grammar order.
    pub children: Vec<NodeId>,
    /// Incoming edges (reverse adjacency), used by the reversed all-path
    /// search.
    pub parents: Vec<NodeId>,
    /// Precomputed human-readable label, so hot callers can borrow it
    /// instead of formatting a fresh `String` per call.
    label: String,
}

impl GrammarNode {
    /// A short human-readable label for debugging and rendering (owned;
    /// prefer [`GrammarNode::label_str`] on hot paths).
    pub fn label(&self) -> String {
        self.label.clone()
    }

    /// The label as a borrowed string — no allocation.
    pub fn label_str(&self) -> &str {
        &self.label
    }
}

/// The kind of a grammar-graph edge, derivable from its endpoint kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Non-terminal → derivation: mutually exclusive alternatives.
    Or,
    /// Derivation → symbol: concatenated sibling.
    Concat,
}

/// A directed grammar graph built from a [`Grammar`].
///
/// # Example
///
/// ```rust
/// use nlquery_grammar::{Grammar, GrammarGraph, NodeKind};
///
/// let g = Grammar::parse("pos ::= POSITION | START")?;
/// let graph = GrammarGraph::from_grammar(&g)?;
/// let pos = graph.nonterminal_node("pos").unwrap();
/// // `pos` has two or-edges, one per alternative.
/// assert_eq!(graph.node(pos).children.len(), 2);
/// # Ok::<(), nlquery_grammar::GrammarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GrammarGraph {
    nodes: Vec<GrammarNode>,
    root: NodeId,
    api_index: Vec<(String, NodeId)>,
    nt_index: Vec<(String, NodeId)>,
    /// For every API node, the set of API nodes reachable strictly below it
    /// (descendants through any of its derivations' sibling subtrees).
    descendants: Vec<BTreeSet<NodeId>>,
    /// For every API node, the APIs that can appear as its *direct*
    /// arguments: reachable from its derivations' sibling subtrees without
    /// passing through a derivation headed by another API.
    direct_args: Vec<BTreeSet<NodeId>>,
    /// Dense downward reachability: `reach[i]` has bit `j` set when node
    /// `j` is reachable from node `i` following child edges (including
    /// `i` itself). Used to prune dead branches in the reversed all-path
    /// search.
    reach: Vec<Vec<u64>>,
    /// Precomputed tables for the bitset CGT kernel (see [`crate::kernel`]).
    layout: crate::CgtLayout,
}

impl GrammarGraph {
    /// Builds the grammar graph of `grammar`.
    ///
    /// # Errors
    ///
    /// Returns [`GrammarError::Empty`] if the grammar has no rules (already
    /// prevented by [`Grammar::parse`], but validated again for direct
    /// construction paths).
    pub fn from_grammar(grammar: &Grammar) -> Result<GrammarGraph, GrammarError> {
        if grammar.rules().is_empty() {
            return Err(GrammarError::Empty);
        }
        let mut nodes: Vec<GrammarNode> = Vec::new();
        let mut api_index: Vec<(String, NodeId)> = Vec::new();
        let mut nt_index: Vec<(String, NodeId)> = Vec::new();

        let push = |nodes: &mut Vec<GrammarNode>, kind: NodeKind| -> NodeId {
            let id = NodeId(nodes.len() as u32);
            let label = match &kind {
                NodeKind::NonTerminal { name } => name.clone(),
                NodeKind::Derivation { rule, alt } => format!("{rule}#{alt}"),
                NodeKind::Api { name } => name.clone(),
            };
            nodes.push(GrammarNode {
                kind,
                children: Vec::new(),
                parents: Vec::new(),
                label,
            });
            id
        };

        // Pass 1: create non-terminal nodes.
        for rule in grammar.rules() {
            let id = push(
                &mut nodes,
                NodeKind::NonTerminal {
                    name: rule.name.clone(),
                },
            );
            nt_index.push((rule.name.clone(), id));
        }
        nt_index.sort();

        let find_nt = |index: &[(String, NodeId)], name: &str| -> NodeId {
            let pos = index
                .binary_search_by(|(n, _)| n.as_str().cmp(name))
                .expect("validated grammar references only defined non-terminals");
            index[pos].1
        };

        // Pass 2: derivation and API nodes plus edges.
        for rule in grammar.rules() {
            let nt_id = find_nt(&nt_index, &rule.name);
            for (alt_idx, alt) in rule.alternatives.iter().enumerate() {
                let d_id = push(
                    &mut nodes,
                    NodeKind::Derivation {
                        rule: rule.name.clone(),
                        alt: alt_idx,
                    },
                );
                nodes[nt_id.index()].children.push(d_id);
                nodes[d_id.index()].parents.push(nt_id);
                for sym in &alt.symbols {
                    let child_id = match sym {
                        Symbol::NonTerminal(name) => find_nt(&nt_index, name),
                        Symbol::Api(name) => {
                            match api_index.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                                Ok(pos) => api_index[pos].1,
                                Err(pos) => {
                                    let id = push(&mut nodes, NodeKind::Api { name: name.clone() });
                                    api_index.insert(pos, (name.clone(), id));
                                    id
                                }
                            }
                        }
                    };
                    nodes[d_id.index()].children.push(child_id);
                    nodes[child_id.index()].parents.push(d_id);
                }
            }
        }

        let root = find_nt(&nt_index, grammar.start_symbol());
        let mut graph = GrammarGraph {
            nodes,
            root,
            api_index,
            nt_index,
            descendants: Vec::new(),
            direct_args: Vec::new(),
            reach: Vec::new(),
            layout: crate::CgtLayout::default(),
        };
        graph.reach = graph.compute_reach();
        graph.descendants = graph.compute_descendants();
        graph.direct_args = graph.compute_direct_args();
        graph.layout = crate::CgtLayout::build(&graph);
        Ok(graph)
    }

    /// Convenience: parse BNF text and build the graph in one step.
    ///
    /// # Errors
    ///
    /// Propagates any [`GrammarError`] from parsing or construction.
    pub fn parse(bnf: &str) -> Result<GrammarGraph, GrammarError> {
        GrammarGraph::from_grammar(&Grammar::parse(bnf)?)
    }

    /// The node payload for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &GrammarNode {
        &self.nodes[id.index()]
    }

    /// Number of nodes in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes (never true for a built graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root non-terminal node (start symbol).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Looks up the API node with the given terminal name.
    pub fn api_node(&self, name: &str) -> Option<NodeId> {
        self.api_index
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|pos| self.api_index[pos].1)
    }

    /// Looks up the non-terminal node with the given rule name.
    pub fn nonterminal_node(&self, name: &str) -> Option<NodeId> {
        self.nt_index
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|pos| self.nt_index[pos].1)
    }

    /// All API nodes with their names, sorted by name.
    pub fn api_nodes(&self) -> &[(String, NodeId)] {
        &self.api_index
    }

    /// The kind of the edge `from → to`.
    ///
    /// Returns `None` if there is no such edge.
    pub fn edge_kind(&self, from: NodeId, to: NodeId) -> Option<EdgeKind> {
        if !self.nodes[from.index()].children.contains(&to) {
            return None;
        }
        match self.nodes[from.index()].kind {
            NodeKind::NonTerminal { .. } => Some(EdgeKind::Or),
            NodeKind::Derivation { .. } => Some(EdgeKind::Concat),
            NodeKind::Api { .. } => None,
        }
    }

    /// Whether `id` is an API node.
    pub fn is_api(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Api { .. })
    }

    /// Whether `id` is a non-terminal node.
    pub fn is_nonterminal(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::NonTerminal { .. })
    }

    /// Whether `id` is a derivation node.
    pub fn is_derivation(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Derivation { .. })
    }

    /// The API children of a derivation node, in grammar order.
    pub fn api_children(&self, derivation: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[derivation.index()]
            .children
            .iter()
            .copied()
            .filter(|&c| self.is_api(c))
    }

    /// The API nodes reachable strictly below API node `api` (through the
    /// sibling subtrees of any derivation containing it).
    ///
    /// This is the ancestor/descendant relation used by orphan-node
    /// relocation (§V-B): `b ∈ descendant_apis(a)` iff the grammar allows a
    /// codelet in which `b` appears inside an argument of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `api` is not an API node of this graph.
    pub fn descendant_apis(&self, api: NodeId) -> &BTreeSet<NodeId> {
        assert!(self.is_api(api), "descendant_apis requires an API node");
        &self.descendants[api.index()]
    }

    /// Whether API `b` can appear inside (an argument subtree of) API `a`.
    pub fn is_api_descendant(&self, a: NodeId, b: NodeId) -> bool {
        self.descendant_apis(a).contains(&b)
    }

    /// The APIs that can be a *direct* argument of API `api`: reachable
    /// from a derivation containing `api` without crossing a derivation
    /// headed by another API. `isVirtual` is a direct argument of
    /// `cxxMethodDecl`; `floatLiteral` is not a direct argument of
    /// `callExpr` (it sits behind `hasArgument`).
    ///
    /// # Panics
    ///
    /// Panics if `api` is not an API node of this graph.
    pub fn direct_api_args(&self, api: NodeId) -> &BTreeSet<NodeId> {
        assert!(self.is_api(api), "direct_api_args requires an API node");
        &self.direct_args[api.index()]
    }

    /// Whether `b` can be a direct argument of `a` (see
    /// [`GrammarGraph::direct_api_args`]).
    pub fn is_direct_api_arg(&self, a: NodeId, b: NodeId) -> bool {
        self.direct_api_args(a).contains(&b)
    }

    fn compute_direct_args(&self) -> Vec<BTreeSet<NodeId>> {
        // reach-without-crossing-API-headed-derivations, to a fixpoint.
        let n = self.nodes.len();
        let mut reach: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for id in self.node_ids() {
                if self.is_api(id) {
                    continue;
                }
                let mut merged: BTreeSet<NodeId> = BTreeSet::new();
                if self.is_derivation(id) {
                    let apis: Vec<NodeId> = self.api_children(id).collect();
                    if apis.is_empty() {
                        for &child in &self.nodes[id.index()].children {
                            merged.extend(reach[child.index()].iter().copied());
                        }
                    } else {
                        // An API-headed derivation contributes only its
                        // head(s); what lies below are *their* arguments.
                        merged.extend(apis);
                    }
                } else {
                    for &child in &self.nodes[id.index()].children {
                        merged.extend(reach[child.index()].iter().copied());
                    }
                }
                if merged.len() > reach[id.index()].len() {
                    reach[id.index()] = merged;
                    changed = true;
                }
            }
        }
        let mut result: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];
        for id in self.node_ids() {
            if !self.is_api(id) {
                continue;
            }
            let mut set = BTreeSet::new();
            for &derivation in &self.nodes[id.index()].parents {
                for &sibling in &self.nodes[derivation.index()].children {
                    if sibling != id && !self.is_api(sibling) {
                        set.extend(reach[sibling.index()].iter().copied());
                    }
                }
            }
            result[id.index()] = set;
        }
        result
    }

    /// Whether node `to` is reachable from node `from` following child
    /// edges (reflexive: every node reaches itself).
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        let word = to.index() / 64;
        let bit = to.index() % 64;
        self.reach[from.index()][word] & (1u64 << bit) != 0
    }

    /// The dense downward-reachability row of `from` (one bit per node).
    pub(crate) fn reach_row(&self, from: NodeId) -> &[u64] {
        &self.reach[from.index()]
    }

    /// The precomputed bitset-kernel layout of this grammar (see
    /// [`crate::kernel`]).
    pub fn cgt_layout(&self) -> &crate::CgtLayout {
        &self.layout
    }

    fn compute_reach(&self) -> Vec<Vec<u64>> {
        let n = self.nodes.len();
        let words = n.div_ceil(64);
        let mut reach = vec![vec![0u64; words]; n];
        for i in 0..n {
            reach[i][i / 64] |= 1u64 << (i % 64);
        }
        // Fixpoint: the graph may be cyclic.
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                // Union children's sets into node i without aliasing.
                let children = self.nodes[i].children.clone();
                for child in children {
                    let (a, b) = if i < child.index() {
                        let (lo, hi) = reach.split_at_mut(child.index());
                        (&mut lo[i], &hi[0][..])
                    } else if i > child.index() {
                        let (lo, hi) = reach.split_at_mut(i);
                        (&mut hi[0], &lo[child.index()][..])
                    } else {
                        continue;
                    };
                    for (w, &cw) in a.iter_mut().zip(b.iter()) {
                        let merged = *w | cw;
                        if merged != *w {
                            *w = merged;
                            changed = true;
                        }
                    }
                }
            }
        }
        reach
    }

    fn compute_descendants(&self) -> Vec<BTreeSet<NodeId>> {
        // First compute, for every node, the set of API nodes reachable by
        // walking downward (through or- and concat-edges). Iterate to a
        // fixpoint because grammars may be recursive.
        let n = self.nodes.len();
        let mut reach: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];
        for id in self.node_ids() {
            if self.is_api(id) {
                reach[id.index()].insert(id);
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for id in self.node_ids() {
                if self.is_api(id) {
                    continue;
                }
                let mut merged: BTreeSet<NodeId> = BTreeSet::new();
                for &child in &self.nodes[id.index()].children {
                    merged.extend(reach[child.index()].iter().copied());
                }
                if merged.len() > reach[id.index()].len() {
                    reach[id.index()] = merged;
                    changed = true;
                }
            }
        }
        // An API's descendants are the APIs reachable from the non-API
        // siblings in any derivation that contains it, excluding itself
        // unless genuinely reachable below.
        let mut result: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];
        for id in self.node_ids() {
            if !self.is_api(id) {
                continue;
            }
            let mut set = BTreeSet::new();
            for &derivation in &self.nodes[id.index()].parents {
                for &sibling in &self.nodes[derivation.index()].children {
                    if sibling != id && !self.is_api(sibling) {
                        set.extend(reach[sibling.index()].iter().copied());
                    }
                }
            }
            result[id.index()] = set;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> GrammarGraph {
        GrammarGraph::parse(
            r#"
            command    ::= INSERT insert_arg | DELETE delete_arg
            insert_arg ::= string pos iter
            delete_arg ::= string
            string     ::= STRING
            pos        ::= POSITION | START
            iter       ::= LINESCOPE
            "#,
        )
        .unwrap()
    }

    #[test]
    fn builds_all_node_kinds() {
        let g = example();
        assert!(g.nonterminal_node("command").is_some());
        assert!(g.api_node("INSERT").is_some());
        assert!(g.api_node("missing").is_none());
        assert_eq!(g.root(), g.nonterminal_node("command").unwrap());
        // 6 non-terminals, 8 derivations (2+1+1+1+2+1), 6 APIs.
        assert_eq!(g.len(), 6 + 8 + 6);
    }

    #[test]
    fn api_nodes_are_shared() {
        // STRING appears under both insert_arg and delete_arg but must be a
        // single node.
        let g = example();
        let string = g.api_node("STRING").unwrap();
        // STRING has one parent: the single derivation of rule `string`.
        assert_eq!(g.node(string).parents.len(), 1);
    }

    #[test]
    fn edge_kinds_follow_source_node() {
        let g = example();
        let pos = g.nonterminal_node("pos").unwrap();
        let d = g.node(pos).children[0];
        assert_eq!(g.edge_kind(pos, d), Some(EdgeKind::Or));
        let api = g.node(d).children[0];
        assert_eq!(g.edge_kind(d, api), Some(EdgeKind::Concat));
        assert_eq!(g.edge_kind(pos, api), None);
    }

    #[test]
    fn parents_are_reverse_of_children() {
        let g = example();
        for id in g.node_ids() {
            for &child in &g.node(id).children {
                assert!(g.node(child).parents.contains(&id));
            }
            for &parent in &g.node(id).parents {
                assert!(g.node(parent).children.contains(&id));
            }
        }
    }

    #[test]
    fn descendant_apis_cross_derivation() {
        let g = example();
        let insert = g.api_node("INSERT").unwrap();
        let string = g.api_node("STRING").unwrap();
        let start = g.api_node("START").unwrap();
        let delete = g.api_node("DELETE").unwrap();
        assert!(g.is_api_descendant(insert, string));
        assert!(g.is_api_descendant(insert, start));
        assert!(g.is_api_descendant(delete, string));
        // START takes no arguments: no descendants.
        assert!(g.descendant_apis(start).is_empty());
        // STRING is not an ancestor of INSERT.
        assert!(!g.is_api_descendant(string, insert));
    }

    #[test]
    fn descendants_handle_recursion() {
        let g = GrammarGraph::parse(
            r#"
            expr ::= NOT expr | ATOM
            "#,
        )
        .unwrap();
        let not = g.api_node("NOT").unwrap();
        let atom = g.api_node("ATOM").unwrap();
        assert!(g.is_api_descendant(not, atom));
        // NOT can nest under itself.
        assert!(g.is_api_descendant(not, not));
    }

    #[test]
    fn direct_args_stop_at_api_headed_derivations() {
        let g = GrammarGraph::parse(
            r#"
            top   ::= CTOR args
            args  ::= inner
            inner ::= ISCOPY | HAS deep
            deep  ::= METHOD margs
            margs ::= ISVIRT
            "#,
        )
        .unwrap();
        let ctor = g.api_node("CTOR").unwrap();
        let iscopy = g.api_node("ISCOPY").unwrap();
        let has = g.api_node("HAS").unwrap();
        let method = g.api_node("METHOD").unwrap();
        let isvirt = g.api_node("ISVIRT").unwrap();
        // ISCOPY and HAS are direct arguments of CTOR…
        assert!(g.is_direct_api_arg(ctor, iscopy));
        assert!(g.is_direct_api_arg(ctor, has));
        // …but METHOD sits behind the HAS head, and ISVIRT behind METHOD.
        assert!(!g.is_direct_api_arg(ctor, method));
        assert!(!g.is_direct_api_arg(ctor, isvirt));
        assert!(g.is_direct_api_arg(has, method));
        assert!(g.is_direct_api_arg(method, isvirt));
        // Descendant reachability is transitive where direct args are not.
        assert!(g.is_api_descendant(ctor, isvirt));
    }

    #[test]
    fn api_children_in_order() {
        let g = GrammarGraph::parse("r ::= A mid B\nmid ::= M").unwrap();
        let r = g.nonterminal_node("r").unwrap();
        let d = g.node(r).children[0];
        let kids: Vec<String> = g.api_children(d).map(|c| g.node(c).label()).collect();
        assert_eq!(kids, vec!["A", "B"]);
    }
}
